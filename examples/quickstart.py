#!/usr/bin/env python3
"""Quickstart: a 4-rank PapyrusKV program.

Run with::

    python examples/quickstart.py

Each simulated MPI rank stores its own keys, a barrier makes all writes
globally visible, and every rank then reads everyone's data — the basic
SPMD pattern every PapyrusKV application follows.
"""

from repro import Options, Papyrus, spmd_run


def app(ctx):
    env = Papyrus(ctx)  # papyruskv_init
    db = env.open("quickstart", Options())  # papyruskv_open (collective)

    me = ctx.world_rank
    for i in range(100):
        db.put(f"rank{me}/key{i:03d}".encode(), f"value-{me}-{i}".encode())

    # relaxed consistency: remote puts were staged locally; the barrier
    # migrates them and synchronizes all ranks (papyruskv_barrier)
    db.barrier()

    checked = 0
    for rank in range(ctx.nranks):
        for i in range(0, 100, 10):
            value = db.get(f"rank{rank}/key{i:03d}".encode())
            assert value == f"value-{rank}-{i}".encode()
            checked += 1

    if me == 0:
        db.delete(b"rank0/key000")
    db.barrier()
    assert db.get_or_none(b"rank0/key000") is None  # deleted everywhere

    stats = db.stats
    db.close()  # collective; flushes MemTables to SSTables
    env.finalize()  # papyruskv_finalize
    return (me, checked, dict(stats.get_tiers), round(ctx.clock.now * 1e3, 3))


def main():
    results = spmd_run(4, app)
    print("rank  reads-verified  get-tiers                          t_virtual(ms)")
    for rank, checked, tiers, ms in results:
        print(f"{rank:4d}  {checked:14d}  {str(tiers):34s} {ms:8.3f}")
    print("\nAll ranks verified every other rank's data after the barrier.")


if __name__ == "__main__":
    main()
