#!/usr/bin/env python3
"""Quickstart: a 4-rank PapyrusKV program.

Run with::

    python examples/quickstart.py

Each simulated MPI rank stores its own keys, a barrier makes all writes
globally visible, and every rank then reads everyone's data — the basic
SPMD pattern every PapyrusKV application follows.  Writes go through a
``db.batch()`` (one coalesced message per owner rank), reads through
``get_bulk`` (one multi-get round per owner), and the environment and
database are context managers.
"""

from repro import Options, Papyrus, spmd_run


def app(ctx):
    with Papyrus(ctx) as env:  # papyruskv_init / papyruskv_finalize
        # papyruskv_open is collective; the with-block closes (flushes
        # MemTables to SSTables) on exit
        with env.open("quickstart", Options()) as db:
            me = ctx.world_rank
            # WriteBatch is the write surface: buffered operations go
            # out as one bulk round on exit; durability="fence" means
            # remote puts are owner-acked before the block returns
            with db.batch(durability="fence") as batch:
                for i in range(100):
                    batch[f"rank{me}/key{i:03d}".encode()] = \
                        f"value-{me}-{i}".encode()

            # relaxed consistency: remote puts were staged locally; the
            # barrier migrates them and synchronizes all ranks
            db.barrier()

            wanted = [
                (f"rank{rank}/key{i:03d}".encode(),
                 f"value-{rank}-{i}".encode())
                for rank in range(ctx.nranks)
                for i in range(0, 100, 10)
            ]
            values = db.get_bulk([k for k, _ in wanted])
            assert values == [v for _, v in wanted]
            checked = len(values)

            if me == 0:
                del db[b"rank0/key000"]
            db.barrier()
            assert b"rank0/key000" not in db  # deleted everywhere

            stats = db.stats
            tiers = dict(stats.get_tiers)
    return (me, checked, tiers, round(ctx.clock.now * 1e3, 3))


def main():
    results = spmd_run(4, app)
    print("rank  reads-verified  get-tiers                          t_virtual(ms)")
    for rank, checked, tiers, ms in results:
        print(f"{rank:4d}  {checked:14d}  {str(tiers):34s} {ms:8.3f}")
    print("\nAll ranks verified every other rank's data after the barrier.")


if __name__ == "__main__":
    main()
