#!/usr/bin/env python3
"""Zero-copy workflow between coupled applications (paper §4.1, Fig. 5a).

A producer application writes a dataset and exits; a consumer
application in the *same job* opens the database by name and reads it —
no data movement happens in between, because the SSTables are retained
on the node-local NVM and the new database is composed from them
directly.

Run with::

    python examples/coupled_workflow.py
"""

from repro import Options, Papyrus, SSTABLE, spmd_run
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV

NRANKS = 4
OPTS = Options(memtable_capacity=1 << 16)


def producer(ctx):
    """Application 1: simulate a sweep and store its outputs."""
    with Papyrus(ctx) as env:
        db = env.open("simulation-output", OPTS)
        for step in range(50):
            key = f"step{step:04d}/rank{ctx.world_rank}".encode()
            db.put(key, f"field-data-{step}-{ctx.world_rank}".encode() * 4)
        db.barrier(SSTABLE)  # everything durably on NVM
        n_tables = len(db.ssids)
        db.close()
        return n_tables


def consumer(ctx):
    """Application 2: opens the same database — zero copies."""
    with Papyrus(ctx) as env:
        t0 = ctx.clock.now
        db = env.open("simulation-output", OPTS)  # composed from SSTables
        open_cost = ctx.clock.now - t0
        total = 0
        for step in range(0, 50, 7):
            for rank in range(ctx.nranks):
                value = db.get(f"step{step:04d}/rank{rank}".encode())
                assert value.startswith(b"field-data-")
                total += len(value)
        db.close()
        return (open_cost, total)


def main():
    # one Machine = one job's NVM contents, shared by both applications
    machine = Machine(SUMMITDEV, NRANKS)
    try:
        tables = spmd_run(NRANKS, producer, machine=machine)
        print(f"producer done: {sum(tables)} SSTables retained on NVM")
        results = spmd_run(NRANKS, consumer, machine=machine)
        for rank, (open_cost, nbytes) in enumerate(results):
            print(
                f"consumer rank {rank}: reopened in {open_cost * 1e6:.1f} "
                f"virtual µs (zero-copy), read {nbytes} bytes"
            )
        print("\nThe consumer never copied data: papyruskv_open composed")
        print("the database from the SSTables the producer left on NVM.")
    finally:
        machine.close()


if __name__ == "__main__":
    main()
