#!/usr/bin/env python3
"""Asynchronous checkpoint/restart with redistribution (paper §4.2).

1. A 4-rank application builds a database, checkpoints it to the
   parallel file system *asynchronously* (it keeps computing while the
   compaction thread streams SSTables out), and "crashes".
2. The NVM is trimmed (end-of-job policy).
3. A 2-rank application restarts from the snapshot: the rank count
   changed, so PapyrusKV redistributes every key-value pair through the
   normal hash path.

Run with::

    python examples/fault_tolerance.py
"""

from repro import Options, Papyrus, spmd_run
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV

OPTS = Options(memtable_capacity=1 << 16)
SNAPSHOT = "fault-demo"


def original_app(ctx):
    with Papyrus(ctx) as env:
        db = env.open("state", OPTS)
        for i in range(80):
            db.put(
                f"cell{i:04d}".encode(),
                f"state-written-by-{ctx.world_rank}".encode(),
            )
        db.barrier()

        t_issue = ctx.clock.now
        event = db.checkpoint(SNAPSHOT)  # asynchronous!
        # overlap: keep computing while the snapshot streams to Lustre
        for i in range(80, 120):
            db.put(f"cell{i:04d}".encode(), b"post-checkpoint-work")
        event.wait(ctx.clock)  # papyruskv_wait
        overlap = event.done_time - t_issue
        db.close()
        return overlap


def restarted_app(ctx):
    with Papyrus(ctx) as env:
        # 2 ranks now, snapshot was taken with 4: redistribution kicks in
        db, event = env.restart(SNAPSHOT, "state", OPTS)
        event.wait(ctx.clock)
        db.barrier()
        recovered = sum(
            1 for i in range(80)
            if db.get_or_none(f"cell{i:04d}".encode()) is not None
        )
        lost = sum(
            1 for i in range(80, 120)
            if db.get_or_none(f"cell{i:04d}".encode()) is not None
        )
        db.close()
        return (recovered, lost)


def main():
    machine = Machine(SUMMITDEV, 4)
    try:
        overlaps = spmd_run(4, original_app, machine=machine)
        print(
            "checkpoint issued asynchronously; per-rank background "
            "transfer windows (virtual ms):",
            [f"{o * 1e3:.2f}" for o in overlaps],
        )
        print("simulating job end: trimming NVM ...")
        machine.trim_nvm()

        results = spmd_run(2, restarted_app, machine=machine, timeout=240)
        recovered, lost = results[0]
        print(
            f"restarted with 2 ranks (snapshot had 4): recovered "
            f"{recovered}/80 checkpointed cells via redistribution"
        )
        print(
            f"post-checkpoint writes correctly absent: "
            f"{lost}/40 survived (expected 0)"
        )
        assert recovered == 80 and lost == 0
    finally:
        machine.close()


if __name__ == "__main__":
    main()
