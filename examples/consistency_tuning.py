#!/usr/bin/env python3
"""Dynamic consistency control and protection attributes (paper §3).

Shows the application-tunable knobs that distinguish PapyrusKV from a
fixed-policy store:

* a write burst under **relaxed** consistency (memory-speed staging,
  batched asynchronous migration) vs. **sequential** (synchronous
  remote puts, but every put is immediately globally visible);
* a producer/consumer hand-off ordered with **signals** under
  sequential consistency;
* a read-only analysis phase under ``PAPYRUSKV_RDONLY`` protection,
  where the remote cache eliminates repeat communication.

Run with::

    python examples/consistency_tuning.py
"""

from repro import (
    Options,
    Papyrus,
    RDONLY,
    RDWR,
    RELAXED,
    SEQUENTIAL,
    spmd_run,
)

N = 4
ITERS = 150
OPTS = Options(memtable_capacity=1 << 20, remote_memtable_capacity=1 << 14)


def app(ctx):
    me = ctx.world_rank
    out = {}
    with Papyrus(ctx) as env:
        db = env.open("tunable", OPTS)

        # --- phase 1: relaxed write burst -----------------------------
        t0 = ctx.clock.now
        for i in range(ITERS):
            db.put(f"burst/{me}/{i}".encode(), b"x" * 512)
        out["relaxed_put_s"] = ctx.clock.now - t0
        db.barrier()

        # --- phase 2: the same burst under sequential consistency -----
        db.set_consistency(SEQUENTIAL)
        t0 = ctx.clock.now
        for i in range(ITERS):
            db.put(f"sync/{me}/{i}".encode(), b"x" * 512)
        out["sequential_put_s"] = ctx.clock.now - t0

        # --- signals order a producer/consumer hand-off ----------------
        if me == 0:
            db.put(b"handoff", b"ready")
            env.signal_notify(1, list(range(1, ctx.nranks)))
        else:
            env.signal_wait(1, [0])
            assert db.get(b"handoff") == b"ready"  # guaranteed visible

        db.set_consistency(RELAXED)
        db.barrier()

        # --- phase 3: read-only analysis with the remote cache --------
        other = (me + 1) % ctx.nranks
        keys = [f"burst/{other}/{i}".encode() for i in range(0, ITERS, 3)]
        db.protect(RDONLY)
        t0 = ctx.clock.now
        for k in keys:
            db.get(k)  # first pass: fetched from the owner
        out["rdonly_cold_s"] = ctx.clock.now - t0
        t0 = ctx.clock.now
        for k in keys:
            db.get(k)  # second pass: remote cache hits
        out["rdonly_warm_s"] = ctx.clock.now - t0
        out["remote_cache_hits"] = db.remote_cache.hits
        db.protect(RDWR)

        db.close()
    return out


def main():
    results = spmd_run(N, app)
    r = results[0]
    ms = lambda s: f"{s * 1e3:9.4f} ms"
    print(f"{ITERS} puts/rank, {N} ranks (virtual time, rank 0):\n")
    print(f"  relaxed put burst:       {ms(r['relaxed_put_s'])}")
    print(f"  sequential put burst:    {ms(r['sequential_put_s'])}"
          f"   ({r['sequential_put_s'] / r['relaxed_put_s']:.1f}x slower)")
    print(f"  read-only phase, cold:   {ms(r['rdonly_cold_s'])}")
    print(f"  read-only phase, warm:   {ms(r['rdonly_warm_s'])}"
          f"   ({r['rdonly_cold_s'] / max(r['rdonly_warm_s'], 1e-12):.1f}x "
          f"faster via remote cache, {r['remote_cache_hits']} hits)")
    print("\nThe same database switched consistency modes and protection")
    print("attributes dynamically, mid-run — no reopen required.")


if __name__ == "__main__":
    main()
