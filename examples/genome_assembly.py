#!/usr/bin/env python3
"""Meraculous-style de novo assembly on PapyrusKV (paper §5.2, Fig. 12-13).

Builds a de Bruijn graph over a distributed k-mer hash table stored in
PapyrusKV (with the application's own hash function installed for
thread-data affinity), traverses it into contigs, verifies the assembly
against a serial reference, and compares against the UPC-style DSM
baseline.

Run with::

    python examples/genome_assembly.py
"""

from repro import Options, spmd_run
from repro.apps.meraculous import run_meraculous
from repro.simtime.profiles import CORI

NRANKS = 4
GENOME = 10_000
K = 17

OPTS = Options(
    memtable_capacity=1 << 18,
    remote_memtable_capacity=1 << 14,
)


def main():
    print(f"assembling a synthetic {GENOME} bp genome, k={K}, "
          f"{NRANKS} ranks on the Cori model\n")
    rows = []
    for backend in ("papyrus", "upc"):
        def app(ctx, b=backend):
            return run_meraculous(
                ctx, backend=b, genome_length=GENOME, k=K,
                options=OPTS if b == "papyrus" else None,
            )

        res = spmd_run(NRANKS, app, system=CORI, timeout=300)
        contigs = sum(r.n_contigs for r in res)
        constr = max(r.construction_time for r in res)
        trav = max(r.traversal_time for r in res)
        rows.append((backend, contigs, constr, trav, res[0].verified))

    print("backend   contigs  construct(s)  traverse(s)  verified")
    for backend, contigs, constr, trav, ok in rows:
        print(f"{backend:8s} {contigs:8d}  {constr:12.5f} {trav:12.5f}  {ok}")

    pkv = rows[0][2] + rows[0][3]
    upc = rows[1][2] + rows[1][3]
    print(f"\nPapyrusKV/UPC total-time ratio: {pkv / upc:.2f}x "
          f"(paper: UPC faster, 1.5x at 512 threads)")
    print("both assemblies verified against the serial reference — the")
    print("PapyrusKV port needs no application-specific DHT code, just")
    print("put/get with a custom hash function.")


if __name__ == "__main__":
    main()
