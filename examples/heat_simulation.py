#!/usr/bin/env python3
"""A checkpointed heat-diffusion simulation over PapyrusKV.

Halo cells travel through the key-value store (sequential consistency +
signals), the field is checkpointed mid-run, the "job" ends (NVM is
trimmed), and the simulation resumes on a *different* rank count via
restart-with-redistribution — finishing bit-exactly equal to the serial
reference.

Run with::

    python examples/heat_simulation.py
"""

import numpy as np

from repro import Options, spmd_run
from repro.apps.stencil import run_stencil, serial_solve
from repro.apps.stencil.driver import resume_stencil
from repro.apps.stencil.solver import initial_field
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV

NCELLS, STEPS, CKPT_AT = 200, 24, 11
OPTS = Options(memtable_capacity=1 << 16)


def assemble(results):
    full = initial_field(NCELLS)
    for r in results:
        full[r.start:r.stop] = r.field
    return full


def main():
    machine = Machine(SUMMITDEV, 4)
    try:
        print(f"phase 1: 4 ranks simulate {CKPT_AT + 1} of {STEPS} steps, "
              f"checkpointing at step {CKPT_AT} ...")
        spmd_run(
            4,
            lambda ctx: run_stencil(ctx, NCELLS, STEPS,
                                    checkpoint_at=CKPT_AT, options=OPTS),
            machine=machine, timeout=300,
        )
        print("job ends: NVM trimmed (snapshot survives on the parallel FS)")
        machine.trim_nvm()

        print("phase 2: restart on 3 ranks (redistribution) and finish ...")
        results = spmd_run(
            3,
            lambda ctx: resume_stencil(ctx, "stencil-ckpt", NCELLS, STEPS,
                                       CKPT_AT, source_nranks=4,
                                       options=OPTS),
            machine=machine, timeout=300,
        )
        got = assemble(results)
        want = serial_solve(NCELLS, STEPS)
        exact = np.array_equal(got, want)
        print(f"\nfinal field matches the serial reference bit-exactly: "
              f"{exact}")
        print(f"halo traffic on the restarted run: "
              f"{sum(r.halo_puts for r in results)} puts, "
              f"{sum(r.halo_gets for r in results)} gets through the KVS")
        assert exact
    finally:
        machine.close()


if __name__ == "__main__":
    main()
