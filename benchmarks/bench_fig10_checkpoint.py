"""Figure 10: checkpoint, restart, and restart with redistribution.

Paper setup: three coupled applications — populate + checkpoint to
Lustre; restart as-is; restart with forced redistribution — reporting
total times and bandwidths over a rank sweep.

Shapes under test:

* checkpoint/restart bandwidth grows with rank count (parallel I/O);
* restart with redistribution is slower than plain restart (it pays the
  parallel put path on top of the Lustre reads).
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options, SEQUENTIAL
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads import cr_app

# the paper's redistribution cost is dominated by re-putting 10K pairs
# per rank through the synchronous put path on top of the snapshot
# reads; keep the op count high (and values small) so the scaled run
# stays in the same regime
RANK_SWEEP = [2, 4, 8]
ITERS = 1500
VALLEN = 8 * KB

_OPTS = Options(
    memtable_capacity=4 * MB,
    remote_memtable_capacity=1 * MB,
    consistency=SEQUENTIAL,
    compaction_interval=0,
)


def test_fig10_checkpoint_restart(benchmark):
    def run():
        rep = Report(
            "fig10 — checkpoint / restart / restart+RD "
            f"({VALLEN // KB}KB values, {ITERS} pairs/rank)",
            ["ranks", "ckpt s", "restart s", "restart+RD s",
             "ckpt MB/s", "restart MB/s"],
        )
        series = {}
        for n in RANK_SWEEP:
            def app(ctx):
                return cr_app(ctx, 16, VALLEN, ITERS, _OPTS)

            res = spmd_run(n, app, system=SUMMITDEV, timeout=600)
            ckpt = max(r.checkpoint_time for r in res)
            rst = max(r.restart_time for r in res)
            rd = max(r.restart_rd_time for r in res)
            nbytes = n * ITERS * (16 + VALLEN)
            series[n] = (ckpt, rst, rd,
                         nbytes / ckpt / MB, nbytes / rst / MB)
            rep.add(n, *series[n])
        rep.emit()
        return series

    series = run_once(benchmark, run)

    for n in RANK_SWEEP:
        ckpt, rst, rd, _, _ = series[n]
        # redistribution pays put-path work on top of the snapshot reads
        assert rd > rst
    # parallel I/O: aggregate checkpoint bandwidth grows with ranks
    assert series[RANK_SWEEP[-1]][3] > series[RANK_SWEEP[0]][3]
