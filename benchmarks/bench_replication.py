"""Replication bench: quorum-write overhead and recovery time.

Two 4-rank experiments against the replication plane:

* **overhead** — the same YCSB-A-style load+run workload executed with
  ``replicas=1`` (the unreplicated baseline) and with the acceptance
  configuration ``replicas=3, write_quorum=2``.  Every acked put in the
  replicated run was durably applied on at least two ranks, so the
  headline number is the throughput cost of that guarantee.
* **recovery** — a mid-run ``kill_rank`` under R=3/Q=2.  Survivors time
  (on the virtual clock) the span from the first post-kill detector
  tick until the victim is declared dead **and** re-replication has
  drained — i.e. until every key is back at full replication factor —
  the "time to re-quorum".

Emits ``BENCH_REPLICATION.json`` at the repo root; the checked-in copy
is the regression reference.  Quick mode (``PKV_BENCH_QUICK=1``, CI's
bench-smoke job) shrinks the workload and skips the perf gates but
still fails if replication stops being exercised (zero fan-out
messages, no death declared, nothing re-replicated = wiring bugs).
"""

from __future__ import annotations

import os
import threading

from benchmarks.harness import KB, Report, run_once, write_json
from repro.config import Options
from repro.core import messages as msg
from repro.core.env import Papyrus
from repro.faults import FaultPlan
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads.generators import value_of_size
from repro.workloads.ycsb import ZipfianGenerator

RANKS = 4
VALLEN = 1 * KB
ZIPF_THETA = 0.99
VICTIM = 2

QUICK = os.environ.get("PKV_BENCH_QUICK", "") not in ("", "0")
LOAD_N = 200 if QUICK else 2000   # puts per rank (load phase)
RUN_N = 80 if QUICK else 800      # ops per rank (YCSB-A run phase)
#: the recovery experiment is sized for detection + re-replication, not
#: throughput — a big backlog only risks false timeouts under the
#: wall-clock receive deadline the failure detector needs
RECOV_N = 120 if QUICK else 400
KILL_NTH = RECOV_N // 2           # victim dies halfway through its load

_SIZES = dict(
    memtable_capacity=64 * KB,
    cache_local_enabled=False,
)

UNREPLICATED = dict(replicas=1, **_SIZES)
REPLICATED = dict(replicas=3, write_quorum=2, **_SIZES)
# only the kill experiment needs a wall-clock receive timeout — it is
# what lets survivors notice the victim's silence; the failure-free
# workloads must not risk false timeouts under load.  1s is generous
# against scheduler noise (a too-tight deadline falsely declares a
# merely-busy peer dead) yet still bounds detection wall time.
RECOVERY = dict(REPLICATED, remote_timeout=1.0)


def _workload_app(overrides: dict):
    def app(ctx):
        env = Papyrus(ctx)
        db = env.open("repl", Options(**overrides))
        rank = ctx.world_rank
        keys = [f"u{rank}-{i:06d}".encode() for i in range(LOAD_N)]
        value = value_of_size(VALLEN)

        db.coll_comm.barrier()
        t0 = ctx.clock.now
        for k in keys:
            db.put(k, value)
        db.fence()
        load_time = ctx.clock.now - t0

        zipf = ZipfianGenerator(len(keys), ZIPF_THETA, seed=23 + rank)
        toggle = 0
        t0 = ctx.clock.now
        for _ in range(RUN_N):
            k = keys[zipf.next()]
            if toggle:
                db.put(k, value)
            else:
                db.get(k)
            toggle ^= 1
        db.fence()
        run_time = ctx.clock.now - t0

        s = db.stats
        out = {
            "load_time": load_time,
            "run_time": run_time,
            "replica_msgs": s.replica_msgs,
            "replica_pairs": s.replica_pairs,
            "heartbeats_sent": s.heartbeats_sent,
        }
        db.close()
        env.finalize()
        return out

    return app


def _run_workload(overrides: dict) -> dict:
    results = spmd_run(
        RANKS, _workload_app(overrides), system=SUMMITDEV, timeout=600,
    )
    agg = {
        "load_time_s": max(r["load_time"] for r in results),
        "run_time_s": max(r["run_time"] for r in results),
        "replica_msgs": sum(r["replica_msgs"] for r in results),
        "replica_pairs": sum(r["replica_pairs"] for r in results),
        "heartbeats_sent": sum(r["heartbeats_sent"] for r in results),
    }
    agg["load_puts_per_sec"] = RANKS * LOAD_N / agg["load_time_s"]
    agg["run_ops_per_sec"] = RANKS * RUN_N / agg["run_time_s"]
    return agg


def _run_recovery() -> dict:
    """Kill VICTIM mid-load; survivors time death-to-requorum."""
    survivors = threading.Barrier(RANKS - 1)

    def app(ctx):
        env = Papyrus(ctx)
        db = env.open("recov", Options(**RECOVERY))
        rank = ctx.world_rank
        value = value_of_size(64)  # recovery times the protocol, not I/O
        for i in range(RECOV_N):
            db.put(f"u{rank}-{i:06d}".encode(), value)
        if rank == VICTIM:
            raise AssertionError("victim survived its kill schedule")
        db.fence()
        survivors.wait()
        mv = db.membership
        t0 = ctx.clock.now
        for _ in range(100000):
            db.tick()
            if mv.is_dead(VICTIM) and not mv.pending_rereplication:
                break
        assert mv.is_dead(VICTIM), "victim never declared dead"
        recovery_time = ctx.clock.now - t0
        survivors.wait()
        s = db.stats
        out = {
            "recovery_time": recovery_time,
            "rank_deaths": s.rank_deaths,
            "rereplicated_pairs": s.rereplicated_pairs,
            "failover_gets": s.failover_gets,
        }
        # non-collective close: a collective close would hang on VICTIM
        db.srv_comm.send(msg.StopMsg(), db.rank, tag=0)
        db._handler_thread.join(10)
        db._closed = True
        return out

    faults = FaultPlan(seed=7).kill_rank(VICTIM, nth=KILL_NTH)
    results = spmd_run(RANKS, app, system=SUMMITDEV, faults=faults,
                       timeout=600)
    alive = [r for r in results if r is not None]
    return {
        "recovery_time_s": max(r["recovery_time"] for r in alive),
        "rank_deaths": sum(r["rank_deaths"] for r in alive),
        "rereplicated_pairs": sum(r["rereplicated_pairs"] for r in alive),
        "failover_gets": sum(r["failover_gets"] for r in alive),
    }


def test_replication_overhead_and_recovery(benchmark):
    def run():
        base = _run_workload(UNREPLICATED)
        repl = _run_workload(REPLICATED)
        recovery = _run_recovery()
        overhead = base["load_puts_per_sec"] / repl["load_puts_per_sec"]

        rep = Report(
            "replication — 4-rank load+run, R=3/Q=2 vs R=1 (KPPS)",
            ["config", "load KPPS", "run KOPS", "fan-out msgs",
             "pairs", "heartbeats"],
        )
        for name, r in (("R=1", base), ("R=3/Q=2", repl)):
            rep.add(name, r["load_puts_per_sec"] / 1e3,
                    r["run_ops_per_sec"] / 1e3, r["replica_msgs"],
                    r["replica_pairs"], r["heartbeats_sent"])
        rep.emit()
        print(f"recovery to re-quorum after kill: "
              f"{recovery['recovery_time_s'] * 1e3:.3f} ms (virtual), "
              f"{recovery['rereplicated_pairs']} pairs re-replicated")

        payload = {
            "bench": "replication",
            "ranks": RANKS,
            "load_puts_per_rank": LOAD_N,
            "run_ops_per_rank": RUN_N,
            "value_bytes": VALLEN,
            "zipf_theta": ZIPF_THETA,
            "quick": QUICK,
            "unreplicated": base,
            "replicated": repl,
            "write_overhead_x": round(overhead, 3),
            "recovery": recovery,
        }
        write_json("BENCH_REPLICATION.json", payload)
        return payload

    payload = run_once(benchmark, run)

    base, repl = payload["unreplicated"], payload["replicated"]
    recovery = payload["recovery"]
    # wiring guards: replication must actually participate — and the
    # baseline must genuinely run without it
    assert repl["replica_msgs"] > 0, "no fan-out message was ever sent"
    assert repl["replica_pairs"] >= RANKS * LOAD_N, \
        "acked puts were not fanned to replicas"
    assert base["replica_msgs"] == 0
    assert recovery["rank_deaths"] >= RANKS - 1, \
        "survivors never declared the victim dead"
    assert recovery["rereplicated_pairs"] > 0, \
        "re-replication never pushed a pair"
    if not QUICK:
        # perf gates (regression tripwires, not aspirations): every put
        # waits synchronously for its quorum ack, so R=3/Q=2 load costs
        # ~19x the async-migration baseline today — gate at 25x so a
        # protocol regression (extra round trips, serialization stalls)
        # trips the bench without failing on the known honest cost
        assert payload["write_overhead_x"] <= 25.0, (
            f"R=3/Q=2 write overhead {payload['write_overhead_x']}x > 25x"
        )
        assert recovery["recovery_time_s"] <= 5.0, (
            f"recovery took {recovery['recovery_time_s']}s (virtual)"
        )
