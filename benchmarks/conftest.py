"""Benchmark-suite configuration."""

import pytest


def pytest_collection_modifyitems(items):
    """Keep figure order stable: table2 first, then fig6..fig13."""
    def key(item):
        name = item.module.__name__
        return (0 if "table" in name else 1, name)

    items.sort(key=key)
