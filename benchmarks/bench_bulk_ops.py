"""Bulk-operation pipeline vs the per-key loop.

The per-key remote path pays the full message cost per key: software
send overhead, network latency, handler service, and (under sequential
consistency or for any get) a synchronous reply — serially, key after
key.  The bulk pipeline partitions a batch by owner in one pass and
sends one coalesced message per distinct owner, so the per-message
costs amortize over the whole batch and the per-owner rounds overlap
in a scatter/gather.

Measured here on a 4-rank mixed-owner workload (each rank writes keys
that hash across all ranks, then reads them back after a fence):

* puts under sequential consistency: one ``PutSyncBatchMsg`` round per
  owner instead of one ``PutSyncMsg`` round per key;
* gets under both modes: one ``MGetMsg`` round per owner instead of
  one ``GetMsg`` round per key;
* relaxed puts: both paths stage locally, so bulk only wins the
  batched bookkeeping — asserted not-slower, not 2x.

Also asserts the migration-coalescing property: a relaxed bulk batch
fences out as exactly one migration chunk per distinct remote owner,
not one per key.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import MB, Report, run_once
from repro.config import RELAXED, SEQUENTIAL, Options, consistency_name
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV

RANKS = 4
N_KEYS = 192  # per rank; key hashing spreads owners over all ranks
VALLEN = 256

_OPTS = dict(
    memtable_capacity=8 * MB,
    remote_memtable_capacity=8 * MB,
    compaction_interval=0,
)


def _bench_app(use_bulk: bool, consistency: int):
    def app(ctx):
        opts = Options(consistency=consistency, **_OPTS)
        with Papyrus(ctx) as env:
            with env.open("bench", opts) as db:
                me = ctx.world_rank
                keys = [f"r{me}-{i:06d}".encode() for i in range(N_KEYS)]
                value = bytes(VALLEN)
                remote_owners = {db.owner_of(k) for k in keys} - {me}
                assert len(remote_owners) == RANKS - 1  # mixed-owner

                t0 = ctx.clock.now
                if use_bulk:
                    with db.batch() as b:
                        for k in keys:
                            b.put(k, value)
                else:
                    for k in keys:
                        db.put(k, value)
                put_s = ctx.clock.now - t0

                migrations_before = db.stats.migrations
                db.fence()
                migrate_msgs = db.stats.migrations - migrations_before
                db.barrier()

                t0 = ctx.clock.now
                if use_bulk:
                    vals = db.get_bulk(keys)
                else:
                    vals = [db.get(k) for k in keys]
                get_s = ctx.clock.now - t0
                assert all(v == value for v in vals)
                db.barrier()
                return {
                    "put_s": put_s,
                    "get_s": get_s,
                    "remote_owners": len(remote_owners),
                    "migrate_msgs": migrate_msgs,
                }

    return app


def _krps(results, field: str) -> float:
    t = max(r[field] for r in results)
    return RANKS * N_KEYS / t / 1e3 if t > 0 else float("inf")


def test_bulk_vs_per_key(benchmark):
    def run():
        rep = Report(
            f"bulk-ops — batched pipeline vs per-key loop "
            f"({RANKS} ranks, {N_KEYS} keys/rank, {VALLEN} B values)",
            ["consistency", "phase", "per-key KRPS", "bulk KRPS",
             "speedup"],
        )
        series = {}
        for consistency in (SEQUENTIAL, RELAXED):
            runs = {}
            for use_bulk in (False, True):
                runs[use_bulk] = spmd_run(
                    RANKS, _bench_app(use_bulk, consistency),
                    system=SUMMITDEV, timeout=300,
                )
            for phase in ("put", "get"):
                per_key = _krps(runs[False], f"{phase}_s")
                bulk = _krps(runs[True], f"{phase}_s")
                rep.add(consistency_name(consistency), phase,
                        per_key, bulk, bulk / per_key)
                series[(consistency, phase)] = (per_key, bulk)
            series[(consistency, "bulk_runs")] = runs[True]
        rep.emit()
        return series

    series = run_once(benchmark, run)

    # acceptance: bulk beats the per-key loop by >= 2x wherever the
    # per-key path pays a synchronous round per key
    for consistency, phase in [
        (SEQUENTIAL, "put"), (SEQUENTIAL, "get"), (RELAXED, "get"),
    ]:
        per_key, bulk = series[(consistency, phase)]
        assert bulk >= 2 * per_key, (consistency, phase, per_key, bulk)

    # relaxed puts stage locally either way: bulk must not be slower
    per_key, bulk = series[(RELAXED, "put")]
    assert bulk >= per_key

    # migration coalescing: one chunk per distinct remote owner, not
    # one per key
    for r in series[(RELAXED, "bulk_runs")]:
        assert r["migrate_msgs"] == r["remote_owners"]
        assert r["remote_owners"] < N_KEYS
