"""Write-path regression bench: group commit + pipelined flush +
partitioned compaction vs. the pre-overhaul baseline.

A 4-rank YCSB-A-style experiment against a deliberately small MemTable
(64 KB) so the load phase drives a long train of flushes and periodic
compactions — the regime the write-path overhaul targets:

* **baseline** — the pre-overhaul path (``group_commit_interval=0,
  flush_pipeline=False, compaction_partitions=1``): every put pays the
  full durability charge, flushes serialize with compactions on one
  background worker, and every compaction rewrites the rank's whole
  table set (write amplification grows with the set);
* **optimized** — the overhauled defaults: puts coalesce into commit
  windows, flushes overlap as build/sync stages on their own workers,
  and compaction runs incremental key-range partitions (minor delta
  merges, periodic tombstone-dropping majors) under a rate limit.

Phases per rank: **load** (sustained puts of owner-local keys — the
headline throughput number) then a YCSB-A **run** (50/50 read/update,
Zipfian).  Emits ``BENCH_WRITE_PATH.json`` at the repo root; the
checked-in copy is the regression reference.  Quick mode
(``PKV_BENCH_QUICK=1``, CI's bench-smoke job) shrinks the workload and
skips the perf gates but still fails if group commit or partitioned
compaction stops being exercised (zero counters = a wiring regression).
"""

from __future__ import annotations

import os

from benchmarks.harness import KB, Report, run_once, write_json
from repro.config import Options
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.util.hashing import owner_rank
from repro.workloads.generators import value_of_size
from repro.workloads.ycsb import ZipfianGenerator

RANKS = 4
VALLEN = 1 * KB
ZIPF_THETA = 0.99

QUICK = os.environ.get("PKV_BENCH_QUICK", "") not in ("", "0")
LOAD_N = 400 if QUICK else 4500   # puts per rank (load phase)
RUN_N = 120 if QUICK else 1200    # ops per rank (YCSB-A run phase)

_SIZES = dict(
    memtable_capacity=64 * KB,
    cache_local_enabled=False,  # measure the write/SSTable path itself
    compaction_interval=4,
    flush_queue_capacity=2,
    group_size=1,
)

BASELINE = dict(
    group_commit_interval=0.0,
    flush_pipeline=False,
    compaction_partitions=1,
    **_SIZES,
)
OPTIMIZED = dict(_SIZES)  # overhauled defaults for everything else


def _shard_keys(rank: int, nranks: int, n: int) -> list:
    """``n`` keys owned by ``rank`` — the load phase measures the local
    write path, not migration."""
    keys, i = [], 0
    while len(keys) < n:
        cand = f"u{i:07d}".encode()
        i += 1
        if owner_rank(cand, nranks, None) == rank:
            keys.append(cand)
    return keys


def _app_factory(overrides: dict):
    def app(ctx):
        opts = Options(**overrides)
        env = Papyrus(ctx)
        db = env.open("writepath", opts)
        keys = _shard_keys(ctx.world_rank, ctx.nranks, LOAD_N)
        value = value_of_size(VALLEN)

        # ---- load phase: sustained puts through flush + compaction
        db.coll_comm.barrier()
        t0 = ctx.clock.now
        for k in keys:
            db.put(k, value)
        load_time = ctx.clock.now - t0

        # ---- run phase: YCSB-A (50% read / 50% update, Zipfian)
        zipf = ZipfianGenerator(len(keys), ZIPF_THETA,
                                seed=23 + ctx.world_rank)
        rng_toggle = 0
        t0 = ctx.clock.now
        for _ in range(RUN_N):
            k = keys[zipf.next()]
            if rng_toggle:
                db.put(k, value)
            else:
                db.get(k)
            rng_toggle ^= 1
        run_time = ctx.clock.now - t0

        lat = db.latency.summary().get("put", {})
        s = db.stats
        out = {
            "load_time": load_time,
            "run_time": run_time,
            "put_p50_s": lat.get("p50_s", 0.0),
            "put_p99_s": lat.get("p99_s", 0.0),
            "put_max_s": lat.get("max_s", 0.0),
            "flushes": s.flushes,
            "flush_stalls": s.flush_stalls,
            "flush_stall_s": s.flush_stall_s,
            "compactions": s.compactions,
            "compaction_majors": s.compaction_majors,
            "compaction_partition_jobs": s.compaction_partition_jobs,
            "group_commits": s.group_commits,
            "group_commit_coalesced": s.group_commit_coalesced,
            "flush_build_busy_s": db.flush_build_worker.busy_time,
            "flush_sync_busy_s": db.flush_sync_worker.busy_time,
            "compaction_busy_s": db.compaction_worker.busy_time,
        }
        db.close()
        env.finalize()
        return out

    return app


_SUM_KEYS = (
    "flushes", "flush_stalls", "compactions", "compaction_majors",
    "compaction_partition_jobs", "group_commits", "group_commit_coalesced",
)


def _run_config(overrides: dict) -> dict:
    results = spmd_run(
        RANKS, _app_factory(overrides), system=SUMMITDEV, timeout=600,
    )
    agg = {
        "load_time_s": max(r["load_time"] for r in results),
        "run_time_s": max(r["run_time"] for r in results),
        "put_p99_s": max(r["put_p99_s"] for r in results),
        "put_max_s": max(r["put_max_s"] for r in results),
        "flush_stall_s": max(r["flush_stall_s"] for r in results),
    }
    agg["load_puts_per_sec"] = RANKS * LOAD_N / agg["load_time_s"]
    agg["run_ops_per_sec"] = RANKS * RUN_N / agg["run_time_s"]
    for key in _SUM_KEYS:
        agg[key] = sum(r[key] for r in results)
    for key in ("flush_build_busy_s", "flush_sync_busy_s",
                "compaction_busy_s"):
        agg[key] = max(r[key] for r in results)
    return agg


def test_write_path_regression(benchmark):
    def run():
        baseline = _run_config(BASELINE)
        optimized = _run_config(OPTIMIZED)
        speedup = baseline["load_time_s"] / optimized["load_time_s"]

        def _ratio(num: float, den: float) -> float:
            return num / den if den > 0 else float("inf")

        # stall gates use deterministic aggregates, not the sampled p99:
        # the worst single put stall (max_s covers every observation) and
        # the total virtual time puts spent blocked on flush back-pressure
        max_stall_improvement = _ratio(baseline["put_max_s"],
                                       optimized["put_max_s"])
        stall_s_improvement = _ratio(baseline["flush_stall_s"],
                                     optimized["flush_stall_s"])

        rep = Report(
            "write_path — 4-rank YCSB-A load+run, 64KB MemTables (KPPS)",
            ["config", "load KPPS", "run KOPS", "put p99 (us)",
             "put max (us)", "windows", "coalesced", "part jobs"],
        )
        for name, r in (("baseline", baseline), ("optimized", optimized)):
            rep.add(name, r["load_puts_per_sec"] / 1e3,
                    r["run_ops_per_sec"] / 1e3, r["put_p99_s"] * 1e6,
                    r["put_max_s"] * 1e6,
                    r["group_commits"], r["group_commit_coalesced"],
                    r["compaction_partition_jobs"])
        rep.emit()

        payload = {
            "bench": "write_path",
            "ranks": RANKS,
            "load_puts_per_rank": LOAD_N,
            "run_ops_per_rank": RUN_N,
            "value_bytes": VALLEN,
            "zipf_theta": ZIPF_THETA,
            "quick": QUICK,
            "baseline": baseline,
            "optimized": optimized,
            "speedup": round(speedup, 3),
            "max_stall_improvement": round(max_stall_improvement, 3),
            "stall_s_improvement": round(stall_s_improvement, 3),
        }
        write_json("BENCH_WRITE_PATH.json", payload)
        return payload

    payload = run_once(benchmark, run)

    opt, base = payload["optimized"], payload["baseline"]
    # wiring guards: the new machinery must actually participate, and
    # the baseline must genuinely run without it
    assert opt["group_commits"] > 0, "group commit never opened a window"
    assert opt["group_commit_coalesced"] > 0, "no put ever coalesced"
    assert opt["compaction_partition_jobs"] > 0, \
        "partitioned compaction never scheduled a job"
    assert opt["flush_build_busy_s"] > 0 and opt["flush_sync_busy_s"] > 0
    assert base["group_commits"] == 0
    assert base["compaction_partition_jobs"] == 0
    assert base["flush_build_busy_s"] == 0
    if not QUICK:
        # full-size workload crosses the major-merge threshold too
        assert opt["compaction_majors"] > 0, "no major compaction ran"
        # the perf gates proper: ≥5x sustained put throughput, and put
        # stalls must be bounded — the worst single stall and the total
        # time spent blocked on flush back-pressure both shrink
        assert payload["speedup"] >= 5.0, (
            f"write-path speedup {payload['speedup']}x < 5x"
        )
        assert payload["max_stall_improvement"] >= 2.0, (
            f"worst-case put stall only improved "
            f"{payload['max_stall_improvement']}x"
        )
        assert payload["stall_s_improvement"] >= 2.0, (
            f"total put stall time only improved "
            f"{payload['stall_s_improvement']}x"
        )
