"""Figure 7: put throughput, relaxed vs. sequential consistency.

Paper setup: 16 B keys / 128 KB values, rank sweep from 1 to multiples
of a node, measuring put (Rel, Seq) and put+barrier (Rel+B, Seq+B)
aggregate throughput.

Shapes under test:

* Rel put throughput beats Seq at every rank count (relaxed puts touch
  memory only; sequential remote puts migrate synchronously);
* the Rel advantage appears only once there *are* remote puts (>1 rank);
* with the trailing barrier included, Seq+B catches up to Rel+B — the
  relaxed mode's deferred migration lands in its barrier.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options, RELAXED, SEQUENTIAL
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads import basic_app

RANK_SWEEP = [1, 2, 4, 8, 16]
ITERS = 40
VALLEN = 128 * KB


# the paper's 1 GB MemTable threshold ~ its 1.25 GB/rank workload; keep
# the same proportion so relaxed puts stage in memory and the deferred
# migration lands in the barrier (where the congestion belongs)
def _opts(consistency):
    return Options(
        memtable_capacity=64 * MB,
        remote_memtable_capacity=64 * MB,
        consistency=consistency,
        compaction_interval=0,
    )


def _run(nranks, consistency):
    def app(ctx):
        return basic_app(ctx, 16, VALLEN, ITERS, _opts(consistency))

    res = spmd_run(nranks, app, system=SUMMITDEV, timeout=300)
    total = nranks * ITERS
    put_t = max(r.put_time for r in res)
    both_t = max(r.put_time + r.barrier_time for r in res)
    return total / put_t / 1e3, total / both_t / 1e3


def test_fig7_relaxed_vs_sequential(benchmark):
    def run():
        rep = Report(
            "fig7 — put throughput, relaxed vs sequential (KRPS, "
            f"{VALLEN // KB}KB values)",
            ["ranks", "Rel", "Seq", "Rel+B", "Seq+B"],
        )
        series = {}
        for n in RANK_SWEEP:
            rel, rel_b = _run(n, RELAXED)
            seq, seq_b = _run(n, SEQUENTIAL)
            rep.add(n, rel, seq, rel_b, seq_b)
            series[n] = (rel, seq, rel_b, seq_b)
        rep.emit()
        return series

    series = run_once(benchmark, run)

    for n in RANK_SWEEP:
        rel, seq, rel_b, seq_b = series[n]
        if n == 1:
            # no remote puts: the two modes coincide
            assert rel == pytest.approx(seq, rel=0.3)
        else:
            # the paper's headline: relaxed puts outrun sequential
            assert rel > seq
            # with the barrier folded in, sequential is competitive
            # (paper: "the sequential mode shows slightly higher
            # throughput than the relaxed mode")
            assert seq_b > 0.5 * rel_b
