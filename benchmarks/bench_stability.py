"""Run-to-run stability of the virtual-time model.

Every figure's assertions ride on the model being reproducible: thread
scheduling may reorder real execution, but virtual-time results should
cluster tightly.  This bench repeats a representative workload and
reports mean, stdev, and a 95% confidence interval, asserting the
coefficient of variation stays under 5% — the noise floor the figure
benches' tolerances are calibrated against.
"""

from __future__ import annotations

import statistics

import pytest
from scipy import stats as scipy_stats

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size

REPEATS = 6
RANKS = 4
ITERS = 80


def _one_run() -> float:
    """Virtual seconds for a put+barrier+get cycle (max across ranks)."""
    opts = Options(
        memtable_capacity=1 * MB,
        remote_memtable_capacity=256 * KB,
        compaction_interval=4,
    )

    def app(ctx):
        env = Papyrus(ctx)
        db = env.open("stab", opts)
        gen = KeyGenerator(16, rank_seed(55, ctx.world_rank))
        keys = gen.keys(ITERS)
        value = value_of_size(8 * KB)
        db.coll_comm.barrier()
        t0 = ctx.clock.now
        for k in keys:
            db.put(k, value)
        db.barrier(level=1)
        for k in keys:
            db.get(k)
        elapsed = ctx.clock.now - t0
        db.close()
        env.finalize()
        return elapsed

    return max(spmd_run(RANKS, app, system=SUMMITDEV, timeout=300))


def test_virtual_time_stability(benchmark):
    def run():
        samples = [_one_run() for _ in range(REPEATS)]
        mean = statistics.mean(samples)
        stdev = statistics.stdev(samples)
        cv = stdev / mean
        # 95% CI via Student's t
        sem = stdev / (len(samples) ** 0.5)
        t_crit = scipy_stats.t.ppf(0.975, len(samples) - 1)
        ci = t_crit * sem
        rep = Report(
            f"stability — {REPEATS} repeats of put+barrier+get "
            f"({RANKS} ranks, {ITERS} x 8KB per rank; virtual seconds)",
            ["mean s", "stdev s", "CV %", "95% CI ±s"],
        )
        rep.add(mean, stdev, cv * 100, ci)
        rep.emit()
        return {"mean": mean, "cv": cv, "ci": ci, "samples": samples}

    result = run_once(benchmark, run)
    # determinism claim: virtual time varies < 5% across repeats even
    # though thread interleaving differs every run
    assert result["cv"] < 0.05, f"CV {result['cv']:.3%} exceeds 5%"
    assert result["ci"] < 0.1 * result["mean"]
