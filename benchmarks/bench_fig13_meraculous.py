"""Figure 13: Meraculous, PapyrusKV vs. UPC on Cori.

Paper setup: the de novo assembler's de Bruijn graph construction and
traversal on human chr14, over 32..512 UPC threads, comparing the UPC
distributed hash table against the PapyrusKV port with the same hash
function.

Scaled here to a synthetic genome and 2..8 ranks (see DESIGN.md for the
substitution).  Shapes under test:

* UPC is faster overall (one-sided RDMA beats the message-handler path
  during traversal);
* the gap narrows as ranks grow and stays within a small factor
  (paper: 1.5x at 512 threads);
* both backends produce a verified, identical assembly.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, Report, run_once
from repro.apps.meraculous import run_meraculous
from repro.config import Options
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI

RANK_SWEEP = [2, 4, 8]
GENOME_LEN = 6000
K = 15

_OPTS = Options(
    memtable_capacity=256 * KB,
    remote_memtable_capacity=16 * KB,
    compaction_interval=0,
)


def _run(nranks, backend):
    def app(ctx):
        return run_meraculous(
            ctx, backend=backend, genome_length=GENOME_LEN, k=K,
            seed=13,
            options=_OPTS if backend == "papyrus" else None,
        )

    res = spmd_run(nranks, app, system=CORI, timeout=600)
    assert res[0].verified is True, f"{backend} assembly failed to verify"
    total = max(r.total_time for r in res)
    constr = max(r.construction_time for r in res)
    trav = max(r.traversal_time for r in res)
    return total, constr, trav


def test_fig13_meraculous(benchmark):
    def run():
        rep = Report(
            "fig13 — Meraculous on Cori: PapyrusKV (PKV) vs UPC "
            f"(synthetic genome {GENOME_LEN}bp, k={K}; seconds)",
            ["ranks", "PKV total", "UPC total", "PKV/UPC",
             "PKV constr", "PKV trav"],
        )
        series = {}
        for n in RANK_SWEEP:
            pkv, pkv_c, pkv_t = _run(n, "papyrus")
            upc, _, _ = _run(n, "upc")
            rep.add(n, pkv, upc, pkv / upc, pkv_c, pkv_t)
            series[n] = (pkv, upc)
        rep.emit()
        return series

    series = run_once(benchmark, run)

    ratios = {n: series[n][0] / series[n][1] for n in RANK_SWEEP}
    for n in RANK_SWEEP:
        # UPC's one-sided access wins overall
        assert ratios[n] > 1.0
        # but PapyrusKV stays within a small factor (paper: 1.5x at the
        # largest scale; allow headroom for the scaled-down run)
        assert ratios[n] < 8.0
    # the gap stays bounded with scale (it must not blow up).  NOTE: the
    # paper's *narrowing* gap is not reproduced at thread scale — on one
    # simulated node both backends ride shared memory, so PapyrusKV's
    # handler CPU overhead dominates instead of amortizing against
    # network latency; see EXPERIMENTS.md.
    assert ratios[RANK_SWEEP[-1]] <= ratios[RANK_SWEEP[0]] * 2.0
