"""Read-path regression bench: block cache + fence pruning vs. baseline.

A 4-rank YCSB-C-style workload (100% reads, Zipfian-skewed) against
cold reader state: each rank loads its own shard in key-prefixed phases
— one SSTable per phase with a disjoint key range, so the footer fences
actually prune — then drops every cached reader and block and measures
a read-only phase twice:

* **baseline** — the pre-overhaul read path (`block_cache_enabled=False,
  fence_pruning=False`): every SSData probe is a fresh `store.read`,
  every table is gated by bloom alone;
* **optimized** — the shared block cache plus fence pruning (defaults).

The local value cache is off in both configs so repeated gets exercise
the SSTable path itself, not the value cache above it.

Emits ``BENCH_READ_PATH.json`` at the repo root (ops/s both ways, the
speedup, and the cache/fence/bloom counter deltas) — the checked-in
copy is the regression reference.  Quick mode (``PKV_BENCH_QUICK=1``,
used by CI's bench-smoke job) shrinks the workload and skips the
speedup gate but still fails if the block cache or fence pruning stops
being exercised (zero hits / zero skips = a wiring regression).
"""

from __future__ import annotations

import json
import os

from benchmarks.harness import KB, MB, REPO_ROOT, Report, run_once, write_json
from repro.config import Options, SSTABLE
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.util.hashing import owner_rank
from repro.workloads.generators import value_of_size
from repro.workloads.ycsb import ZipfianGenerator

RANKS = 4
VALLEN = 2 * KB
ZIPF_THETA = 0.99

QUICK = os.environ.get("PKV_BENCH_QUICK", "") not in ("", "0")
PHASES = 4 if QUICK else 6
KEYS_PER_PHASE = 24 if QUICK else 40
ITERS = 150 if QUICK else 1200
XG_ITERS = 120 if QUICK else 800


def _shard_keys(rank: int, nranks: int) -> list:
    """This rank's keys, grouped into ``PHASES`` disjoint prefix ranges.

    Phase ``p``'s keys all start with ``b"p%02d-"``, so each flushed
    SSTable covers one prefix range and the footer fences of the other
    tables exclude it — the fence-pruning counter must move.
    """
    keys = []
    for p in range(PHASES):
        got, i = 0, 0
        while got < KEYS_PER_PHASE:
            cand = f"{p:02d}-{i:06d}".encode()
            i += 1
            if owner_rank(cand, nranks, None) == rank:
                keys.append(cand)
                got += 1
    return keys


def _app_factory(block_cache: bool, fence_pruning: bool):
    def app(ctx):
        opts = Options(
            memtable_capacity=1 * MB,
            cache_local_enabled=False,  # measure the SSTable path itself
            compaction_interval=0,      # keep one table per load phase
            group_size=1,
            block_cache_enabled=block_cache,
            fence_pruning=fence_pruning,
        )
        env = Papyrus(ctx)
        db = env.open("readpath", opts)
        keys = _shard_keys(ctx.world_rank, ctx.nranks)
        value = value_of_size(VALLEN)
        per_phase = len(keys) // PHASES
        for p in range(PHASES):
            for k in keys[p * per_phase:(p + 1) * per_phase]:
                db.put(k, value)
            db.barrier(SSTABLE)  # one SSTable per prefix range

        # cold reader state: drop cached readers, blooms/indexes, blocks
        db._invalidate_readers()
        fence0 = db.stats.fence_skips
        bloom0 = db.stats.bloom_skips
        cache0 = (db.block_cache.counters()
                  if db.block_cache is not None else None)

        zipf = ZipfianGenerator(len(keys), ZIPF_THETA,
                                seed=11 + ctx.world_rank)
        t0 = ctx.clock.now
        for _ in range(ITERS):
            db.get(keys[zipf.next()])
        elapsed = ctx.clock.now - t0

        out = {
            "elapsed": elapsed,
            "fence_skips": db.stats.fence_skips - fence0,
            "bloom_skips": db.stats.bloom_skips - bloom0,
            "block_cache": None,
        }
        if db.block_cache is not None:
            c1 = db.block_cache.counters()
            out["block_cache"] = {
                k: (c1[k] - cache0[k]
                    if k in ("hits", "misses", "evictions", "inserts",
                             "low_priority_inserts", "invalidations")
                    else c1[k])
                for k in c1
            }
        db.close()
        env.finalize()
        return out

    return app


def _run_config(block_cache: bool, fence_pruning: bool) -> dict:
    results = spmd_run(
        RANKS, _app_factory(block_cache, fence_pruning),
        system=SUMMITDEV, timeout=300,
    )
    elapsed = max(r["elapsed"] for r in results)
    agg = {
        "ops_per_sec": RANKS * ITERS / elapsed,
        "elapsed_virtual_s": elapsed,
        "fence_skips": sum(r["fence_skips"] for r in results),
        "bloom_skips": sum(r["bloom_skips"] for r in results),
        "block_cache": None,
    }
    if results[0]["block_cache"] is not None:
        agg["block_cache"] = {
            k: sum(r["block_cache"][k] for r in results)
            for k in results[0]["block_cache"]
        }
    return agg


def test_read_path_regression(benchmark):
    def run():
        baseline = _run_config(block_cache=False, fence_pruning=False)
        optimized = _run_config(block_cache=True, fence_pruning=True)
        speedup = baseline["elapsed_virtual_s"] / optimized["elapsed_virtual_s"]

        rep = Report(
            "read_path — 4-rank YCSB-C reads, cold reader state (KRPS)",
            ["config", "KRPS", "fence_skips", "bloom_skips", "cache_hits"],
        )
        for name, r in (("baseline", baseline), ("optimized", optimized)):
            rep.add(name, r["ops_per_sec"] / 1e3, r["fence_skips"],
                    r["bloom_skips"],
                    r["block_cache"]["hits"] if r["block_cache"] else 0)
        rep.emit()

        payload = {
            "bench": "read_path",
            "ranks": RANKS,
            "phases": PHASES,
            "keys_per_rank": PHASES * KEYS_PER_PHASE,
            "value_bytes": VALLEN,
            "gets_per_rank": ITERS,
            "zipf_theta": ZIPF_THETA,
            "quick": QUICK,
            "baseline": baseline,
            "optimized": optimized,
            "speedup": round(speedup, 3),
        }
        write_json("BENCH_READ_PATH.json", payload)
        return payload

    payload = run_once(benchmark, run)

    opt = payload["optimized"]
    # wiring guards: the cache and the fences must actually participate
    assert opt["block_cache"] is not None
    assert opt["block_cache"]["hits"] > 0, "block cache saw zero hits"
    assert opt["fence_skips"] > 0, "fence pruning never skipped a table"
    assert payload["baseline"]["block_cache"] is None
    if not QUICK:
        # the perf gate proper: the overhauled read path must at least
        # double read throughput on this workload
        assert payload["speedup"] >= 2.0, (
            f"read-path speedup {payload['speedup']}x < 2x"
        )


# ---------------------------------------------------------------------------
# Cross-group phase: one-sided index replication vs. handler round-trips.
#
# Same 4 ranks on SUMMITDEV, but split into two storage groups
# (group_size=2 → {0,1} and {2,3}). After the fenced load, every rank
# runs the Zipfian read phase twice against *peer-owned* keys:
#
# * **same-group** — the peer is rank^1 (shared NVM): the §2.7 direct
#   SSTable read path, the reference cost of a non-local get (note it
#   still pays a NOT_IN_MEMORY handshake round-trip per get);
# * **cross-group** — the peer is (rank+2)%4 (the other group's NVM):
#   without `index_replication` every get is a handler round-trip;
#   with it the requester pulls the owner's metadata bundles once and
#   resolves each get with a local gate walk plus one direct block
#   read — no message at all at steady state.
#
# The gates: with index replication on, cross-group gets must land
# within 2x of the same-group direct-read cost (they actually come in
# *under* it, because the one-sided path is the only non-local tier
# with no per-get round-trip), and must beat the handler-only
# cross-group phase outright.
# ---------------------------------------------------------------------------


def _xgroup_app_factory(index_repl: bool):
    def app(ctx):
        opts = Options(
            memtable_capacity=1 * MB,
            cache_local_enabled=False,  # measure the SSTable path itself
            compaction_interval=0,      # keep one table per load phase
            group_size=2,               # {0,1} and {2,3} on 4 ranks
            index_replication=index_repl,
        )
        env = Papyrus(ctx)
        db = env.open("xgroup", opts)
        r = ctx.world_rank
        value = value_of_size(VALLEN)
        keys = _shard_keys(r, ctx.nranks)
        per_phase = len(keys) // PHASES
        for p in range(PHASES):
            for k in keys[p * per_phase:(p + 1) * per_phase]:
                db.put(k, value)
            db.barrier(SSTABLE)  # one SSTable per prefix range

        db._invalidate_readers()
        same_keys = _shard_keys(r ^ 1, ctx.nranks)
        cross_keys = _shard_keys((r + 2) % ctx.nranks, ctx.nranks)

        zipf = ZipfianGenerator(len(same_keys), ZIPF_THETA, seed=23 + r)
        t0 = ctx.clock.now
        for _ in range(XG_ITERS):
            db.get(same_keys[zipf.next()])
        same_elapsed = ctx.clock.now - t0
        db.barrier()

        tiers0 = dict(db.stats.get_tiers)
        zipf = ZipfianGenerator(len(cross_keys), ZIPF_THETA, seed=31 + r)
        t0 = ctx.clock.now
        for _ in range(XG_ITERS):
            db.get(cross_keys[zipf.next()])
        cross_elapsed = ctx.clock.now - t0

        tiers1 = dict(db.stats.get_tiers)
        out = {
            "same_elapsed": same_elapsed,
            "cross_elapsed": cross_elapsed,
            "index_repl_hits": db.stats.index_repl_hits,
            "index_repl_fallbacks": db.stats.index_repl_fallbacks,
            "index_pulls": db.stats.index_pulls,
            "cross_remote_tier_gets":
                tiers1.get("remote", 0) - tiers0.get("remote", 0),
        }
        db.barrier()
        db.close()
        env.finalize()
        return out

    return app


def _run_xgroup_config(index_repl: bool) -> dict:
    results = spmd_run(
        RANKS, _xgroup_app_factory(index_repl),
        system=SUMMITDEV, timeout=300,
    )
    same = max(r["same_elapsed"] for r in results)
    cross = max(r["cross_elapsed"] for r in results)
    return {
        "same_group_ops_per_sec": RANKS * XG_ITERS / same,
        "cross_group_ops_per_sec": RANKS * XG_ITERS / cross,
        "same_group_elapsed_s": same,
        "cross_group_elapsed_s": cross,
        "cross_over_same": round(cross / same, 3),
        "index_repl_hits": sum(r["index_repl_hits"] for r in results),
        "index_repl_fallbacks":
            sum(r["index_repl_fallbacks"] for r in results),
        "index_pulls": sum(r["index_pulls"] for r in results),
        "cross_remote_tier_gets":
            sum(r["cross_remote_tier_gets"] for r in results),
    }


def test_cross_group_read_regression(benchmark):
    def run():
        without = _run_xgroup_config(index_repl=False)
        with_repl = _run_xgroup_config(index_repl=True)

        rep = Report(
            "cross_group — 4 ranks, 2 storage groups, peer reads (KRPS)",
            ["config", "same_KRPS", "cross_KRPS", "cross/same", "1sided"],
        )
        for name, r in (("handler_only", without),
                        ("index_repl", with_repl)):
            rep.add(name, r["same_group_ops_per_sec"] / 1e3,
                    r["cross_group_ops_per_sec"] / 1e3,
                    r["cross_over_same"], r["index_repl_hits"])
        rep.emit()

        section = {
            "gets_per_rank_per_phase": XG_ITERS,
            "group_size": 2,
            "quick": QUICK,
            "without_index_replication": without,
            "with_index_replication": with_repl,
            "one_sided_improvement": round(
                without["cross_group_elapsed_s"]
                / with_repl["cross_group_elapsed_s"], 3),
        }
        # merge into the read-path JSON (written by the test above in a
        # full file run; the checked-in copy otherwise)
        path = os.path.join(REPO_ROOT, "BENCH_READ_PATH.json")
        with open(path) as f:
            payload = json.load(f)
        payload["cross_group"] = section
        write_json("BENCH_READ_PATH.json", payload)
        return section

    section = run_once(benchmark, run)

    w = section["with_index_replication"]
    wo = section["without_index_replication"]
    # wiring guards (both modes): the one-sided path must carry the
    # cross-group phase, with handler traffic amortized to ~zero
    assert w["index_repl_hits"] > 0, "one-sided path saw zero hits"
    assert w["index_pulls"] > 0, "no metadata bundles were ever pulled"
    assert wo["index_repl_hits"] == 0  # feature off ⇒ tier never fires
    assert w["cross_remote_tier_gets"] <= 0.05 * RANKS * XG_ITERS, (
        "cross-group gets still riding the owner's handler"
    )
    if not QUICK:
        # the perf gates proper: one-sided cross-group gets land within
        # 2x of same-group direct reads, and beat the handler-only
        # cross-group phase outright (the round-trip they eliminate)
        assert w["cross_over_same"] <= 2.0, (
            f"cross-group {w['cross_over_same']}x same-group > 2x "
            "with index replication"
        )
        assert section["one_sided_improvement"] >= 1.25, (
            "index replication did not pay for itself: cross-group "
            f"phase only {section['one_sided_improvement']}x faster"
        )
