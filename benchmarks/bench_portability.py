"""Portability and scalability across the three NVM architectures.

Not a single figure — the paper's *title claims*, asserted directly:
"PapyrusKV can offer high performance, scalability, and portability
across these various distributed NVM architectures" (abstract).

The same application binary (workload function) runs unmodified on the
Summitdev, Stampede, and Cori models; relaxed-mode put throughput must
scale near-linearly with ranks on every platform, and gets must
complete everywhere with the platform-appropriate cost ordering.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options, SSTABLE
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI, STAMPEDE, SUMMITDEV
from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size

RANK_SWEEP = [1, 4, 16]
ITERS = 60
VALLEN = 16 * KB

_OPTS = Options(
    memtable_capacity=32 * MB,
    remote_memtable_capacity=32 * MB,
    compaction_interval=0,
)


def _app(ctx):
    env = Papyrus(ctx)
    db = env.open("port", _OPTS)
    gen = KeyGenerator(16, rank_seed(77, ctx.world_rank))
    keys = gen.keys(ITERS)
    value = value_of_size(VALLEN)
    db.coll_comm.barrier()
    t0 = ctx.clock.now
    for k in keys:
        db.put(k, value)
    put_time = ctx.clock.now - t0
    db.barrier(SSTABLE)
    t0 = ctx.clock.now
    for k in keys:
        db.get(k)
    get_time = ctx.clock.now - t0
    db.close()
    env.finalize()
    return put_time, get_time


def test_portability_and_scalability(benchmark):
    def run():
        rep = Report(
            "portability — identical application on all three platforms "
            f"({ITERS} x {VALLEN // KB}KB per rank; KRPS)",
            ["system", "ranks", "put KRPS", "get KRPS"],
        )
        series = {}
        for system in (SUMMITDEV, STAMPEDE, CORI):
            for n in RANK_SWEEP:
                res = spmd_run(n, _app, system=system, timeout=300)
                put_krps = n * ITERS / max(r[0] for r in res) / 1e3
                get_krps = n * ITERS / max(r[1] for r in res) / 1e3
                rep.add(system.name, n, put_krps, get_krps)
                series[(system.name, n)] = (put_krps, get_krps)
        rep.emit()
        return series

    series = run_once(benchmark, run)

    lo, hi = RANK_SWEEP[0], RANK_SWEEP[-1]
    for system in ("summitdev", "stampede", "cori"):
        # scalability: relaxed puts scale near-linearly (>= 50% efficiency)
        speedup = series[(system, hi)][0] / series[(system, lo)][0]
        assert speedup > 0.5 * (hi / lo), (
            f"{system}: put speedup {speedup:.1f}x over {hi}x ranks"
        )
        # the application completed everywhere: portability
        assert series[(system, hi)][1] > 0

    # platform ordering for gets: local NVMe (Summitdev) beats the
    # network-attached burst buffer (Cori) at equal rank count
    assert series[("summitdev", hi)][1] > series[("cori", hi)][1]
