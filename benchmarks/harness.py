"""Shared benchmark harness.

Every ``bench_fig*.py`` reproduces one figure of the paper: it runs the
paper's workload on the simulated platforms, prints the same series the
figure plots (virtual-time KRPS / MBPS / seconds), asserts the figure's
qualitative *shape* (who wins, where the crossover falls), and appends
the numbers to ``benchmarks/results/`` for EXPERIMENTS.md.

Scaling note: the paper sweeps up to 4352 ranks and 10K iterations;
thread-based simulation scales those down (≤16 ranks, ≤200 iterations).
Shapes are driven by the device/network cost models, not rank count.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Dict, Iterable, List, Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

KB = 1024
MB = 1024 * KB


def aggregate_krps(results: Sequence, phase: str) -> float:
    """Aggregate kilo-requests/second: total ops over the slowest rank."""
    total_ops = sum(r.iters for r in results)
    t = max(getattr(r, f"{phase}_time") for r in results)
    return total_ops / t / 1e3 if t > 0 else float("inf")


def aggregate_mbps(results: Sequence, phase: str) -> float:
    """Aggregate MB/s moved during a phase."""
    total_bytes = sum(r.iters * (r.keylen + r.vallen) for r in results)
    t = max(getattr(r, f"{phase}_time") for r in results)
    return total_bytes / t / MB if t > 0 else float("inf")


def fmt_size(nbytes: int) -> str:
    if nbytes >= MB:
        return f"{nbytes // MB}MB"
    if nbytes >= KB:
        return f"{nbytes // KB}KB"
    return f"{nbytes}B"


class Report:
    """Collects rows, prints a table, and persists it under results/."""

    def __init__(self, name: str, columns: Sequence[str]) -> None:
        self.name = name
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values) -> None:
        self.rows.append([
            f"{v:.3f}" if isinstance(v, float) else str(v) for v in values
        ])

    def render(self) -> str:
        widths = [
            max(len(c), *(len(r[i]) for r in self.rows)) if self.rows
            else len(c)
            for i, c in enumerate(self.columns)
        ]
        def line(cells):
            return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

        out = [f"== {self.name} ==", line(self.columns),
               line(["-" * w for w in widths])]
        out.extend(line(r) for r in self.rows)
        return "\n".join(out)

    def emit(self) -> str:
        text = self.render()
        print("\n" + text)
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(
            RESULTS_DIR, self.name.split()[0].lower() + ".txt"
        )
        with open(path, "w") as f:
            f.write(text + "\n")
        return text


def write_json(name: str, payload: Dict) -> str:
    """Persist a machine-readable benchmark result at the repo root.

    Regression harnesses (``bench_read_path.py``) check their JSON in so
    a reviewer can diff before/after numbers; CI's quick mode overwrites
    the working copy but never commits it.  Returns the path written.
    """
    path = os.path.join(REPO_ROOT, name)
    with open(path, "w") as f:
        json.dump(payload, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def run_once(benchmark, fn: Callable[[], Dict]) -> Dict:
    """Run a whole simulated experiment once under pytest-benchmark.

    The benchmark fixture wall-times the simulation (useful to watch the
    harness itself); the returned dict carries the virtual-time metrics
    the paper reports.
    """
    box: Dict = {}

    def wrapper():
        box["result"] = fn()

    benchmark.pedantic(wrapper, rounds=1, iterations=1)
    return box["result"]
