"""Table 2: the target HPC systems.

Prints the modelled column of Table 2 for each platform profile and
sanity-checks the parameters the evaluation depends on.
"""

from __future__ import annotations

from benchmarks.harness import Report, run_once
from repro.simtime.profiles import all_systems


def test_table2_system_profiles(benchmark):
    def run():
        rep = Report(
            "table2 — target HPC systems (modelled parameters)",
            ["system", "site", "nvm-arch", "ranks/node", "nodes",
             "nvm-device", "interconnect"],
        )
        for name, s in sorted(all_systems().items()):
            rep.add(name, s.site, s.nvm_arch, s.ranks_per_node,
                    s.compute_nodes, s.nvm.name, s.network.name)
        rep.emit()
        return {"systems": len(all_systems())}

    result = run_once(benchmark, run)
    assert result["systems"] == 3
