"""YCSB core workloads on PapyrusKV (extension benchmark).

Not a paper figure — the standard KVS workload suite, run against the
Summitdev model to characterize the store under Zipfian skew,
read-modify-write cycles, and insert churn.  Sanity shapes: the
read-only workload (C) is the fastest; the update-heavy (A) and RMW (F)
workloads are slower; all complete with the advertised mixes.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads.ycsb import CORE_WORKLOADS, run_ycsb

RANKS = 4
RECORDS = 80
OPS = 120

_OPTS = Options(
    memtable_capacity=4 * MB,
    remote_memtable_capacity=1 * MB,
    compaction_interval=0,
)


def test_ycsb_core_suite(benchmark):
    def run():
        rep = Report(
            f"ycsb — core workloads on Summitdev ({RANKS} ranks, "
            f"{RECORDS} records + {OPS} ops per rank, KRPS)",
            ["workload", "mix", "KRPS"],
        )
        series = {}
        for name, w in sorted(CORE_WORKLOADS.items()):
            def app(ctx, wl=w):
                return run_ycsb(ctx, wl, RECORDS, OPS, 1 * KB, _OPTS)

            res = spmd_run(RANKS, app, system=SUMMITDEV, timeout=600)
            krps = RANKS * OPS / max(r.run_time for r in res) / 1e3
            mix = (f"{w.read_pct}r/{w.update_pct}u/"
                   f"{w.insert_pct}i/{w.rmw_pct}rmw")
            rep.add(name, mix, krps)
            series[name] = krps
        rep.emit()
        return series

    series = run_once(benchmark, run)
    # every workload completes with sane throughput
    assert all(v > 0 for v in series.values())
    # F does a read PLUS a write per RMW op — strictly more work than
    # any single-op mix, so it must be the slowest (modulo jitter)
    assert series["F"] <= min(series[w] for w in "ABCD") * 1.1
    # C is read-only: it must not trail the read-mostly B by much
    assert series["C"] >= series["B"] * 0.8
