"""Ablations of PapyrusKV's design choices (beyond the paper's figures).

The paper motivates several mechanisms without isolating them; these
ablations quantify each one in the model:

* **bloom filters** — §2.4: "the bloom filter increases the probability
  of a successful lookup".  Ablation: disable bloom consultation and
  measure gets for *absent* keys across a deep SSTable stack.
* **compaction** — §2.5: compaction bounds the SSTable count.
  Ablation: compare get cost with compaction on vs. off after heavy
  overwriting.
* **flushing-queue depth** — §2.4: the bounded queue trades put
  latency against memory footprint.  Ablation: sweep the queue depth
  and measure put-phase back-pressure stalls.
* **local cache** — Figure 3's local cache tier.  Ablation: repeat
  gets with the cache on vs. off.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options, SSTABLE
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size


def _base_opts(**kw):
    base = dict(
        memtable_capacity=64 * KB,
        remote_memtable_capacity=64 * KB,
        compaction_interval=0,
        cache_local_enabled=False,
    )
    base.update(kw)
    return Options(**base)


def _single_rank(fn):
    return spmd_run(1, fn, system=SUMMITDEV, timeout=300)[0]


def test_ablation_bloom_filters(benchmark):
    """Absent-key gets: bloom filters must skip nearly every table."""

    def run():
        results = {}
        for bloom in (True, False):
            def app(ctx, b=bloom):
                env = Papyrus(ctx)
                db = env.open("abl-bloom", _base_opts(bloom_enabled=b))
                gen = KeyGenerator(16, rank_seed(21, 0))
                for k in gen.keys(400):  # ~14 SSTables of ~28 keys
                    db.put(k, value_of_size(2 * KB))
                db.barrier(SSTABLE)
                t0 = ctx.clock.now
                miss_gen = KeyGenerator(16, rank_seed(99, 7))
                for k in miss_gen.keys(50):
                    db.get_or_none(k)  # absent
                elapsed = ctx.clock.now - t0
                db.close()
                env.finalize()
                return elapsed

            results[bloom] = _single_rank(app)
        rep = Report(
            "ablation-bloom — 50 absent-key gets over a deep SSTable "
            "stack (virtual seconds)",
            ["bloom", "time s", "speedup"],
        )
        rep.add("on", results[True], results[False] / results[True])
        rep.add("off", results[False], 1.0)
        rep.emit()
        return results

    results = run_once(benchmark, run)
    # bloom-gated misses must be at least 5x cheaper
    assert results[False] > 5 * results[True]


def test_ablation_compaction(benchmark):
    """Heavy overwriting: compaction keeps the read path shallow."""

    def run():
        results = {}
        for interval in (4, 0):  # 0 disables compaction
            def app(ctx, iv=interval):
                env = Papyrus(ctx)
                # MemTable smaller than one overwrite round, so every
                # round spills at least one SSTable
                db = env.open(
                    "abl-comp",
                    _base_opts(compaction_interval=iv,
                               memtable_capacity=32 * KB),
                )
                keys = KeyGenerator(16, rank_seed(22, 0)).keys(40)
                for round_ in range(12):  # overwrite everything 12x
                    for k in keys:
                        db.put(k, value_of_size(1 * KB, fill=round_ + 1))
                db.barrier(SSTABLE)
                tables = len(db.ssids)
                t0 = ctx.clock.now
                for k in keys:
                    db.get(k)
                elapsed = ctx.clock.now - t0
                db.close()
                env.finalize()
                return tables, elapsed

            results[interval] = _single_rank(app)
        rep = Report(
            "ablation-compaction — gets after 12x overwrite (virtual s)",
            ["compaction", "sstables", "get time s"],
        )
        rep.add("every 4 SSIDs", *results[4])
        rep.add("off", *results[0])
        rep.emit()
        return results

    results = run_once(benchmark, run)
    tables_on, time_on = results[4]
    tables_off, time_off = results[0]
    assert tables_on < tables_off  # compaction bounds the table count
    assert time_on <= time_off * 1.05  # and the read path stays cheap


def test_ablation_flush_queue_depth(benchmark):
    """A deeper flushing queue absorbs put bursts; depth 1 stalls."""

    def run():
        results = {}
        for depth in (1, 2, 8):
            def app(ctx, d=depth):
                env = Papyrus(ctx)
                db = env.open("abl-queue", _base_opts(flush_queue_capacity=d))
                gen = KeyGenerator(16, rank_seed(23, 0))
                t0 = ctx.clock.now
                for k in gen.keys(600):  # ~20 MemTable rotations
                    db.put(k, value_of_size(2 * KB))
                elapsed = ctx.clock.now - t0
                db.close()
                env.finalize()
                return elapsed

            results[depth] = _single_rank(app)
        rep = Report(
            "ablation-queue — put burst vs flushing-queue depth "
            "(virtual seconds)",
            ["depth", "put time s"],
        )
        for d, t in sorted(results.items()):
            rep.add(d, t)
        rep.emit()
        return results

    results = run_once(benchmark, run)
    # deeper queues overlap more flushing with the put burst
    assert results[8] <= results[1]


def test_ablation_async_migration(benchmark):
    """§5.2's attribution, isolated: relaxed-mode batched asynchronous
    migration makes PapyrusKV's graph *construction* faster than a
    synchronous (sequential-consistency) build of the same graph."""
    from repro.apps.meraculous import run_meraculous
    from repro.config import RELAXED, SEQUENTIAL
    from repro.mpi.launcher import spmd_run
    from repro.simtime.profiles import CORI

    def run():
        results = {}
        for mode, label in ((RELAXED, "relaxed"), (SEQUENTIAL, "sequential")):
            def app(ctx, m=mode):
                return run_meraculous(
                    ctx, "papyrus", genome_length=5000, k=15,
                    options=Options(
                        memtable_capacity=256 * KB,
                        remote_memtable_capacity=16 * KB,
                        consistency=m,
                        compaction_interval=0,
                    ),
                )

            res = spmd_run(4, app, system=CORI, timeout=300)
            assert res[0].verified is True
            results[label] = max(r.construction_time for r in res)
        rep = Report(
            "ablation-migration — de Bruijn construction, asynchronous "
            "(relaxed) vs synchronous (sequential) migration (virtual s)",
            ["migration", "construction s", "speedup"],
        )
        rep.add("async (relaxed)", results["relaxed"],
                results["sequential"] / results["relaxed"])
        rep.add("sync (sequential)", results["sequential"], 1.0)
        rep.emit()
        return results

    results = run_once(benchmark, run)
    assert results["relaxed"] < results["sequential"]


def test_ablation_local_cache(benchmark):
    """Repeat gets: the local cache removes the SSTable I/O."""

    def run():
        results = {}
        for cache in (True, False):
            def app(ctx, c=cache):
                env = Papyrus(ctx)
                db = env.open(
                    "abl-cache",
                    _base_opts(cache_local_enabled=c,
                               cache_local_capacity=8 * MB),
                )
                keys = KeyGenerator(16, rank_seed(24, 0)).keys(60)
                for k in keys:
                    db.put(k, value_of_size(4 * KB))
                db.barrier(SSTABLE)
                for k in keys:
                    db.get(k)  # warm pass
                t0 = ctx.clock.now
                for _ in range(3):
                    for k in keys:
                        db.get(k)  # measured repeat passes
                elapsed = ctx.clock.now - t0
                db.close()
                env.finalize()
                return elapsed

            results[cache] = _single_rank(app)
        rep = Report(
            "ablation-cache — repeated gets with/without the local cache "
            "(virtual seconds)",
            ["local cache", "time s", "speedup"],
        )
        rep.add("on", results[True], results[False] / results[True])
        rep.add("off", results[False], 1.0)
        rep.emit()
        return results

    results = run_once(benchmark, run)
    assert results[True] < results[False] / 3
