"""Figure 6: basic operations performance in a single node.

Paper setup: 20/68/32 ranks (one node) run put, barrier(SSTABLE), and
get phases with 16 B keys and values from 256 B to 1 MB, on the NVM
repository and on Lustre.  KRPS for small values, MBPS for large.

Scaled here to 8 ranks and 60 iterations with a value-size subset; the
shapes under test:

* puts are memory-speed and identical across storages;
* gets on local NVM beat gets on Lustre by a wide margin (the paper's
  orders-of-magnitude panel);
* barrier (flush) on Lustre catches up as values grow (OST striping),
  and Cori's striped burst buffer behaves Lustre-like.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import (
    KB, MB, Report, aggregate_krps, aggregate_mbps, fmt_size, run_once,
)
from repro.config import Options
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI, STAMPEDE, SUMMITDEV
from repro.workloads import basic_app

RANKS = 8
ITERS = 60
VALUE_SIZES = [1 * KB, 16 * KB, 128 * KB, 1 * MB]

# the paper runs with a 1 GB MemTable threshold so the put phase
# "performs on the memory only"; scale the threshold with the scaled
# iteration count the same way (no flush back-pressure during puts)
_OPTS = Options(
    memtable_capacity=96 * MB,
    remote_memtable_capacity=96 * MB,
    compaction_interval=0,
)


def _run(system, repository, vallen):
    def app(ctx):
        return basic_app(
            ctx, 16, vallen, ITERS, _OPTS, repository=repository,
        )

    return spmd_run(RANKS, app, system=system, timeout=300)


@pytest.mark.parametrize(
    "system", [SUMMITDEV, STAMPEDE, CORI], ids=lambda s: s.name
)
def test_fig6_basic_ops(benchmark, system):
    def run():
        rep = Report(
            f"fig6-{system.name} — basic ops, single node "
            f"({RANKS} ranks, {ITERS} iters/rank)",
            ["storage", "value", "put KRPS", "barrier MBPS", "get KRPS",
             "get MBPS"],
        )
        series = {}
        for repo in ("nvm", "lustre"):
            for vallen in VALUE_SIZES:
                res = _run(system, repo, vallen)
                row = (
                    aggregate_krps(res, "put"),
                    aggregate_mbps(res, "barrier"),
                    aggregate_krps(res, "get"),
                    aggregate_mbps(res, "get"),
                )
                rep.add(repo, fmt_size(vallen), *row)
                series[(repo, vallen)] = row
        rep.emit()
        return series

    series = run_once(benchmark, run)

    # shape: puts never touch the storage, so NVM ~ Lustre for puts
    for vallen in VALUE_SIZES:
        put_nvm = series[("nvm", vallen)][0]
        put_lustre = series[("lustre", vallen)][0]
        assert put_nvm == pytest.approx(put_lustre, rel=0.35)

    # shape: gets on the NVM repository beat gets on Lustre
    for vallen in VALUE_SIZES:
        assert series[("nvm", vallen)][2] > series[("lustre", vallen)][2]

    # shape: local NVM architectures win gets by a much larger factor
    # than the dedicated (network-attached, striped) one
    if system.nvm_arch == "local":
        small = VALUE_SIZES[0]
        assert (
            series[("nvm", small)][2] > 3 * series[("lustre", small)][2]
        )

    # shape: Lustre's striping closes the barrier (flush) gap as values
    # grow — its MBPS must improve with size faster than it does at 1KB
    lustre_small = series[("lustre", VALUE_SIZES[0])][1]
    lustre_big = series[("lustre", VALUE_SIZES[-1])][1]
    assert lustre_big > lustre_small
