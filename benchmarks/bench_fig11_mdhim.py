"""Figure 11: PapyrusKV vs. MDHIM on Summitdev.

Paper setup: the Figure 9 workload at a 50/50 update/read ratio, 16 B
keys, 8 B and 128 KB values, on node-local NVMe (N) and Lustre (L),
comparing PapyrusKV (PKV) against MDHIM over LevelDB.

Shapes under test:

* 8 B values: both systems run in memory; PKV ≥ MDHIM (MDHIM pays the
  duplicated buffer hand-off between its two layers);
* 128 KB values: SSTables are in play; PKV-N beats MDHIM-N (storage
  group sharing + single framework) and both beat their Lustre runs;
* PKV's advantage persists across the rank sweep (scalability).
"""

from __future__ import annotations

import random

import pytest

from benchmarks.harness import KB, MB, Report, fmt_size, run_once
from repro.baselines import MDHIM
from repro.config import Options, SEQUENTIAL
from repro.core.env import Papyrus
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size

RANK_SWEEP = [2, 4, 8]
ITERS = 100
VALUE_SIZES = [8, 64 * KB]  # paper: 8B and 128KB (scaled)

_PKV_OPTS = Options(
    memtable_capacity=512 * KB,
    remote_memtable_capacity=256 * KB,
    consistency=SEQUENTIAL,  # MDHIM ops are synchronous: like-for-like
    compaction_interval=0,
)


def _mixed_phase(ctx, put, get, keys, value, iters, seed):
    rng = random.Random(rank_seed(seed, ctx.world_rank))
    t0 = ctx.clock.now
    for _ in range(iters):
        k = keys[rng.randrange(len(keys))]
        if rng.randrange(100) < 50:
            put(k, value)
        else:
            get(k)
    return ctx.clock.now - t0


def _pkv_app(vallen, repository):
    def app(ctx):
        env = Papyrus(ctx, repository=repository)
        db = env.open("fig11", _PKV_OPTS)
        gen = KeyGenerator(16, rank_seed(11, ctx.world_rank))
        keys = gen.keys(ITERS)
        value = value_of_size(vallen)
        for k in keys:
            db.put(k, value)
        db.barrier()
        t = _mixed_phase(ctx, db.put, db.get, keys, value, ITERS, 12)
        db.close()
        env.finalize()
        return t

    return app


def _mdhim_app(vallen, repository):
    def app(ctx):
        kv = MDHIM(ctx, "fig11m", repository=repository,
                   memtable_capacity=512 * KB)
        gen = KeyGenerator(16, rank_seed(11, ctx.world_rank))
        keys = gen.keys(ITERS)
        value = value_of_size(vallen)
        for k in keys:
            kv.put(k, value)
        kv.barrier()
        t = _mixed_phase(ctx, kv.put, kv.get, keys, value, ITERS, 12)
        kv.close()
        return t

    return app


def test_fig11_pkv_vs_mdhim(benchmark):
    def run():
        rep = Report(
            "fig11 — PapyrusKV (PKV) vs MDHIM, 50/50 update/read (KRPS)",
            ["ranks", "value", "PKV-N", "MDHIM-N", "PKV-L", "MDHIM-L"],
        )
        series = {}
        for vallen in VALUE_SIZES:
            for n in RANK_SWEEP:
                row = []
                for factory, repo in (
                    (_pkv_app, "nvm"), (_mdhim_app, "nvm"),
                    (_pkv_app, "lustre"), (_mdhim_app, "lustre"),
                ):
                    times = spmd_run(
                        n, factory(vallen, repo),
                        system=SUMMITDEV, timeout=600,
                    )
                    row.append(n * ITERS / max(times) / 1e3)
                rep.add(n, fmt_size(vallen), *row)
                series[(vallen, n)] = row
        rep.emit()
        return series

    series = run_once(benchmark, run)

    for n in RANK_SWEEP:
        pkv_n, mdhim_n, pkv_l, mdhim_l = series[(8, n)]
        # 8B: everything in memory; storage makes little difference...
        assert pkv_n == pytest.approx(pkv_l, rel=0.4)
        assert mdhim_n == pytest.approx(mdhim_l, rel=0.4)
        # ...and PKV's single framework beats the layered MDHIM
        assert pkv_n > mdhim_n

    ratios = []
    for n in RANK_SWEEP:
        pkv_n, mdhim_n, pkv_l, mdhim_l = series[(64 * KB, n)]
        # large values hit the storage: NVMe beats Lustre for both
        assert pkv_n > pkv_l
        assert mdhim_n > mdhim_l
        # PKV-N stays at or ahead of MDHIM-N (within jitter per point)
        assert pkv_n > 0.93 * mdhim_n
        ratios.append(pkv_n / mdhim_n)
    # and wins on aggregate across the sweep
    assert sum(ratios) / len(ratios) > 1.0
