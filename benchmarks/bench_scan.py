"""Scan-path regression bench: streamed pruned scans vs. read-all.

A 4-rank YCSB-E-style workload: each rank loads its own shard in
key-prefixed phases — one flushed SSTable per disjoint prefix range, so
the footer fences can prune — then times a Zipfian-start short-scan
phase (the workload-E op: "the next n records from a start key", n
drawn uniformly) twice:

* **baseline** — the seed-era scan shape (``reference_scan`` with
  ``block_cache_enabled=False, fence_pruning=False``): every table read
  in full and every tier materialized, per scan;
* **optimized** — the streamed snapshot-pinned iterator over the
  defaults: table selection gated by the footer fences, only the
  overlapping SSData blocks read, through the shared block cache at low
  priority.

A second experiment exercises the collective plane: a full
``scan_global`` drain must keep its peak merge buffer within the
``O(nranks × chunk)`` window (never a shard materialization), and a
``limit``-bounded global scan must ship only the chunks a top-K needs.

Emits ``BENCH_SCAN.json`` at the repo root — the checked-in copy is the
regression reference.  Quick mode (``PKV_BENCH_QUICK=1``, CI's
bench-smoke job) shrinks the workload and skips the speedup gate but
still fails if fence pruning, block-bracketed reads, or chunked
shipping stop being exercised (a zero counter = a wiring regression).
"""

from __future__ import annotations

import os
from itertools import islice

from benchmarks.harness import KB, MB, Report, run_once, write_json
from repro.config import Options, SSTABLE
from repro.core.env import Papyrus
from repro.core.scan import reference_scan
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.util.hashing import owner_rank
from repro.workloads.generators import value_of_size
from repro.workloads.ycsb import ZipfianGenerator

RANKS = 4
VALLEN = 1 * KB
ZIPF_THETA = 0.99

QUICK = os.environ.get("PKV_BENCH_QUICK", "") not in ("", "0")
PHASES = 4 if QUICK else 6
KEYS_PER_PHASE = 16 if QUICK else 40
SCANS = 30 if QUICK else 200
MAX_SCAN_LEN = 10 if QUICK else 25
GLOBAL_CHUNK = 16
GLOBAL_LIMIT = 12


def _shard_keys(rank: int, nranks: int) -> list:
    """This rank's keys, grouped into ``PHASES`` disjoint prefix ranges.

    Phase ``p``'s keys all start with ``b"p%02d-"``; each flushed
    SSTable covers one prefix range, so a scan window inside one phase
    fence-prunes every other phase's table.
    """
    keys = []
    for p in range(PHASES):
        got, i = 0, 0
        while got < KEYS_PER_PHASE:
            cand = f"{p:02d}-{i:06d}".encode()
            i += 1
            if owner_rank(cand, nranks, None) == rank:
                keys.append(cand)
                got += 1
    return keys


def _phase_end(start: bytes) -> bytes:
    """Exclusive upper bound of the start key's prefix phase
    (``b"~" > b"-"``, so this caps the window at the phase)."""
    return start[:2] + b"~"


def _options(optimized: bool) -> Options:
    return Options(
        memtable_capacity=1 * MB,
        cache_local_enabled=False,  # measure the SSTable path itself
        compaction_interval=0,      # keep one table per load phase
        group_size=1,
        block_cache_enabled=optimized,
        fence_pruning=optimized,
    )


def _scan_app_factory(optimized: bool):
    def app(ctx):
        env = Papyrus(ctx)
        db = env.open("scanpath", _options(optimized))
        keys = _shard_keys(ctx.world_rank, ctx.nranks)
        value = value_of_size(VALLEN)
        per_phase = len(keys) // PHASES
        for p in range(PHASES):
            for k in keys[p * per_phase:(p + 1) * per_phase]:
                db.put(k, value)
            db.barrier(SSTABLE)  # one SSTable per prefix range

        db._invalidate_readers()  # cold reader/block state both ways
        pruned0 = db.stats.scan_tables_pruned
        blocks0 = db.stats.scan_blocks_read

        zipf = ZipfianGenerator(len(keys), ZIPF_THETA,
                                seed=41 + ctx.world_rank)
        import random

        rng = random.Random(43 + ctx.world_rank)
        pairs_seen = 0
        t0 = ctx.clock.now
        for _ in range(SCANS):
            start = keys[zipf.next()]
            n = rng.randrange(1, MAX_SCAN_LEN + 1)
            if optimized:
                with db.scan(start, _phase_end(start)) as it:
                    pairs_seen += sum(1 for _ in islice(it, n))
            else:
                # the pre-overhaul shape: materialize the whole merged
                # window (read_all on every table), then slice
                pairs_seen += len(
                    reference_scan(db, start, _phase_end(start))[:n]
                )
        elapsed = ctx.clock.now - t0

        out = {
            "elapsed": elapsed,
            "pairs": pairs_seen,
            "scan_tables_pruned": db.stats.scan_tables_pruned - pruned0,
            "scan_blocks_read": db.stats.scan_blocks_read - blocks0,
        }
        db.barrier()
        db.close()
        env.finalize()
        return out

    return app


def _run_scan_config(optimized: bool) -> dict:
    results = spmd_run(
        RANKS, _scan_app_factory(optimized), system=SUMMITDEV, timeout=300,
    )
    elapsed = max(r["elapsed"] for r in results)
    return {
        "scans_per_sec": RANKS * SCANS / elapsed,
        "elapsed_virtual_s": elapsed,
        "pairs_returned": sum(r["pairs"] for r in results),
        "scan_tables_pruned": sum(r["scan_tables_pruned"] for r in results),
        "scan_blocks_read": sum(r["scan_blocks_read"] for r in results),
    }


def test_scan_path_regression(benchmark):
    def run():
        baseline = _run_scan_config(optimized=False)
        optimized = _run_scan_config(optimized=True)
        speedup = (baseline["elapsed_virtual_s"]
                   / optimized["elapsed_virtual_s"])

        rep = Report(
            "scan_path — 4-rank YCSB-E short scans, prefix-phased shards",
            ["config", "scans/s", "tables_pruned", "blocks_read"],
        )
        for name, r in (("baseline", baseline), ("optimized", optimized)):
            rep.add(name, r["scans_per_sec"], r["scan_tables_pruned"],
                    r["scan_blocks_read"])
        rep.emit()

        payload = {
            "bench": "scan_path",
            "ranks": RANKS,
            "phases": PHASES,
            "keys_per_rank": PHASES * KEYS_PER_PHASE,
            "value_bytes": VALLEN,
            "scans_per_rank": SCANS,
            "max_scan_len": MAX_SCAN_LEN,
            "zipf_theta": ZIPF_THETA,
            "quick": QUICK,
            "baseline": baseline,
            "optimized": optimized,
            "speedup": round(speedup, 3),
        }
        payload["global_scan"] = _run_global_experiment()
        write_json("BENCH_SCAN.json", payload)
        return payload

    payload = run_once(benchmark, run)

    opt = payload["optimized"]
    # wiring guards: the fences and the block bracketing must actually
    # carry the scan phase, and both configs must return the same data
    assert opt["scan_tables_pruned"] > 0, "fences never pruned a table"
    assert opt["scan_blocks_read"] > 0, "no block-bracketed reads"
    assert opt["pairs_returned"] == payload["baseline"]["pairs_returned"]
    g = payload["global_scan"]
    assert g["chunks_shipped"] > 0, "global scan shipped no chunks"
    assert g["peak_buffered"] <= g["peak_bound"], (
        f"global-scan merge buffered {g['peak_buffered']} pairs, "
        f"over the O(nranks x chunk) bound {g['peak_bound']}"
    )
    assert g["limited_chunks_shipped"] < g["chunks_shipped"], (
        "a limit-bounded scan shipped as many chunks as the full drain"
    )
    assert g["limited_chunks_shipped"] <= 2 * RANKS, (
        "a top-K needed more than two rounds of chunks"
    )
    if not QUICK:
        # the perf gate proper: narrow-window streamed scans must be an
        # order of magnitude faster than the read-all baseline
        assert payload["speedup"] >= 10.0, (
            f"scan-path speedup {payload['speedup']}x < 10x"
        )


# ---------------------------------------------------------------------------
# Collective plane: the windowed owner-ordered global merge.
# ---------------------------------------------------------------------------


def _global_app(ctx):
    env = Papyrus(ctx)
    db = env.open("scanglobal", _options(True))
    keys = _shard_keys(ctx.world_rank, ctx.nranks)
    value = value_of_size(VALLEN)
    per_phase = len(keys) // PHASES
    for p in range(PHASES):
        for k in keys[p * per_phase:(p + 1) * per_phase]:
            db.put(k, value)
        db.barrier(SSTABLE)

    chunks0 = db.stats.scan_chunks_shipped
    full = list(db.scan_global(chunk=GLOBAL_CHUNK))
    full_chunks = db.stats.scan_chunks_shipped - chunks0
    peak = db.stats.scan_peak_buffered

    chunks1 = db.stats.scan_chunks_shipped
    limited = list(db.scan_global(limit=GLOBAL_LIMIT, chunk=GLOBAL_CHUNK))
    limited_chunks = db.stats.scan_chunks_shipped - chunks1
    assert limited == full[:GLOBAL_LIMIT]

    out = {
        "pairs": len(full),
        "peak_buffered": peak,
        "chunks_shipped": full_chunks,
        "limited_chunks_shipped": limited_chunks,
    }
    db.barrier()
    db.close()
    env.finalize()
    return out


def _run_global_experiment() -> dict:
    results = spmd_run(RANKS, _global_app, system=SUMMITDEV, timeout=300)
    total_keys = RANKS * PHASES * KEYS_PER_PHASE
    assert all(r["pairs"] == total_keys for r in results)
    return {
        "chunk": GLOBAL_CHUNK,
        "limit": GLOBAL_LIMIT,
        "pairs": total_keys,
        # worst rank: the memory bound must hold everywhere
        "peak_buffered": max(r["peak_buffered"] for r in results),
        "peak_bound": RANKS * GLOBAL_CHUNK + GLOBAL_CHUNK,
        # chunk counters are per-shipping-rank; sum = cluster traffic
        "chunks_shipped": sum(r["chunks_shipped"] for r in results),
        "limited_chunks_shipped":
            sum(r["limited_chunks_shipped"] for r in results),
    }
