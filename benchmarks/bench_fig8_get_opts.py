"""Figure 8: get throughput with the two optimizations.

Paper setup: after an init phase, measure gets under four configs —
Default (group size 1, sequential SSTable scan), Def+SG (storage group
= node), Def+B (binary search), Def+SG+B (both).

Shapes under test:

* binary search (B) beats the sequential scan;
* the storage group (SG) adds on top of B (paper: Def+SG+B is best,
  7%/2%/7% over Def+B on the three systems);
* Def+SG+B is the best configuration overall.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options, SSTABLE
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size
from repro.core.env import Papyrus

RANK_SWEEP = [4, 8, 16]
ITERS = 150
VALLEN = 16 * KB

CONFIGS = {
    "Def": dict(group_size=1, binary_search=False),
    "Def+SG": dict(group_size=None, binary_search=False),
    "Def+B": dict(group_size=1, binary_search=True),
    "Def+SG+B": dict(group_size=None, binary_search=True),
}


def _app_factory(group_size, binary_search):
    def app(ctx):
        opts = Options(
            memtable_capacity=1 * MB,
            remote_memtable_capacity=512 * KB,
            group_size=group_size,
            binary_search=binary_search,
            compaction_interval=0,
            cache_local_enabled=False,  # measure the SSTable path itself
        )
        env = Papyrus(ctx)
        db = env.open("fig8", opts)
        gen = KeyGenerator(16, rank_seed(8, ctx.world_rank))
        keys = gen.keys(ITERS)
        value = value_of_size(VALLEN)
        for k in keys:
            db.put(k, value)
        db.barrier(SSTABLE)
        t0 = ctx.clock.now
        for k in keys:
            db.get(k)
        get_time = ctx.clock.now - t0
        db.close()
        env.finalize()
        return get_time

    return app


def test_fig8_get_optimizations(benchmark):
    def run():
        rep = Report(
            "fig8 — get throughput with storage group (SG) and binary "
            "search (B) (KRPS)",
            ["ranks"] + list(CONFIGS),
        )
        series = {}
        for n in RANK_SWEEP:
            row = []
            for name, cfg in CONFIGS.items():
                times = spmd_run(
                    n, _app_factory(**cfg), system=SUMMITDEV, timeout=300
                )
                krps = n * ITERS / max(times) / 1e3
                row.append(krps)
                series[(n, name)] = krps
            rep.add(n, *row)
        rep.emit()
        return series

    series = run_once(benchmark, run)

    for n in RANK_SWEEP:
        # binary search helps over the sequential scan
        assert series[(n, "Def+B")] > series[(n, "Def")]
        # the combination is within noise of the best configuration
        # (the paper's own SG margin is only 2-7%, below this model's
        # run-to-run jitter; the B effect is the dominant, stable one)
        best = max(series[(n, c)] for c in CONFIGS)
        assert series[(n, "Def+SG+B")] >= 0.95 * best
        assert series[(n, "Def+SG+B")] > 2 * series[(n, "Def")]
