"""Figure 9: various read/update workloads (and the +P protection run).

Paper setup: init phase, then a mixed phase with read/update ratios
50/50, 95/5, 100/0, and 100/0 with PAPYRUSKV_RDONLY protection enabling
the remote cache; sequential consistency throughout.

Shapes under test:

* on Summitdev (fast NVMe gets) throughput improves as the read ratio
  rises;
* 100/0+P beats 100/0 — the remote cache eliminates communication and
  file I/O on repeat gets.
"""

from __future__ import annotations

import pytest

from benchmarks.harness import KB, MB, Report, run_once
from repro.config import Options
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV
from repro.workloads import workload_app

RANK_SWEEP = [2, 4, 8]
ITERS = 80
VALLEN = 16 * KB

_OPTS = Options(
    memtable_capacity=8 * MB,
    remote_memtable_capacity=1 * MB,
    compaction_interval=0,
)

MIXES = [("50/50", 50, False), ("95/5", 5, False),
         ("100/0", 0, False), ("100/0+P", 0, True)]


def test_fig9_workload_mixes(benchmark):
    def run():
        rep = Report(
            "fig9 — read/update workload mixes (KRPS, sequential "
            "consistency)",
            ["ranks"] + [m[0] for m in MIXES],
        )
        series = {}
        for n in RANK_SWEEP:
            row = []
            for label, update_pct, protect in MIXES:
                def app(ctx, u=update_pct, p=protect):
                    return workload_app(
                        ctx, 16, VALLEN, ITERS, u, _OPTS,
                        protect_readonly=p,
                    )

                res = spmd_run(n, app, system=SUMMITDEV, timeout=300)
                krps = n * ITERS / max(r.mixed_time for r in res) / 1e3
                row.append(krps)
                series[(n, label)] = krps
            rep.add(n, *row)
        rep.emit()
        return series

    series = run_once(benchmark, run)

    for n in RANK_SWEEP:
        # Summitdev shape: more reads, more throughput
        assert series[(n, "100/0")] >= series[(n, "50/50")] * 0.8
        # the protected run's remote cache pays off
        assert series[(n, "100/0+P")] > series[(n, "100/0")]
