"""Observability roll-up tests."""

from __future__ import annotations

import pytest

from repro import Papyrus, SSTABLE, spmd_run
from repro.metrics import database_metrics, format_report, machine_metrics
from tests.conftest import small_options


def _run_and_collect(nranks=2):
    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("met", small_options())
            for i in range(80):
                db.put(f"k{i:03d}".encode(), b"v" * 40)
            db.barrier(SSTABLE)
            for i in range(0, 80, 5):
                db.get(f"k{i:03d}".encode())
            dbm = database_metrics(db)
            db.close()
            mm = machine_metrics(ctx.machine)
            return dbm, mm

    return spmd_run(nranks, app)


class TestDatabaseMetrics:
    def test_operation_counts(self):
        (dbm, _), _ = _run_and_collect()
        assert dbm["puts"] == 80
        assert dbm["gets"] == 16
        assert dbm["local_puts"] + dbm["remote_puts"] == 80
        assert dbm["local_gets"] + dbm["remote_gets"] == 16

    def test_lsm_counters(self):
        (dbm, _), _ = _run_and_collect()
        assert dbm["flushes"] >= 1
        assert dbm["sstables"] >= 1

    def test_background_busy_time(self):
        (dbm, _), _ = _run_and_collect()
        # flush work runs on the pipelined build/sync workers; the
        # compaction worker only charges for actual compactions
        assert dbm["flush_build_busy_s"] > 0
        assert dbm["flush_sync_busy_s"] > 0

    def test_cache_sections_present(self):
        (dbm, _), _ = _run_and_collect()
        assert "local_cache" in dbm
        assert "remote_cache" in dbm
        assert dbm["local_cache"]["entries"] >= 0

    def test_get_tiers_sum(self):
        (dbm, _), _ = _run_and_collect()
        assert sum(dbm["get_tiers"].values()) == dbm["gets"]

    def test_index_replication_counters_present(self):
        (dbm, _), _ = _run_and_collect()
        for key in ("index_repl_hits", "index_repl_misses",
                    "index_repl_stale", "index_repl_fallbacks",
                    "index_pulls", "index_publishes"):
            assert dbm[key] == 0  # feature is opt-in and off here


class TestMachineMetrics:
    def test_nvm_devices_counted(self):
        (_, mm), _ = _run_and_collect()
        dom = mm["nvm"]["domain0"]
        assert dom["write"]["bytes"] > 0  # flushed SSTables
        assert dom["write"]["ops"] > 0

    def test_lustre_untouched_without_checkpoint(self):
        (_, mm), _ = _run_and_collect()
        assert mm["lustre"]["write"]["bytes"] == 0


class TestReport:
    def test_format_report(self):
        (dbm, _), _ = _run_and_collect()
        text = format_report(dbm)
        assert "database 'met'" in text
        assert "flushes" in text
        assert "get tiers" in text
        # the index-repl line only renders when the plane saw traffic
        assert "index repl" not in text
        dbm["index_repl_hits"] = 9
        dbm["index_pulls"] = 2
        text = format_report(dbm)
        assert "index repl: 9 one-sided hits" in text
        assert "2 pulls" in text
