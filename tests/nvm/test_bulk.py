"""Bulk streaming transfer tests (checkpoint/restart staging path)."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import TimedResource


@pytest.fixture()
def store(tmp_path):
    return PosixStore(
        str(tmp_path), TimedResource("d", latency_s=0.01,
                                     bandwidth_Bps=1_000_000.0)
    )


class TestBulkRead:
    def test_reads_all_files(self, store):
        for i in range(5):
            store.write(f"d/f{i}", bytes([i]) * 100, 0.0)
        blobs, end = store.bulk_read([f"d/f{i}" for i in range(5)], 0.0)
        assert len(blobs) == 5
        assert blobs["d/f3"] == b"\x03" * 100

    def test_single_latency_for_many_files(self, store):
        for i in range(10):
            store.write(f"d/f{i}", b"x" * 10, 0.0)
        dev = store.read_device
        dev.reset()
        _, end = store.bulk_read([f"d/f{i}" for i in range(10)], 0.0)
        # one streamed op: ~1 latency + 100 bytes, NOT 10 latencies
        assert end < 0.02

    def test_missing_file_raises(self, store):
        with pytest.raises(StorageError):
            store.bulk_read(["nope"], 0.0)

    def test_empty_list(self, store):
        blobs, end = store.bulk_read([], 0.0)
        assert blobs == {}


class TestBulkWrite:
    def test_writes_all_files(self, store):
        end = store.bulk_write({"o/a": b"1", "o/b": b"22"}, 0.0)
        assert store.read("o/a", 0.0)[0] == b"1"
        assert store.read("o/b", 0.0)[0] == b"22"
        assert end > 0

    def test_aggregate_bandwidth_charged(self, store):
        blobs = {f"o/f{i}": b"x" * 500_000 for i in range(4)}  # 2 MB
        end = store.bulk_write(blobs, 0.0)
        # 2 MB at 1 MB/s + one latency
        assert end == pytest.approx(2.01, rel=0.05)

    def test_roundtrip_via_bulk(self, store):
        src = {f"s/f{i}": bytes([i]) * 64 for i in range(8)}
        store.bulk_write(src, 0.0)
        blobs, _ = store.bulk_read(sorted(src), 0.0)
        assert blobs == src
