"""Machine and storage-group layout tests."""

from __future__ import annotations

import os

import pytest

from repro.nvm.storage import Machine, StorageLayout
from repro.simtime.profiles import CORI, STAMPEDE, SUMMITDEV


class TestStorageLayout:
    def test_group_of(self):
        lay = StorageLayout(8, 4)
        assert [lay.group_of(r) for r in range(8)] == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_group_size_one_isolates(self):
        lay = StorageLayout(4, 1)
        assert [lay.group_of(r) for r in range(4)] == [0, 1, 2, 3]
        assert lay.ngroups == 4

    def test_group_size_clamped_to_nranks(self):
        lay = StorageLayout(4, 100)
        assert lay.ngroups == 1
        assert lay.ranks_in_group(0) == [0, 1, 2, 3]

    def test_ranks_in_group_partial_tail(self):
        lay = StorageLayout(10, 4)
        assert lay.ranks_in_group(2) == [8, 9]

    def test_invalid_group_size(self):
        with pytest.raises(ValueError):
            StorageLayout(4, 0)


class TestMachineLocalArch:
    def test_per_node_devices(self, tmp_path):
        with Machine(SUMMITDEV, 40, base_dir=str(tmp_path)) as m:
            assert m.nnodes == 2
            s0 = m.nvm_store(0)
            s19 = m.nvm_store(19)
            s20 = m.nvm_store(20)
            assert s0 is s19  # same node shares the device & directory
            assert s0 is not s20
            assert s0.root != s20.root

    def test_shares_nvm(self, tmp_path):
        with Machine(SUMMITDEV, 40, base_dir=str(tmp_path)) as m:
            assert m.shares_nvm(0, 19)
            assert not m.shares_nvm(0, 20)

    def test_default_group_is_node(self, tmp_path):
        with Machine(SUMMITDEV, 40, base_dir=str(tmp_path)) as m:
            assert m.default_group_size == 20
        with Machine(STAMPEDE, 68, base_dir=str(tmp_path / "s")) as m:
            assert m.default_group_size == 68


class TestMachineDedicatedArch:
    def test_single_shared_store(self, tmp_path):
        with Machine(CORI, 64, base_dir=str(tmp_path)) as m:
            assert m.nvm_store(0) is m.nvm_store(63)
            assert m.shares_nvm(0, 63)

    def test_default_group_is_all_ranks(self, tmp_path):
        with Machine(CORI, 64, base_dir=str(tmp_path)) as m:
            assert m.default_group_size == 64

    def test_bb_pays_network_hop(self, tmp_path):
        with Machine(CORI, 4, base_dir=str(tmp_path)) as m:
            assert m.nvm_store(0).extra_latency_s > 0


class TestMachineCommon:
    def test_lustre_store_global(self, tmp_path):
        with Machine(SUMMITDEV, 40, base_dir=str(tmp_path)) as m:
            assert m.lustre_store() is m.lustre_store()

    def test_trim_nvm_clears_files(self, tmp_path):
        with Machine(SUMMITDEV, 4, base_dir=str(tmp_path)) as m:
            s = m.nvm_store(0)
            s.write("f", b"data", 0.0)
            m.trim_nvm()
            assert not s.exists("f")
            assert os.path.isdir(s.root)  # directory itself survives

    def test_reset_timing(self, tmp_path):
        with Machine(SUMMITDEV, 4, base_dir=str(tmp_path)) as m:
            s = m.nvm_store(0)
            s.write("f", b"x" * 1000, 0.0)
            m.reset_timing()
            assert s.device.available == 0.0

    def test_close_removes_owned_tempdir(self):
        m = Machine(SUMMITDEV, 2)
        base = m.base_dir
        assert os.path.isdir(base)
        m.close()
        assert not os.path.isdir(base)

    def test_close_keeps_caller_dir(self, tmp_path):
        m = Machine(SUMMITDEV, 2, base_dir=str(tmp_path / "keep"))
        m.close()
        assert os.path.isdir(str(tmp_path / "keep"))

    def test_unknown_arch_rejected(self, tmp_path):
        import dataclasses

        bad = dataclasses.replace(SUMMITDEV, nvm_arch="weird")
        with pytest.raises(ValueError):
            Machine(bad, 2, base_dir=str(tmp_path))

    def test_layout_override(self, tmp_path):
        with Machine(SUMMITDEV, 40, base_dir=str(tmp_path)) as m:
            assert m.layout().group_size == 20
            assert m.layout(group_size=1).group_size == 1
