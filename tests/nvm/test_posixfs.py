"""Costed POSIX store tests."""

from __future__ import annotations

import pytest

from repro.errors import StorageError
from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import StripedResource, TimedResource


@pytest.fixture()
def store(tmp_path):
    dev = TimedResource("d", latency_s=0.001, bandwidth_Bps=1_000_000.0)
    return PosixStore(str(tmp_path / "root"), dev)


class TestReadWrite:
    def test_write_read_roundtrip(self, store):
        end = store.write("a/b.bin", b"hello", 0.0)
        assert end > 0
        data, end2 = store.read("a/b.bin", end)
        assert data == b"hello"
        assert end2 > end

    def test_partial_read(self, store):
        store.write("f", b"0123456789", 0.0)
        data, _ = store.read("f", 0.0, offset=3, length=4)
        assert data == b"3456"

    def test_read_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.read("nope", 0.0)

    def test_overwrite(self, store):
        store.write("f", b"old", 0.0)
        store.write("f", b"new!", 0.0)
        assert store.read("f", 0.0)[0] == b"new!"

    def test_append(self, store):
        store.append("f", b"abc", 0.0)
        store.append("f", b"def", 0.0)
        assert store.read("f", 0.0)[0] == b"abcdef"

    def test_size_and_exists(self, store):
        assert not store.exists("f")
        store.write("f", b"12345", 0.0)
        assert store.exists("f")
        assert store.size("f") == 5

    def test_size_missing_raises(self, store):
        with pytest.raises(StorageError):
            store.size("missing")


class TestListingAndDelete:
    def test_listdir(self, store):
        store.write("d/x", b"1", 0.0)
        store.write("d/a", b"2", 0.0)
        assert store.listdir("d") == ["a", "x"]
        assert store.listdir("empty-or-missing") == []

    def test_delete(self, store):
        store.write("f", b"x", 0.0)
        store.delete("f", 0.0)
        assert not store.exists("f")
        store.delete("f", 0.0)  # idempotent

    def test_delete_tree(self, store):
        for i in range(3):
            store.write(f"tree/sub/f{i}", b"x", 0.0)
        store.delete_tree("tree", 0.0)
        assert store.listdir("tree") == []


class TestPathSafety:
    def test_escape_rejected(self, store):
        with pytest.raises(StorageError):
            store.path("../outside")

    def test_makedirs(self, store):
        p = store.makedirs("a/b/c")
        assert store.listdir("a/b") == ["c"]
        assert p.endswith("a/b/c")


class TestCosting:
    def test_write_charges_device(self, store):
        end = store.write("f", b"x" * 1_000_000, 0.0)
        # 1 MB at 1 MB/s + 1 ms latency
        assert end == pytest.approx(1.001, rel=0.01)

    def test_small_read_cheaper_than_big_read(self, store):
        store.write("f", b"x" * 1_000_000, 0.0)
        _, t_small = store.read("f", 100.0, offset=0, length=64)
        _, t_big = store.read("f", 200.0)
        assert (t_small - 100.0) < (t_big - 200.0)

    def test_extra_latency_applied(self, tmp_path):
        dev = TimedResource("d", 0.0, 1e9)
        near = PosixStore(str(tmp_path / "n"), dev, extra_latency_s=0.0)
        far = PosixStore(str(tmp_path / "f"), dev, extra_latency_s=0.5)
        t_near = near.write("f", b"x", 0.0)
        t_far = far.write("f", b"x", 0.0)
        assert t_far - t_near >= 0.4

    def test_striped_large_read_uses_all_stripes(self, tmp_path):
        dev = StripedResource("l", 4, 0.0, 1_000_000.0)
        s = PosixStore(str(tmp_path / "s"), dev)
        s.write("f", b"x" * 4_000_000, 0.0)
        for stripe in dev.stripes:
            assert stripe.bytes_moved > 0

    def test_separate_read_device(self, tmp_path):
        w = TimedResource("w", 0.0, 1e6)
        r = TimedResource("r", 0.0, 1e6)
        s = PosixStore(str(tmp_path / "rw"), w, read_device=r)
        s.write("f", b"x" * 1000, 0.0)
        s.read("f", 0.0)
        assert w.bytes_moved == 1000
        assert r.bytes_moved == 1000
