"""Virtual-time tracing tests."""

from __future__ import annotations

import json

import pytest

from repro import Papyrus, SSTABLE, spmd_run
from repro.tools.trace import Span, Tracer, export_chrome_trace, summarize
from tests.conftest import small_options


class TestTracer:
    def test_record_and_snapshot(self):
        t = Tracer()
        t.record("op", 0, "main", 1.0, 2.0)
        spans = t.spans()
        assert spans == [Span("op", 0, "main", 1.0, 2.0)]
        assert spans[0].duration == 1.0
        assert len(t) == 1

    def test_rejects_backwards_span(self):
        with pytest.raises(ValueError):
            Tracer().record("op", 0, "main", 2.0, 1.0)

    def test_capacity_drops(self):
        t = Tracer(capacity=3)
        for i in range(5):
            t.record("op", 0, "main", i, i + 1)
        assert len(t) == 3
        assert t.dropped == 2

    def test_merged_sorted(self):
        a, b = Tracer(), Tracer()
        a.record("x", 0, "main", 5.0, 6.0)
        b.record("y", 1, "main", 1.0, 2.0)
        merged = a.merged([b])
        assert [s.name for s in merged] == ["y", "x"]


class TestExport:
    def test_chrome_trace_format(self, tmp_path):
        t = Tracer()
        t.record("put", 0, "main", 0.0, 0.001)
        t.record("flush ssid=1", 0, "compaction", 0.0005, 0.002)
        path = str(tmp_path / "trace.json")
        n = export_chrome_trace(t.spans(), path)
        assert n == 2
        doc = json.load(open(path))
        events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(events) == 2
        assert events[0]["pid"] == 0
        assert {e["tid"] for e in events} == {0, 2}  # main + compaction
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "rank 0"

    def test_summarize(self):
        t = Tracer()
        t.record("put", 0, "main", 0.0, 1.0)
        t.record("put", 1, "main", 0.0, 2.0)
        t.record("get", 0, "main", 0.0, 0.5)
        s = summarize(t.spans())
        assert s["main:put"] == {"count": 2, "total_s": 3.0}
        assert s["main:get"]["count"] == 1


class TestDatabaseIntegration:
    def test_spans_cover_every_lane(self, tmp_path):
        def app(ctx):
            tracer = Tracer()
            with Papyrus(ctx) as env:
                db = env.open("tr", small_options())
                db.attach_tracer(tracer)
                for i in range(150):
                    db.put(f"k{i:03d}".encode(), b"v" * 32)
                db.barrier(SSTABLE)
                for i in range(0, 150, 11):
                    db.get(f"k{i:03d}".encode())
                db.close()
            return {s.lane for s in tracer.spans()}, len(tracer)

        results = spmd_run(2, app)
        lanes = set().union(*(r[0] for r in results))
        assert "main" in lanes
        # flushes trace on the pipeline's stage lanes now
        assert "flush-build" in lanes
        assert "flush-sync" in lanes
        assert "dispatcher" in lanes
        assert "handler" in lanes
        assert all(r[1] > 0 for r in results)

    def test_exported_run_trace(self, tmp_path):
        def app(ctx):
            tracer = Tracer()
            with Papyrus(ctx) as env:
                db = env.open("tr", small_options())
                db.attach_tracer(tracer)
                for i in range(40):
                    db.put(f"k{i}".encode(), b"v" * 16)
                db.barrier(SSTABLE)
                db.close()
            return tracer

        tracers = spmd_run(2, app)
        merged = tracers[0].merged(tracers[1:])
        path = str(tmp_path / "run.json")
        n = export_chrome_trace(merged, path)
        assert n == len(merged) > 0
        doc = json.load(open(path))
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert pids == {0, 1}
