"""Repository inspector and CLI tests."""

from __future__ import annotations

import os

import pytest

from repro import Options, Papyrus, SSTABLE, spmd_run
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from repro.tools.cli import main as cli_main
from repro.tools.dump import dump_sstable, inspect_repository, verify_sstable
from tests.conftest import small_options


@pytest.fixture()
def populated_machine(tmp_path):
    machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("insp", small_options())
            for i in range(60):
                db.put(f"key{i:03d}".encode(), f"val{i}".encode())
            if ctx.world_rank == 0:
                db.delete(b"key000")
            db.barrier(SSTABLE)
            db.close()

    spmd_run(2, app, machine=machine)
    yield machine
    machine.close()


def _nvm_root(machine):
    return machine.nvm_store(0).root


class TestInspect:
    def test_summary_fields(self, populated_machine):
        summaries = inspect_repository(_nvm_root(populated_machine))
        assert len(summaries) == 1
        db = summaries[0]
        assert db.name == "insp"
        assert db.nranks == 2
        assert set(db.ranks) == {0, 1}
        assert db.total_records >= 60  # data + tombstone
        assert db.total_bytes > 0
        assert db.total_sstables >= 2

    def test_table_key_ranges_sorted(self, populated_machine):
        summaries = inspect_repository(_nvm_root(populated_machine))
        for tables in summaries[0].ranks.values():
            for t in tables:
                assert t.min_key <= t.max_key

    def test_missing_root_raises(self):
        with pytest.raises(FileNotFoundError):
            inspect_repository("/nonexistent/path")

    def test_empty_root(self, tmp_path):
        assert inspect_repository(str(tmp_path)) == []


class TestDumpVerify:
    def _first_table(self, machine):
        root = _nvm_root(machine)
        summaries = inspect_repository(root)
        rank, tables = next(
            (r, ts) for r, ts in summaries[0].ranks.items() if ts
        )
        return os.path.join(root, "db_insp", f"rank{rank}"), tables[0].ssid

    def test_dump_records(self, populated_machine):
        rank_dir, ssid = self._first_table(populated_machine)
        recs = list(dump_sstable(rank_dir, ssid))
        assert recs
        keys = [r.key for r in recs]
        assert keys == sorted(keys)

    def test_dump_limit(self, populated_machine):
        rank_dir, ssid = self._first_table(populated_machine)
        assert len(list(dump_sstable(rank_dir, ssid, limit=3))) <= 3

    def test_verify_clean_table(self, populated_machine):
        rank_dir, ssid = self._first_table(populated_machine)
        assert verify_sstable(rank_dir, ssid) == []

    def test_verify_detects_corruption(self, populated_machine):
        rank_dir, ssid = self._first_table(populated_machine)
        index_path = os.path.join(rank_dir, f"{ssid:010d}.ssi")
        with open(index_path, "r+b") as f:
            f.seek(14)  # inside the first entry's offset field
            f.write(b"\xff\xff")
        assert verify_sstable(rank_dir, ssid) != []


class TestCli:
    def test_inspect_command(self, populated_machine, capsys):
        rc = cli_main(["inspect", _nvm_root(populated_machine)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "database 'insp'" in out
        assert "SSTables" in out

    def test_inspect_empty(self, tmp_path, capsys):
        rc = cli_main(["inspect", str(tmp_path)])
        assert rc == 1

    def test_dump_command(self, populated_machine, capsys):
        root = _nvm_root(populated_machine)
        summaries = inspect_repository(root)
        rank, tables = next(
            (r, ts) for r, ts in summaries[0].ranks.items() if ts
        )
        rc = cli_main([
            "dump", os.path.join(root, "db_insp", f"rank{rank}"),
            str(tables[0].ssid), "--limit", "2",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "->" in out

    def test_verify_command(self, populated_machine, capsys):
        root = _nvm_root(populated_machine)
        summaries = inspect_repository(root)
        rank, tables = next(
            (r, ts) for r, ts in summaries[0].ranks.items() if ts
        )
        rc = cli_main([
            "verify", os.path.join(root, "db_insp", f"rank{rank}"),
            str(tables[0].ssid),
        ])
        assert rc == 0
        assert "OK" in capsys.readouterr().out

    def test_demo_command(self, capsys):
        rc = cli_main(["demo", "--ranks", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified" in out

    def test_systems_command(self, capsys):
        rc = cli_main(["systems"])
        out = capsys.readouterr().out
        assert rc == 0
        for name in ("summitdev", "stampede", "cori"):
            assert name in out

    def test_figure_unknown_name(self, capsys):
        rc = cli_main(["figure", "fig99"])
        assert rc == 2
        assert "unknown figure" in capsys.readouterr().out

    def test_report_command(self, capsys):
        rc = cli_main(["report"])
        out = capsys.readouterr().out
        # results exist in this checkout from prior bench runs
        assert rc in (0, 1)
        if rc == 0:
            assert "==" in out
