"""Cross-cutting property-based tests on substrate invariants."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.scan import merge_scan
from repro.mpi.launcher import spmd_run
from repro.simtime.resources import BackgroundWorker, StripedResource, TimedResource


# --------------------------------------------------------------- resources
@settings(max_examples=150, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),
    st.integers(min_value=0, max_value=10_000_000),
)))
def test_device_horizon_monotone(ops):
    """A device's horizon never regresses, every operation is served no
    earlier than its request, and no two exclusive operations overlap.

    A later *call* may complete earlier than a previous one: the device
    serves requests in virtual-arrival order, so a call whose request
    time falls inside a remembered idle window is served there instead
    of queueing at the horizon.  Exclusivity (disjoint service spans)
    is the invariant, not call-order completion.
    """
    dev = TimedResource("d", 1e-4, 1e9)
    prev_avail = 0.0
    spans = []
    for t_req, nbytes in ops:
        duration = dev.service_time(nbytes)
        end = dev.access(t_req, nbytes)
        assert end >= t_req + duration - 1e-12
        assert end <= dev.available + 1e-12
        assert dev.available >= prev_avail
        prev_avail = dev.available
        spans.append((end - duration, end))
    spans.sort()
    for (_, e1), (s2, _) in zip(spans, spans[1:]):
        assert s2 >= e1 - 1e-9


@settings(max_examples=100, deadline=None)
@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=100_000_000),
)
def test_striping_never_slower_than_single(nstripes, nbytes):
    """An n-striped store's service time never exceeds one stripe's."""
    single = TimedResource("s", 1e-3, 1e9)
    striped = StripedResource("m", nstripes, 1e-3, 1e9)
    assert striped.service_time(nbytes) <= single.service_time(nbytes) + 1e-12


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0, max_value=50, allow_nan=False),
    st.floats(min_value=0, max_value=5, allow_nan=False),
)))
def test_background_worker_serializes(jobs):
    """Worker completions are totally ordered and busy time adds up."""
    w = BackgroundWorker("w")
    prev = 0.0
    total = 0.0
    for t_enq, dur in jobs:
        end = w.submit(t_enq, dur)
        assert end >= prev
        assert end >= t_enq + dur
        prev = end
        total += dur
    assert w.busy_time == pytest.approx(total)


# --------------------------------------------------------------------- scan
@settings(max_examples=150, deadline=None)
@given(st.lists(
    st.dictionaries(
        st.binary(min_size=1, max_size=6),
        st.tuples(st.binary(max_size=12), st.booleans()),
        max_size=15,
    ),
    min_size=1, max_size=5,
))
def test_merge_scan_equals_dict_overlay(generations):
    """merge_scan over newest-first tiers == applying dicts oldest-first
    and dropping tombstones."""
    model: dict = {}
    for gen in generations:  # oldest .. newest
        for k, (v, tomb) in gen.items():
            model[k] = (b"" if tomb else v, tomb)
    tiers = [
        sorted((k, b"" if tomb else v, tomb) for k, (v, tomb) in gen.items())
        for gen in reversed(generations)  # newest first
    ]
    got = list(merge_scan(tiers))
    want = sorted(
        (k, v) for k, (v, tomb) in model.items() if not tomb
    )
    assert got == want


@settings(max_examples=50, deadline=None)
@given(
    st.binary(min_size=1, max_size=4),
    st.binary(min_size=1, max_size=4),
    st.sets(st.binary(min_size=1, max_size=4), max_size=30),
)
def test_merge_scan_range_is_filter(start, end, keys):
    tiers = [sorted((k, b"v", False) for k in keys)]
    got = [k for k, _ in merge_scan(tiers, start, end)]
    want = sorted(k for k in keys if start <= k < end)
    assert got == want


# -------------------------------------------------------------- persistence
@settings(max_examples=6, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
    st.dictionaries(
        st.integers(min_value=0, max_value=30),
        st.binary(min_size=1, max_size=24),
        min_size=1, max_size=20,
    ),
)
def test_redistribution_invariant_under_rank_change(n_src, n_dst, data):
    """Property: a snapshot taken with n_src ranks restarts on n_dst
    ranks with exactly the same key-value map, for any (n_src, n_dst)."""
    from repro import Papyrus
    from repro.nvm.storage import Machine
    from repro.simtime.profiles import SUMMITDEV
    from tests.conftest import small_options

    machine = Machine(SUMMITDEV, max(n_src, n_dst))
    try:
        def writer(ctx):
            with Papyrus(ctx) as env:
                db = env.open("prop-rd", small_options())
                for i, (k, v) in enumerate(sorted(data.items())):
                    if i % ctx.nranks == ctx.world_rank:
                        db.put(f"key{k:02d}".encode(), v)
                db.barrier()
                db.checkpoint("prop-snap").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)

        spmd_run(n_src, writer, machine=machine, timeout=120)
        machine.trim_nvm()

        def reader(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("prop-snap", "prop-rd",
                                     small_options())
                ev.wait(ctx.clock)
                db.barrier()
                got = dict(db.scan_collect())
                want = {f"key{k:02d}".encode(): v for k, v in data.items()}
                assert got == want
                db.close()

        spmd_run(n_dst, reader, machine=machine, timeout=120)
    finally:
        machine.close()


# --------------------------------------------------------------------- comm
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                max_size=30))
def test_p2p_fifo_per_source_property(tags):
    """Messages with the same (source, tag) are never reordered, for any
    interleaving of tag values."""

    def app(ctx):
        if ctx.world_rank == 0:
            for i, tag in enumerate(tags):
                ctx.comm.send((tag, i), 1, tag=tag)
        else:
            per_tag: dict = {}
            for tag in sorted(set(tags)):
                per_tag[tag] = [
                    ctx.comm.recv(source=0, tag=tag)[1]
                    for _ in range(tags.count(tag))
                ]
            for tag, seqs in per_tag.items():
                expected = [i for i, t in enumerate(tags) if t == tag]
                assert seqs == expected
            return True

    assert spmd_run(2, app, timeout=60)[1]


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(min_value=2, max_value=6),
       st.integers(min_value=0, max_value=3))
def test_collectives_agree_property(nranks, root):
    root = root % nranks

    def app(ctx):
        data = ctx.comm.bcast(
            ("payload", ctx.world_rank) if ctx.world_rank == root else None,
            root=root,
        )
        gathered = ctx.comm.allgather(ctx.world_rank)
        return data, gathered

    res = spmd_run(nranks, app, timeout=60)
    assert all(r[0] == ("payload", root) for r in res)
    assert all(r[1] == list(range(nranks)) for r in res)
