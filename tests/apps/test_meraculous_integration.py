"""End-to-end Meraculous runs over both DHT backends."""

from __future__ import annotations

import pytest

from repro.apps.meraculous import run_meraculous
from repro.apps.meraculous.dht import PapyrusDHT, UpcDHT
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI
from tests.conftest import small_options


def _opts():
    return small_options(
        memtable_capacity=1 << 16, remote_memtable_capacity=1 << 13
    )


class TestEndToEnd:
    @pytest.mark.parametrize("backend", ["papyrus", "upc"])
    def test_assembly_verifies(self, backend):
        def app(ctx):
            return run_meraculous(
                ctx, backend=backend, genome_length=4000, k=15,
                options=_opts(),
            )

        res = spmd_run(3, app, system=CORI, timeout=240)
        assert res[0].verified is True
        assert all(r.construction_time > 0 for r in res)
        assert all(r.traversal_time > 0 for r in res)
        assert sum(r.n_kmers_inserted for r in res) > 0

    def test_backends_agree_on_contigs(self):
        """The same genome assembles identically over both backends."""

        def app(ctx):
            a = run_meraculous(ctx, "papyrus", 3000, 13, seed=31,
                               options=_opts())
            b = run_meraculous(ctx, "upc", 3000, 13, seed=31)
            return (a.n_contigs, b.n_contigs, a.verified, b.verified)

        res = spmd_run(2, app, system=CORI, timeout=240)
        total_a = sum(r[0] for r in res)
        total_b = sum(r[1] for r in res)
        assert total_a == total_b
        assert res[0][2] is True and res[0][3] is True

    def test_papyrus_readonly_protection_variant(self):
        def app(ctx):
            return run_meraculous(
                ctx, "papyrus", 2500, 13, options=_opts(),
                protect_readonly=True,
            )

        res = spmd_run(2, app, system=CORI, timeout=240)
        assert res[0].verified is True

    def test_unknown_backend_rejected(self):
        def app(ctx):
            with pytest.raises(ValueError):
                run_meraculous(ctx, backend="spark")

        spmd_run(1, app)

    def test_upc_remote_ops_counted(self):
        def app(ctx):
            dht = UpcDHT(ctx)
            dht.put(b"AAAA", b"AT")
            # drive at least one remote op from rank != owner
            for i in range(16):
                dht.get(f"AAA{i:x}".encode().upper()[:4])
            dht.barrier()
            total = dht.remote_ops + dht.local_ops
            dht.close()
            return total

        res = spmd_run(2, app)
        assert all(t > 0 for t in res)

    def test_papyrus_custom_hash_affinity(self):
        """PapyrusDHT distributes by the shared k-mer hash (Figure 12)."""
        from repro.apps.meraculous.kmer import kmer_hash

        def app(ctx):
            dht = PapyrusDHT(ctx, _opts())
            for km in (b"ACGTACGTACG", b"TTTTTTTTTTT", b"GATTACAGATT"):
                assert dht.owner_of(km) == kmer_hash(km) % ctx.nranks
            dht.barrier()
            dht.close()

        spmd_run(3, app)
