"""Distributed stencil tests: bit-exact agreement with the serial solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.stencil import run_stencil, serial_solve, split_domain
from repro.apps.stencil.driver import resume_stencil
from repro.apps.stencil.solver import initial_field, step
from repro.mpi.launcher import spmd_run
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from tests.conftest import small_options


def _assemble(results, ncells, seed=0):
    """Glue per-rank slabs back into the full field."""
    full = initial_field(ncells, seed)
    out = full.copy()
    for r in results:
        out[r.start:r.stop] = r.field
    return out


class TestNumerics:
    def test_initial_field_deterministic(self):
        assert np.array_equal(initial_field(64, 1), initial_field(64, 1))

    def test_boundaries_fixed(self):
        u = serial_solve(64, 10)
        u0 = initial_field(64)
        assert u[0] == u0[0] and u[-1] == u0[-1]

    def test_step_conserves_shape(self):
        u = np.ones(10)
        out = step(u, 1.0, 1.0, 0.2)
        assert out.shape == u.shape
        assert np.allclose(out, 1.0)  # uniform field is steady

    def test_diffusion_smooths(self):
        u = serial_solve(128, 50)
        u0 = initial_field(128)
        assert u.max() < u0.max()  # the bump decays


class TestSplitDomain:
    def test_covers_interior(self):
        slabs = split_domain(100, 4)
        assert slabs[0][0] == 1
        assert slabs[-1][1] == 99
        for (a, b), (c, d) in zip(slabs, slabs[1:]):
            assert b == c

    def test_handles_remainders(self):
        slabs = split_domain(12, 5)
        sizes = [b - a for a, b in slabs]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1

    def test_more_ranks_than_cells(self):
        slabs = split_domain(4, 8)
        assert sum(b - a for a, b in slabs) == 2


class TestDistributedRun:
    @pytest.mark.parametrize("nranks", [1, 2, 3])
    def test_matches_serial_bit_exact(self, nranks):
        ncells, steps = 96, 12

        def app(ctx):
            return run_stencil(ctx, ncells, steps,
                               options=small_options())

        results = spmd_run(nranks, app, timeout=300)
        got = _assemble(results, ncells)
        want = serial_solve(ncells, steps)
        assert np.array_equal(got, want)  # bit-exact, not just close

    def test_halo_traffic_counted(self):
        def app(ctx):
            return run_stencil(ctx, 64, 6, options=small_options())

        results = spmd_run(3, app, timeout=300)
        # interior ranks exchange both sides, edges one
        assert results[1].halo_gets == 2 * 6
        assert results[0].halo_gets == 6

    def test_virtual_time_positive(self):
        def app(ctx):
            return run_stencil(ctx, 64, 4, options=small_options())

        results = spmd_run(2, app, timeout=300)
        assert all(r.virtual_time > 0 for r in results)


class TestCheckpointResume:
    def test_resume_same_ranks_bit_exact(self, tmp_path):
        ncells, steps, ckpt_at = 80, 14, 6
        machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

        def first(ctx):
            return run_stencil(ctx, ncells, steps, checkpoint_at=ckpt_at,
                               options=small_options())

        spmd_run(2, first, machine=machine, timeout=300)
        machine.trim_nvm()  # job boundary

        def second(ctx):
            return resume_stencil(
                ctx, "stencil-ckpt", ncells, steps, ckpt_at,
                source_nranks=2, options=small_options(),
            )

        results = spmd_run(2, second, machine=machine, timeout=300)
        got = _assemble(results, ncells)
        want = serial_solve(ncells, steps)
        assert np.array_equal(got, want)
        machine.close()

    def test_resume_on_different_rank_count(self, tmp_path):
        """The headline: restart the simulation on 3 ranks from a 2-rank
        snapshot; redistribution re-homes the field cells."""
        ncells, steps, ckpt_at = 80, 12, 5
        machine = Machine(SUMMITDEV, 4, base_dir=str(tmp_path))

        def first(ctx):
            return run_stencil(ctx, ncells, steps, checkpoint_at=ckpt_at,
                               options=small_options())

        spmd_run(2, first, machine=machine, timeout=300)
        machine.trim_nvm()

        def second(ctx):
            return resume_stencil(
                ctx, "stencil-ckpt", ncells, steps, ckpt_at,
                source_nranks=2, options=small_options(),
            )

        results = spmd_run(3, second, machine=machine, timeout=300)
        got = _assemble(results, ncells)
        want = serial_solve(ncells, steps)
        assert np.array_equal(got, want)
        machine.close()
