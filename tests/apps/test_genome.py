"""Synthetic genome / UFX generation tests."""

from __future__ import annotations

import pytest

from repro.apps.meraculous.genome import (
    synthesize_genome,
    ufx_from_genome,
    ufx_partition,
)
from repro.apps.meraculous.kmer import ALPHABET, FORK, TERM


class TestGenome:
    def test_length_and_alphabet(self):
        g = synthesize_genome(1000, seed=1)
        assert len(g) == 1000
        assert set(g) <= set(ALPHABET)

    def test_deterministic(self):
        assert synthesize_genome(500, seed=7) == synthesize_genome(500, seed=7)

    def test_seeds_differ(self):
        assert synthesize_genome(500, seed=1) != synthesize_genome(500, seed=2)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            synthesize_genome(0)

    def test_repeats_create_duplicates(self):
        g = synthesize_genome(5000, seed=3, repeat_fraction=0.2,
                              repeat_length=50)
        kmers = [g[i:i + 21] for i in range(len(g) - 20)]
        assert len(set(kmers)) < len(kmers)


class TestUfx:
    def test_every_kmer_present(self):
        g = synthesize_genome(400, seed=5)
        k = 15
        ufx = ufx_from_genome(g, k)
        for i in range(len(g) - k + 1):
            assert g[i:i + k] in ufx

    def test_unique_extensions_match_genome(self):
        g = b"ACGTACGGTTACCGA"
        k = 5
        ufx = ufx_from_genome(g, k)
        km = g[3:8]
        code = ufx[km]
        if code[0] not in (FORK, TERM):
            assert code[0] == g[2]
        if code[1] not in (FORK, TERM):
            assert code[1] == g[8]

    def test_boundaries_terminated(self):
        g = synthesize_genome(200, seed=9, repeat_fraction=0.0)
        k = 11
        ufx = ufx_from_genome(g, k)
        assert ufx[g[:k]][0] == TERM
        assert ufx[g[-k:]][1] == TERM

    def test_repeat_kmer_forked(self):
        base = synthesize_genome(60, seed=11, repeat_fraction=0.0)
        # embed the same 12-mer twice with different neighbours
        g = base + b"A" + base[:30] + b"T" + base
        ufx = ufx_from_genome(g, 9)
        forked = [km for km, code in ufx.items()
                  if FORK in (code[0], code[1])]
        assert forked

    def test_bad_k(self):
        with pytest.raises(ValueError):
            ufx_from_genome(b"ACGT", 0)
        with pytest.raises(ValueError):
            ufx_from_genome(b"ACGT", 5)


class TestPartition:
    def test_partition_covers_disjointly(self):
        g = synthesize_genome(600, seed=13)
        ufx = ufx_from_genome(g, 13)
        parts = [ufx_partition(ufx, r, 4) for r in range(4)]
        seen = [km for p in parts for km, _ in p]
        assert len(seen) == len(ufx)
        assert len(set(seen)) == len(ufx)

    def test_partition_deterministic(self):
        g = synthesize_genome(300, seed=17)
        ufx = ufx_from_genome(g, 11)
        assert ufx_partition(ufx, 1, 3) == ufx_partition(ufx, 1, 3)
