"""K-mer utility tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.meraculous.kmer import (
    decode_kmer,
    encode_kmer,
    extension_code,
    is_valid_base,
    kmer_hash,
    kmers_of,
    split_extension,
)

_dna = st.binary(min_size=1, max_size=40).map(
    lambda b: bytes(b"ACGT"[x % 4] for x in b)
)


class TestKmers:
    def test_kmers_of(self):
        assert list(kmers_of(b"ACGTA", 3)) == [b"ACG", b"CGT", b"GTA"]

    def test_kmers_of_full_length(self):
        assert list(kmers_of(b"ACGT", 4)) == [b"ACGT"]

    def test_kmers_of_too_short(self):
        assert list(kmers_of(b"AC", 3)) == []

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            list(kmers_of(b"ACGT", 0))


class TestEncoding:
    def test_round_trip(self):
        for km in (b"A", b"ACGT", b"TTTTGGGGCCCCAAAA"):
            assert decode_kmer(encode_kmer(km), len(km)) == km

    def test_invalid_base(self):
        with pytest.raises(ValueError):
            encode_kmer(b"ACGN")

    def test_is_valid_base(self):
        assert all(is_valid_base(b) for b in b"ACGT")
        assert not is_valid_base(ord("N"))


class TestHash:
    def test_deterministic(self):
        assert kmer_hash(b"ACGTACGT") == kmer_hash(b"ACGTACGT")

    def test_spread(self):
        from repro.apps.meraculous.genome import synthesize_genome

        g = synthesize_genome(2000, seed=99, repeat_fraction=0.0)
        owners = [kmer_hash(km) % 8 for km in kmers_of(g, 11)]
        assert len(set(owners)) == 8

    def test_64bit(self):
        assert 0 <= kmer_hash(b"AAAA") < (1 << 64)


class TestExtensionCodes:
    def test_pack_unpack(self):
        code = extension_code(ord("A"), ord("T"))
        assert code == b"AT"
        assert split_extension(code) == (ord("A"), ord("T"))

    def test_bad_length(self):
        with pytest.raises(ValueError):
            split_extension(b"ACT")


@settings(max_examples=100, deadline=None)
@given(_dna)
def test_encode_decode_property(seq):
    assert decode_kmer(encode_kmer(seq), len(seq)) == seq
