"""De Bruijn graph logic tests (serial reference)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.meraculous.debruijn import (
    contigs_from_ufx,
    is_contig_start,
    is_uu,
    walk_contig,
)
from repro.apps.meraculous.genome import synthesize_genome, ufx_from_genome
from repro.apps.meraculous.kmer import FORK, TERM


class TestUuPredicate:
    def test_concrete_bases(self):
        assert is_uu(b"AT")
        assert is_uu(b"GC")

    def test_fork_excluded(self):
        assert not is_uu(bytes([FORK, ord("A")]))
        assert not is_uu(bytes([ord("A"), FORK]))

    def test_terminator_counts_as_unique(self):
        assert is_uu(bytes([TERM, ord("A")]))
        assert is_uu(bytes([ord("A"), TERM]))


class TestLinearGenome:
    """A repeat-free genome is a single contig equal to the genome."""

    def test_single_contig(self):
        g = synthesize_genome(500, seed=21, repeat_fraction=0.0)
        contigs = contigs_from_ufx(ufx_from_genome(g, 21), 21)
        assert contigs == [g]

    def test_various_k(self):
        g = synthesize_genome(300, seed=23, repeat_fraction=0.0)
        for k in (11, 15, 31):
            contigs = contigs_from_ufx(ufx_from_genome(g, k), k)
            assert contigs == [g], f"k={k}"


class TestRepeatGenome:
    def test_contigs_cover_interfork_segments(self):
        g = synthesize_genome(4000, seed=25, repeat_fraction=0.1,
                              repeat_length=60)
        k = 15
        ufx = ufx_from_genome(g, k)
        contigs = contigs_from_ufx(ufx, k)
        assert len(contigs) >= 1
        # every contig is a substring of the genome
        for c in contigs:
            assert c in g
        # contigs are maximal UU chains: all their k-mers are UU
        for c in contigs:
            for i in range(len(c) - k + 1):
                assert is_uu(ufx[c[i:i + k]])

    def test_contigs_unique_starts(self):
        g = synthesize_genome(3000, seed=27, repeat_fraction=0.08,
                              repeat_length=50)
        k = 13
        ufx = ufx_from_genome(g, k)
        lookup = ufx.get
        starts = [
            km for km, code in ufx.items()
            if is_uu(code) and is_contig_start(km, code, lookup)
        ]
        assert len(starts) == len(contigs_from_ufx(ufx, k))


class TestWalk:
    def test_walk_stops_before_forked_kmer(self):
        # AAA chains toward AAT, but AAT is right-forked (not UU), so the
        # contig covers only the fork-free run
        ufx = {
            b"AAA": b"XT",                    # start, right ext T
            b"AAT": bytes([ord("A"), FORK]),  # right is a fork
        }
        contig = walk_contig(b"AAA", ufx[b"AAA"], ufx.get)
        assert contig == b"AAA"

    def test_walk_extends_through_uu_chain(self):
        # AAA -> AAT -> ATG, all fork-free
        ufx = {
            b"AAA": b"XT",
            b"AAT": b"AG",
            b"ATG": b"AX",
        }
        contig = walk_contig(b"AAA", ufx[b"AAA"], ufx.get)
        assert contig == b"AAATG"

    def test_walk_cycle_guard(self):
        # a perfect 2-cycle of UU k-mers (AC -> CA -> AC) must hit the
        # step guard rather than spin forever
        ufx = {b"AC": b"CA", b"CA": b"AC"}
        with pytest.raises(RuntimeError):
            walk_contig(b"AC", ufx[b"AC"], ufx.get, max_steps=10)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=100, max_value=1200),
    st.integers(min_value=9, max_value=25),
    st.integers(min_value=0, max_value=10_000),
)
def test_contigs_reassemble_linear_genomes(length, k, seed):
    """Property: for any repeat-free genome, traversal returns it whole."""
    g = synthesize_genome(length, seed=seed, repeat_fraction=0.0)
    if k >= length:
        k = length - 1
    if k < 5:
        k = 5
    ufx = ufx_from_genome(g, k)
    kmers = [g[i:i + k] for i in range(len(g) - k + 1)]
    if len(set(kmers)) != len(kmers):
        return  # accidental repeat: linearity assumption broken
    assert contigs_from_ufx(ufx, k) == [g]
