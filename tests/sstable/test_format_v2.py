"""SSTable format v2: checksummed blocks, self-checking sidecars.

The v2 promise: no ``get`` ever silently returns a wrong value.  Every
kind of single-byte damage to any of the three files must surface as a
typed error — and pristine v1 tables must keep working unchanged.
"""

from __future__ import annotations

import pytest

from repro.errors import CorruptionError, StorageError, TornWriteError
from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import TimedResource
from repro.sstable.format import (
    FORMAT_V1,
    Record,
    data_block_crcs,
    decode_bloom_file,
    encode_bloom_file,
    make_footer,
    parse_index,
)
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import encode_table, write_sstable
from repro.util.bloom import BloomFilter
from repro.util.checksum import _crc32c_py, crc32c


@pytest.fixture()
def store(tmp_path):
    return PosixStore(str(tmp_path), TimedResource("d", 0.0, 1e9))


RECORDS = [Record(f"key{i:04d}".encode(), f"val{i:04d}".encode() * 4)
           for i in range(200)]


def _write(store, fmt=2):
    write_sstable(store, "t", 1, RECORDS, 0.0,
                  format_version=fmt)


def _flip_byte(store, rel, offset=100):
    p = store.path(rel)
    blob = bytearray(open(p, "rb").read())
    blob[offset % len(blob)] ^= 0x40
    with open(p, "wb") as f:
        f.write(bytes(blob))


def _truncate(store, rel, keep):
    p = store.path(rel)
    blob = open(p, "rb").read()
    with open(p, "wb") as f:
        f.write(blob[:keep])


class TestChecksum:
    def test_known_answer(self):
        # the iSCSI/ext4 check vector: a wrong table would quarantine
        # every table ever written
        assert crc32c(b"123456789") == 0xE3069283
        assert _crc32c_py(b"123456789") == 0xE3069283

    def test_streaming_equals_one_shot(self):
        a, b = b"hello ", b"world"
        assert crc32c(b, crc32c(a)) == crc32c(a + b)


class TestV2RoundTrip:
    def test_write_read_all(self, store):
        _write(store)
        rd = SSTableReader(store, "t", 1)
        records, _ = rd.read_all(0.0)
        assert records == RECORDS

    def test_gets_both_search_modes(self, store):
        _write(store)
        rd = SSTableReader(store, "t", 1)
        for binary in (True, False):
            rec, _ = rd.get(b"key0150", 0.0, binary_search=binary)
            assert rec.value == b"val0150" * 4

    def test_index_carries_verified_footer(self, store):
        _write(store)
        blob, _ = store.read("t/0000000001.ssi", 0.0)
        entries, footer = parse_index(blob)
        assert len(entries) == len(RECORDS)
        data, _ = store.read("t/0000000001.ssd", 0.0)
        assert footer.data_len == len(data)
        assert tuple(data_block_crcs(data, footer.block_size)) == \
            tuple(footer.block_crcs)

    def test_verify_clean_table(self, store):
        _write(store)
        SSTableReader(store, "t", 1).verify(0.0)

    def test_bloom_file_self_checks(self):
        bloom = BloomFilter.for_capacity(len(RECORDS), 0.01)
        for r in RECORDS:
            bloom.add(r.key)
        blob = encode_bloom_file(bloom)
        assert decode_bloom_file(blob).__contains__(RECORDS[0].key)
        damaged = bytearray(blob)
        damaged[12] ^= 0x01
        with pytest.raises(CorruptionError):
            decode_bloom_file(bytes(damaged))


class TestV1Compat:
    def test_v1_tables_still_readable(self, store):
        _write(store, fmt=FORMAT_V1)
        rd = SSTableReader(store, "t", 1)
        rec, _ = rd.get(b"key0003", 0.0)
        assert rec.value == b"val0003" * 4
        records, _ = rd.read_all(0.0)
        assert records == RECORDS
        rd.verify(0.0)  # structural checks only, but must not raise

    def test_v1_index_has_no_footer(self, store):
        _write(store, fmt=FORMAT_V1)
        blob, _ = store.read("t/0000000001.ssi", 0.0)
        entries, footer = parse_index(blob)
        assert footer is None
        assert len(entries) == len(RECORDS)


class TestDamageDetection:
    """Single-byte damage anywhere -> typed error, never a wrong value."""

    def test_data_bit_flip_detected_on_get(self, store):
        _write(store)
        _flip_byte(store, "t/0000000001.ssd", offset=500)
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(CorruptionError):
            # probe every key: whichever path touches the damaged block
            # must raise, and no key may return a mangled value
            for r in RECORDS:
                got, _ = rd.get(r.key, 0.0)
                assert got is None or got.value == r.value

    def test_data_truncation_is_torn_write(self, store):
        _write(store)
        size = store.size("t/0000000001.ssd")
        _truncate(store, "t/0000000001.ssd", size - 7)
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(TornWriteError):
            rd.get(RECORDS[-1].key, 0.0)

    def test_index_bit_flip_detected(self, store):
        _write(store)
        _flip_byte(store, "t/0000000001.ssi", offset=40)
        with pytest.raises(CorruptionError):
            SSTableReader(store, "t", 1).get(RECORDS[0].key, 0.0)

    def test_bloom_bit_flip_detected(self, store):
        _write(store)
        _flip_byte(store, "t/0000000001.bf", offset=20)
        with pytest.raises(CorruptionError):
            SSTableReader(store, "t", 1).get(RECORDS[0].key, 0.0)

    def test_verify_reports_each_damage_kind(self, store):
        for rel, exc in [
            ("t/0000000001.ssd", CorruptionError),
            ("t/0000000001.ssi", CorruptionError),
            ("t/0000000001.bf", CorruptionError),
        ]:
            _write(store)
            _flip_byte(store, rel, offset=33)
            with pytest.raises(exc):
                SSTableReader(store, "t", 1).verify(0.0)

    def test_corruption_error_is_value_and_storage_error(self, store):
        _write(store)
        _flip_byte(store, "t/0000000001.ssi", offset=40)
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(ValueError):
            rd.get(RECORDS[0].key, 0.0)
        rd2 = SSTableReader(store, "t", 1)
        with pytest.raises(StorageError):
            rd2.get(RECORDS[0].key, 0.0)


class TestEncodeTable:
    def test_sidecars_are_pure_functions_of_data(self, store):
        blobs1 = encode_table(RECORDS)
        blobs2 = encode_table(RECORDS)
        assert blobs1 == blobs2

    def test_footer_tracks_bloom(self):
        blobs = encode_table(RECORDS)
        _, footer = parse_index(blobs["index"])
        assert footer.bloom_len == len(blobs["bloom"])
        assert footer.bloom_crc == crc32c(blobs["bloom"])

    def test_empty_data_has_one_block_crc(self):
        footer = make_footer(b"", b"bloomblob")
        assert footer.block_crcs == (crc32c(b""),)
