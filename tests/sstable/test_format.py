"""SSTable binary format round-trip tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sstable.format import (
    INDEX_ENTRY_LEN,
    IndexEntry,
    RECORD_HEADER_LEN,
    Record,
    decode_index,
    decode_record_at,
    decode_records,
    encode_index,
    encode_record,
    sstable_filenames,
)


class TestRecord:
    def test_encode_decode(self):
        rec = Record(b"key", b"value")
        blob = encode_record(rec)
        out, nxt = decode_record_at(blob, 0)
        assert out == rec
        assert nxt == len(blob)

    def test_tombstone_flag(self):
        rec = Record(b"dead", b"", tombstone=True)
        out, _ = decode_record_at(encode_record(rec), 0)
        assert out.tombstone
        assert out.value == b""

    def test_encoded_len(self):
        rec = Record(b"abc", b"01234")
        assert rec.encoded_len() == RECORD_HEADER_LEN + 8
        assert len(encode_record(rec)) == rec.encoded_len()

    def test_concatenated_stream(self):
        recs = [Record(f"k{i}".encode(), f"v{i}".encode()) for i in range(10)]
        blob = b"".join(encode_record(r) for r in recs)
        assert list(decode_records(blob)) == recs

    def test_empty_value(self):
        rec = Record(b"k", b"")
        out, _ = decode_record_at(encode_record(rec), 0)
        assert out.value == b""
        assert not out.tombstone


class TestIndex:
    def test_round_trip(self):
        entries = [
            IndexEntry(0, 3, 5, False),
            IndexEntry(17, 4, 0, True),
        ]
        assert decode_index(encode_index(entries)) == entries

    def test_empty_index(self):
        assert decode_index(encode_index([])) == []

    def test_bad_magic(self):
        blob = bytearray(encode_index([]))
        blob[0] ^= 0xFF
        with pytest.raises(ValueError):
            decode_index(bytes(blob))

    def test_truncated(self):
        blob = encode_index([IndexEntry(0, 1, 1, False)])
        with pytest.raises(ValueError):
            decode_index(blob[: len(blob) - 1])
        with pytest.raises(ValueError):
            decode_index(b"xx")

    def test_entry_geometry(self):
        e = IndexEntry(100, 4, 8, False)
        assert e.key_offset == 100 + RECORD_HEADER_LEN
        assert e.value_offset == e.key_offset + 4
        assert e.record_len == RECORD_HEADER_LEN + 12
        assert INDEX_ENTRY_LEN == 17


class TestFilenames:
    def test_three_files(self):
        d, i, b = sstable_filenames(42)
        assert d == "0000000042.ssd"
        assert i == "0000000042.ssi"
        assert b == "0000000042.bf"

    def test_lexicographic_matches_numeric(self):
        names = [sstable_filenames(n)[0] for n in (1, 9, 10, 100)]
        assert names == sorted(names)


@settings(max_examples=150, deadline=None)
@given(st.lists(
    st.tuples(st.binary(min_size=1, max_size=24),
              st.binary(max_size=64),
              st.booleans()),
    max_size=40,
))
def test_record_stream_round_trip(items):
    recs = [Record(k, b"" if t else v, t) for k, v, t in items]
    blob = b"".join(encode_record(r) for r in recs)
    assert list(decode_records(blob)) == recs
