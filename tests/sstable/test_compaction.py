"""Compaction tests: newest-SSID-wins merge, tombstone handling."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import TimedResource
from repro.sstable.compaction import compact, merge_records
from repro.sstable.format import Record
from repro.sstable.reader import SSTableReader, list_ssids
from repro.sstable.writer import write_sstable


@pytest.fixture()
def store(tmp_path):
    return PosixStore(str(tmp_path), TimedResource("d", 0.0, 1e9))


class TestMergeRecords:
    def test_disjoint_runs_interleave(self):
        a = [Record(b"a", b"1"), Record(b"c", b"3")]
        b = [Record(b"b", b"2"), Record(b"d", b"4")]
        assert [r.key for r in merge_records([a, b])] == [b"a", b"b", b"c", b"d"]

    def test_newest_run_wins(self):
        old = [Record(b"k", b"old")]
        new = [Record(b"k", b"new")]
        merged = merge_records([old, new])
        assert merged == [Record(b"k", b"new")]

    def test_three_way_duplicate(self):
        runs = [[Record(b"k", f"v{i}".encode())] for i in range(3)]
        assert merge_records(runs)[0].value == b"v2"

    def test_tombstone_kept_by_default(self):
        runs = [[Record(b"k", b"v")], [Record(b"k", b"", True)]]
        merged = merge_records(runs)
        assert merged[0].tombstone

    def test_drop_tombstones(self):
        runs = [[Record(b"k", b"v")], [Record(b"k", b"", True)]]
        assert merge_records(runs, drop_tombstones=True) == []

    def test_drop_tombstones_keeps_live(self):
        runs = [
            [Record(b"a", b"1"), Record(b"b", b"2")],
            [Record(b"a", b"", True)],
        ]
        assert merge_records(runs, drop_tombstones=True) == [Record(b"b", b"2")]

    def test_empty_runs(self):
        assert merge_records([]) == []
        assert merge_records([[], []]) == []


class TestCompact:
    def _write(self, store, ssid, pairs):
        recs = [
            Record(k, v, v == b"") for k, v in sorted(pairs.items())
        ]
        write_sstable(store, "t", ssid, recs, 0.0)

    def test_merges_to_single_table(self, store):
        self._write(store, 1, {b"a": b"1", b"b": b"2"})
        self._write(store, 2, {b"b": b"22", b"c": b"3"})
        n, _ = compact(store, "t", [1, 2], 3, 0.0)
        assert n == 3
        assert list_ssids(store, "t") == [3]
        rd = SSTableReader(store, "t", 3)
        assert rd.get(b"b", 0.0)[0].value == b"22"
        assert rd.get(b"a", 0.0)[0].value == b"1"

    def test_reuse_highest_input_ssid(self, store):
        self._write(store, 1, {b"a": b"1"})
        self._write(store, 2, {b"a": b"2"})
        compact(store, "t", [1, 2], 2, 0.0)
        assert list_ssids(store, "t") == [2]
        assert SSTableReader(store, "t", 2).get(b"a", 0.0)[0].value == b"2"

    def test_tombstones_dropped_on_full_compaction(self, store):
        self._write(store, 1, {b"a": b"1", b"b": b"2"})
        self._write(store, 2, {b"a": b""})  # tombstone
        compact(store, "t", [1, 2], 3, 0.0, drop_tombstones=True)
        rd = SSTableReader(store, "t", 3)
        assert rd.get(b"a", 0.0)[0] is None
        assert rd.get(b"b", 0.0)[0].value == b"2"

    def test_empty_input(self, store):
        n, t = compact(store, "t", [], 1, 5.0)
        assert n == 0 and t == 5.0

    def test_charges_time(self, store):
        slow = PosixStore(
            store.root + "-slow", TimedResource("s", 0.01, 1e6)
        )
        self._write(slow, 1, {b"a": b"x" * 1000})
        self._write(slow, 2, {b"b": b"y" * 1000})
        _, end = compact(slow, "t", [1, 2], 3, 0.0)
        assert end > 0.05  # several latency-charged file ops


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.dictionaries(st.binary(min_size=1, max_size=8),
                    st.binary(max_size=24), max_size=20),
    min_size=1, max_size=5,
))
def test_compaction_equals_dict_overlay(tmp_path_factory, generations):
    """Merging N generations == applying the dicts oldest→newest."""
    store = PosixStore(
        str(tmp_path_factory.mktemp("cmp")), TimedResource("d", 0.0, 1e9)
    )
    expected: dict = {}
    ssids = []
    for i, gen in enumerate(generations, start=1):
        if not gen:
            continue
        recs = [Record(k, v) for k, v in sorted(gen.items())]
        write_sstable(store, "t", i, recs, 0.0)
        ssids.append(i)
        expected.update(gen)
    if not ssids:
        return
    new_ssid = ssids[-1]
    compact(store, "t", ssids, new_ssid, 0.0)
    rd = SSTableReader(store, "t", new_ssid)
    out, _ = rd.read_all(0.0)
    assert {r.key: r.value for r in out} == expected
