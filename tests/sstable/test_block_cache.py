"""The shared SSData block cache: LRU accounting and verified-once fills.

Unit tests of :class:`repro.sstable.block_cache.BlockCache` itself plus
the reader integration that makes it safe: blocks enter the cache only
through a CRC-checked fill, so a cache hit never re-reads (or re-trusts)
the device.
"""

from __future__ import annotations

import pytest

from repro.errors import CorruptionError
from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import TimedResource
from repro.sstable.block_cache import BlockCache
from repro.sstable.format import FORMAT_V1, Record
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import write_sstable


@pytest.fixture()
def store(tmp_path):
    return PosixStore(str(tmp_path), TimedResource("d", 0.0, 1e9))


RECORDS = [Record(f"key{i:04d}".encode(), f"val{i:04d}".encode() * 40)
           for i in range(300)]


def _flip_byte(store, rel, offset=100):
    p = store.path(rel)
    blob = bytearray(open(p, "rb").read())
    blob[offset % len(blob)] ^= 0x40
    with open(p, "wb") as f:
        f.write(bytes(blob))


class TestAccounting:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            BlockCache(0)
        with pytest.raises(ValueError):
            BlockCache(-1)

    def test_put_get_roundtrip_and_counters(self):
        c = BlockCache(1024)
        assert c.get("d", 1, 0) is None
        assert c.misses == 1
        c.put("d", 1, 0, b"x" * 10)
        assert c.get("d", 1, 0) == b"x" * 10
        assert (c.hits, c.inserts) == (1, 1)
        assert len(c) == 1 and c.size_bytes == 10

    def test_replacement_recharges_bytes(self):
        c = BlockCache(1024)
        c.put("d", 1, 0, b"x" * 100)
        c.put("d", 1, 0, b"y" * 30)
        assert c.size_bytes == 30 and len(c) == 1
        assert c.get("d", 1, 0) == b"y" * 30

    def test_byte_budget_evicts_lru_first(self):
        c = BlockCache(100)
        c.put("d", 1, 0, b"a" * 40)
        c.put("d", 1, 1, b"b" * 40)
        c.put("d", 1, 2, b"c" * 40)  # over budget: block 0 goes
        assert c.evictions == 1
        assert c.get("d", 1, 0) is None
        assert c.get("d", 1, 1) is not None
        assert c.size_bytes <= 100

    def test_get_promotes_against_eviction(self):
        c = BlockCache(100)
        c.put("d", 1, 0, b"a" * 40)
        c.put("d", 1, 1, b"b" * 40)
        c.get("d", 1, 0)             # block 0 is now hottest
        c.put("d", 1, 2, b"c" * 40)  # block 1, not 0, is evicted
        assert c.get("d", 1, 0) is not None
        assert c.get("d", 1, 1) is None

    def test_unpromoted_get_leaves_recency(self):
        c = BlockCache(100)
        c.put("d", 1, 0, b"a" * 40)
        c.put("d", 1, 1, b"b" * 40)
        c.get("d", 1, 0, promote=False)  # still coldest
        c.put("d", 1, 2, b"c" * 40)
        assert c.get("d", 1, 0) is None

    def test_low_priority_insert_self_evicts(self):
        """A streaming fill over budget must not displace the hot set."""
        c = BlockCache(100)
        c.put("d", 1, 0, b"a" * 40)
        c.put("d", 1, 1, b"b" * 40)
        c.put("d", 9, 0, b"s" * 40, low_priority=True)  # cold end
        assert c.low_priority_inserts == 1
        # the low-priority block evicted itself, not a hot block
        assert c.get("d", 9, 0) is None
        assert c.get("d", 1, 0) is not None
        assert c.get("d", 1, 1) is not None

    def test_low_priority_fills_free_budget(self):
        c = BlockCache(1024)
        c.put("d", 9, 0, b"s" * 40, low_priority=True)
        assert c.get("d", 9, 0) == b"s" * 40

    def test_oversized_block_refused(self):
        c = BlockCache(16)
        c.put("d", 1, 0, b"x" * 17)
        assert len(c) == 0 and c.size_bytes == 0
        assert c.get("d", 1, 0) is None


class TestInvalidation:
    def _fill(self):
        c = BlockCache(1 << 20)
        for blk in range(3):
            c.put("r0", 1, blk, b"a" * 10)
        c.put("r0", 2, 0, b"b" * 10)
        c.put("r1", 1, 0, b"c" * 10)
        return c

    def test_invalidate_table_is_precise(self):
        c = self._fill()
        assert c.invalidate_table("r0", 1) == 3
        assert c.invalidations == 3
        assert c.cached_blocks("r0", 1) == 0
        # unrelated tables untouched
        assert c.get("r0", 2, 0) is not None
        assert c.get("r1", 1, 0) is not None
        assert c.size_bytes == 20

    def test_invalidate_missing_table_is_noop(self):
        c = self._fill()
        assert c.invalidate_table("r0", 99) == 0
        assert c.size_bytes == 50

    def test_invalidate_dir_drops_whole_rank(self):
        c = self._fill()
        assert c.invalidate_dir("r0") == 4
        assert c.get("r0", 1, 0) is None
        assert c.get("r1", 1, 0) is not None

    def test_clear(self):
        c = self._fill()
        c.clear()
        assert len(c) == 0 and c.size_bytes == 0
        assert c.invalidations == 5

    def test_counters_snapshot(self):
        c = self._fill()
        c.get("r0", 1, 0)
        c.get("r9", 9, 9)
        snap = c.counters()
        assert snap["entries"] == 5 and snap["bytes"] == 50
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["inserts"] == 5
        assert snap["capacity_bytes"] == 1 << 20


class TestReaderIntegration:
    def test_probe_fills_and_second_reader_hits(self, store):
        write_sstable(store, "t", 1, RECORDS, 0.0)
        cache = BlockCache(1 << 20)
        rd1 = SSTableReader(store, "t", 1, block_cache=cache)
        rec, _ = rd1.get(b"key0123", 0.0)
        assert rec.value == b"val0123" * 40
        assert cache.inserts > 0 and cache.misses > 0
        # a brand-new reader of the same table reads through the cache
        hits0 = cache.hits
        rd2 = SSTableReader(store, "t", 1, block_cache=cache)
        rec, _ = rd2.get(b"key0123", 0.0)
        assert rec.value == b"val0123" * 40
        assert cache.hits > hits0

    def test_verified_once_cache_survives_later_damage(self, store):
        """The cache holds bytes verified at fill; damaging the file
        afterwards must not reach cached reads — while an uncached
        reader of the same file sees the corruption immediately."""
        write_sstable(store, "t", 1, RECORDS, 0.0)
        cache = BlockCache(1 << 20)
        warm = SSTableReader(store, "t", 1, block_cache=cache)
        rec, _ = warm.get(b"key0042", 0.0)  # fills + verifies the blocks
        _flip_byte(store, "t/0000000001.ssd", offset=50)
        again, _ = SSTableReader(store, "t", 1, block_cache=cache).get(
            b"key0042", 0.0
        )
        assert again.value == rec.value == b"val0042" * 40
        with pytest.raises(CorruptionError):
            SSTableReader(store, "t", 1).get(b"key0042", 0.0)

    def test_fill_time_corruption_raises_and_never_caches(self, store):
        write_sstable(store, "t", 1, RECORDS, 0.0)
        _flip_byte(store, "t/0000000001.ssd", offset=50)
        cache = BlockCache(1 << 20)
        rd = SSTableReader(store, "t", 1, block_cache=cache)
        with pytest.raises(CorruptionError):
            for r in RECORDS:
                rd.get(r.key, 0.0)
        assert cache.cached_blocks("t", 1) == 0

    def test_read_all_inserts_low_priority(self, store):
        write_sstable(store, "t", 1, RECORDS, 0.0)
        cache = BlockCache(1 << 20)
        rd = SSTableReader(store, "t", 1, block_cache=cache)
        records, _ = rd.read_all(0.0)
        assert records == RECORDS
        assert cache.low_priority_inserts > 0 and cache.inserts == 0
        assert cache.cached_blocks("t", 1) == cache.low_priority_inserts

    def test_low_priority_reader_never_promotes(self, store):
        write_sstable(store, "t", 1, RECORDS, 0.0)
        cache = BlockCache(1 << 20)
        rd = SSTableReader(store, "t", 1, block_cache=cache,
                           cache_priority="low")
        rec, _ = rd.get(b"key0007", 0.0)
        assert rec.value == b"val0007" * 40
        assert cache.low_priority_inserts > 0 and cache.inserts == 0
        rd.get(b"key0007", 0.0)
        assert cache.hits > 0  # hit, but recency untouched (promote=False)

    def test_v1_table_bypasses_cache(self, store):
        write_sstable(store, "t", 1, RECORDS, 0.0, format_version=FORMAT_V1)
        cache = BlockCache(1 << 20)
        rd = SSTableReader(store, "t", 1, block_cache=cache)
        rec, _ = rd.get(b"key0010", 0.0)
        assert rec.value == b"val0010" * 40
        assert len(cache) == 0
        assert cache.hits == 0 and cache.misses == 0

    def test_cache_consistent_across_all_keys(self, store):
        """Every key read through a tiny (thrashing) cache still
        returns exactly what an uncached reader returns."""
        write_sstable(store, "t", 1, RECORDS, 0.0)
        cache = BlockCache(64 * 1024)  # one block: constant thrash
        cached = SSTableReader(store, "t", 1, block_cache=cache)
        plain = SSTableReader(store, "t", 1)
        for r in RECORDS:
            a, _ = cached.get(r.key, 0.0)
            b, _ = plain.get(r.key, 0.0)
            assert a == b
        assert cache.evictions > 0  # the budget actually bit
