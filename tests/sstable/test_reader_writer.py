"""SSTable writer/reader tests: lookups, bloom gating, search modes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import TimedResource
from repro.sstable.format import Record
from repro.sstable.reader import SSTableReader, list_ssids
from repro.sstable.writer import write_sstable


@pytest.fixture()
def store(tmp_path):
    return PosixStore(
        str(tmp_path), TimedResource("d", 1e-5, 1e9)
    )


def make_table(store, ssid=1, n=50, directory="t"):
    recs = [
        Record(f"key-{i:04d}".encode(), f"value-{i:04d}".encode() * 2)
        for i in range(n)
    ]
    write_sstable(store, directory, ssid, recs, 0.0)
    return recs


class TestWriter:
    def test_creates_three_files(self, store):
        make_table(store)
        assert store.listdir("t") == [
            "0000000001.bf", "0000000001.ssd", "0000000001.ssi"
        ]

    def test_rejects_unsorted(self, store):
        recs = [Record(b"b", b"1"), Record(b"a", b"2")]
        with pytest.raises(ValueError):
            write_sstable(store, "t", 1, recs, 0.0)

    def test_rejects_duplicates(self, store):
        recs = [Record(b"a", b"1"), Record(b"a", b"2")]
        with pytest.raises(ValueError):
            write_sstable(store, "t", 1, recs, 0.0)

    def test_empty_table(self, store):
        nbytes, end = write_sstable(store, "t", 1, [], 0.0)
        assert nbytes > 0  # index + bloom headers exist
        rd = SSTableReader(store, "t", 1)
        rec, _ = rd.get(b"anything", 0.0)
        assert rec is None

    def test_returns_bytes_and_time(self, store):
        nbytes, end = write_sstable(
            store, "t", 1, [Record(b"k", b"v" * 1000)], 0.0
        )
        assert nbytes > 1000
        assert end > 0


class TestReaderLookup:
    def test_finds_all_keys(self, store):
        recs = make_table(store)
        rd = SSTableReader(store, "t", 1)
        for rec in recs:
            out, _ = rd.get(rec.key, 0.0)
            assert out == rec

    def test_missing_key(self, store):
        make_table(store)
        rd = SSTableReader(store, "t", 1)
        out, _ = rd.get(b"zzz-not-there", 0.0)
        assert out is None

    def test_tombstone_returned_not_skipped(self, store):
        recs = [Record(b"alive", b"v"), Record(b"dead", b"", True)]
        write_sstable(store, "t", 1, recs, 0.0)
        rd = SSTableReader(store, "t", 1)
        out, _ = rd.get(b"dead", 0.0)
        assert out is not None and out.tombstone

    def test_sequential_search_agrees_with_binary(self, store):
        recs = make_table(store, n=80)
        rd = SSTableReader(store, "t", 1)
        for rec in recs[::7] + [Record(b"nope", b"")]:
            b, _ = rd.get(rec.key, 0.0, binary_search=True)
            s, _ = rd.get(rec.key, 0.0, binary_search=False)
            assert b == s

    def test_bloom_skips_absent_key_cheaply(self, store):
        make_table(store, n=200)
        rd = SSTableReader(store, "t", 1)
        rd.load_bloom(0.0)
        dev_ops_before = store.read_device.ops
        hit, _ = rd.may_contain(b"definitely-not-present-key", 0.0)
        # cached bloom: no extra device op for the membership test
        assert store.read_device.ops == dev_ops_before

    def test_binary_cheaper_than_sequential_at_depth(self, store):
        recs = make_table(store, n=400)
        rd = SSTableReader(store, "t", 1)
        key = recs[350].key
        _, t_bin = rd.get(key, 0.0, binary_search=True)
        rd2 = SSTableReader(store, "t", 1)
        _, t_seq = rd2.get(key, 0.0, binary_search=False)
        assert t_bin < t_seq

    def test_read_all_in_order(self, store):
        recs = make_table(store, n=30)
        rd = SSTableReader(store, "t", 1)
        out, _ = rd.read_all(0.0)
        assert out == recs

    def test_nbytes_and_delete(self, store):
        make_table(store)
        rd = SSTableReader(store, "t", 1)
        assert rd.nbytes() > 0
        rd.delete(0.0)
        assert store.listdir("t") == []
        assert rd.nbytes() == 0


class TestListSsids:
    def test_ascending(self, store):
        for ssid in (3, 1, 10):
            make_table(store, ssid=ssid, n=2)
        assert list_ssids(store, "t") == [1, 3, 10]

    def test_ignores_foreign_files(self, store):
        make_table(store, ssid=1, n=2)
        store.write("t/README.txt", b"not a table", 0.0)
        assert list_ssids(store, "t") == [1]

    def test_empty_dir(self, store):
        assert list_ssids(store, "none") == []


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(
    st.binary(min_size=1, max_size=16),
    st.tuples(st.binary(max_size=48), st.booleans()),
    min_size=1, max_size=60,
))
def test_write_read_property(tmp_path_factory, kv):
    """Any sorted record set round-trips through the three-file format."""
    store = PosixStore(
        str(tmp_path_factory.mktemp("prop")), TimedResource("d", 0.0, 1e9)
    )
    recs = [
        Record(k, b"" if tomb else v, tomb)
        for k, (v, tomb) in sorted(kv.items())
    ]
    write_sstable(store, "t", 1, recs, 0.0)
    rd = SSTableReader(store, "t", 1)
    for rec in recs:
        for mode in (True, False):
            out, _ = rd.get(rec.key, 0.0, binary_search=mode)
            assert out == rec
