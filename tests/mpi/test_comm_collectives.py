"""Collective semantics of the simulated MPI."""

from __future__ import annotations

import pytest

from repro.mpi.launcher import spmd_run


def test_barrier_synchronizes_clocks():
    def app(ctx):
        # skew the clocks
        ctx.clock.advance(0.1 * ctx.world_rank)
        t = ctx.comm.barrier()
        return (t, ctx.clock.now)

    res = spmd_run(4, app)
    times = {round(t, 9) for t, _ in res}
    assert len(times) == 1  # all ranks observe the same barrier time
    t = res[0][0]
    assert t >= 0.3  # at least the max skew


def test_barrier_repeated():
    def app(ctx):
        return [ctx.comm.barrier() for _ in range(5)]

    res = spmd_run(3, app)
    for i in range(5):
        assert len({r[i] for r in res}) == 1
    assert res[0] == sorted(res[0])  # monotone


def test_bcast():
    def app(ctx):
        data = {"n": 42} if ctx.world_rank == 1 else None
        return ctx.comm.bcast(data, root=1)

    assert spmd_run(3, app) == [{"n": 42}] * 3


def test_bcast_none_payload():
    def app(ctx):
        return ctx.comm.bcast(None, root=0)

    assert spmd_run(2, app) == [None, None]


def test_gather():
    def app(ctx):
        out = ctx.comm.gather(ctx.world_rank * 10, root=2)
        return out

    res = spmd_run(4, app)
    assert res[2] == [0, 10, 20, 30]
    assert res[0] is None and res[1] is None and res[3] is None


def test_allgather():
    def app(ctx):
        return ctx.comm.allgather(chr(ord("a") + ctx.world_rank))

    assert spmd_run(3, app) == [["a", "b", "c"]] * 3


def test_scatter():
    def app(ctx):
        data = [i * i for i in range(ctx.nranks)] if ctx.world_rank == 0 else None
        return ctx.comm.scatter(data, root=0)

    assert spmd_run(4, app) == [0, 1, 4, 9]


def test_scatter_wrong_length_raises():
    def app(ctx):
        if ctx.world_rank == 0:
            try:
                ctx.comm.scatter([1], root=0)
            except ValueError:
                # still participate so peers do not hang
                ctx.comm.scatter([0] * ctx.nranks, root=0)
                return "raised"
        else:
            return ctx.comm.scatter(None, root=0)

    assert spmd_run(2, app)[0] == "raised"


def test_alltoall():
    def app(ctx):
        sendbuf = [f"{ctx.world_rank}->{d}" for d in range(ctx.nranks)]
        return ctx.comm.alltoall(sendbuf)

    res = spmd_run(3, app)
    assert res[1] == ["0->1", "1->1", "2->1"]


def test_allreduce_sum():
    def app(ctx):
        return ctx.comm.allreduce(ctx.world_rank + 1, op=lambda a, b: a + b)

    assert spmd_run(4, app) == [10] * 4


def test_allreduce_max():
    def app(ctx):
        return ctx.comm.allreduce(ctx.clock.now, op=max)

    assert len(set(spmd_run(3, app))) == 1


def test_collectives_cost_grows_with_size():
    def app(ctx):
        t0 = ctx.clock.now
        ctx.comm.bcast(b"x" * 10, root=0)
        small = ctx.clock.now - t0
        t0 = ctx.clock.now
        ctx.comm.bcast(b"x" * 10_000_000, root=0)
        large = ctx.clock.now - t0
        return small < large

    assert all(spmd_run(2, app))
