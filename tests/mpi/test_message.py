"""Wire-size accounting tests for the simulated network."""

from __future__ import annotations

import pytest

from repro.core import messages as msg
from repro.mpi.message import Envelope, payload_nbytes


class TestPayloadNbytes:
    def test_none(self):
        assert payload_nbytes(None) == 0

    def test_bytes(self):
        assert payload_nbytes(b"12345") == 5
        assert payload_nbytes(bytearray(10)) == 10
        assert payload_nbytes(memoryview(b"123")) == 3

    def test_str(self):
        assert payload_nbytes("abc") == 3

    def test_scalars(self):
        assert payload_nbytes(42) == 8
        assert payload_nbytes(3.14) == 8
        assert payload_nbytes(True) == 8

    def test_containers_recursive(self):
        assert payload_nbytes([b"12", b"34"]) == 8 + 4
        assert payload_nbytes((b"12",)) == 8 + 2
        assert payload_nbytes({b"k": b"vvv"}) == 8 + 4

    def test_nested(self):
        inner = [b"1234"]  # 8 + 4
        assert payload_nbytes([inner, inner]) == 8 + 2 * 12

    def test_wire_nbytes_protocol(self):
        class Sized:
            def wire_nbytes(self):
                return 1234

        assert payload_nbytes(Sized()) == 1234

    def test_opaque_object_flat_charge(self):
        class Opaque:
            pass

        assert payload_nbytes(Opaque()) == 64


class TestKvMessageSizes:
    def test_migrate_msg_counts_pairs(self):
        m = msg.MigrateMsg([(b"key", b"value", False)], seq=1)
        assert m.wire_nbytes() == 16 + 3 + 5 + 9

    def test_put_sync_msg(self):
        m = msg.PutSyncMsg(b"k", b"vv", False, seq=1)
        assert m.wire_nbytes() == 16 + 1 + 2 + 9

    def test_get_msg(self):
        assert msg.GetMsg(b"key", 0, 1).wire_nbytes() == 24 + 3

    def test_get_reply_value_dominates(self):
        small = msg.GetReply(msg.FOUND, 1, b"")
        big = msg.GetReply(msg.FOUND, 1, b"x" * 1000)
        assert big.wire_nbytes() - small.wire_nbytes() == 1000

    def test_ack_and_stop_tiny(self):
        assert msg.AckMsg(1).wire_nbytes() <= 16
        assert msg.StopMsg().wire_nbytes() <= 16


class TestEnvelope:
    def test_fields(self):
        e = Envelope(0, 1, 7, b"data", 0.5, 4)
        assert (e.source, e.dest, e.tag) == (0, 1, 7)
        assert e.payload == b"data"
        assert e.arrival == 0.5
        assert e.nbytes == 4
