"""Point-to-point semantics of the simulated MPI."""

from __future__ import annotations

import pytest

from repro.mpi.comm import ANY_SOURCE, ANY_TAG
from repro.mpi.launcher import spmd_run


def test_send_recv_roundtrip():
    def app(ctx):
        if ctx.world_rank == 0:
            ctx.comm.send({"a": 7}, dest=1, tag=11)
            return None
        if ctx.world_rank == 1:
            return ctx.comm.recv(source=0, tag=11)

    assert spmd_run(2, app)[1] == {"a": 7}


def test_tag_matching():
    def app(ctx):
        if ctx.world_rank == 0:
            ctx.comm.send("first", 1, tag=1)
            ctx.comm.send("second", 1, tag=2)
        else:
            # receive out of send order by tag
            second = ctx.comm.recv(source=0, tag=2)
            first = ctx.comm.recv(source=0, tag=1)
            return (first, second)

    assert spmd_run(2, app)[1] == ("first", "second")


def test_non_overtaking_same_tag():
    def app(ctx):
        if ctx.world_rank == 0:
            for i in range(20):
                ctx.comm.send(i, 1, tag=0)
        else:
            return [ctx.comm.recv(source=0, tag=0) for _ in range(20)]

    assert spmd_run(2, app)[1] == list(range(20))


def test_any_source_any_tag():
    def app(ctx):
        if ctx.world_rank == 2:
            got = set()
            for _ in range(2):
                status = {}
                got.add(
                    (ctx.comm.recv(ANY_SOURCE, ANY_TAG, status=status),
                     status["source"])
                )
            return got
        ctx.comm.send(f"from{ctx.world_rank}", 2, tag=ctx.world_rank)

    assert spmd_run(3, app)[2] == {("from0", 0), ("from1", 1)}


def test_status_fields():
    def app(ctx):
        if ctx.world_rank == 0:
            ctx.comm.send(b"x" * 100, 1, tag=9)
        else:
            status = {}
            ctx.comm.recv(source=0, tag=9, status=status)
            return status

    status = spmd_run(2, app)[1]
    assert status["source"] == 0
    assert status["tag"] == 9
    assert status["nbytes"] == 100
    assert status["arrival"] > 0


def test_recv_advances_clock_past_arrival():
    def app(ctx):
        if ctx.world_rank == 0:
            ctx.comm.send(b"y" * 1000, 1)
            return ctx.clock.now
        t_before = ctx.clock.now
        ctx.comm.recv(source=0)
        return (t_before, ctx.clock.now)

    res = spmd_run(2, app)
    t_before, t_after = res[1]
    assert t_after > t_before
    assert t_after >= res[0]  # at least the sender's send time


def test_isend_irecv():
    def app(ctx):
        if ctx.world_rank == 0:
            req = ctx.comm.isend("hello", 1)
            req.wait()
        else:
            req = ctx.comm.irecv(source=0)
            return req.wait()

    assert spmd_run(2, app)[1] == "hello"


def test_irecv_test_polls():
    def app(ctx):
        if ctx.world_rank == 0:
            ctx.comm.recv(source=1, tag=5)  # rendezvous first
            ctx.comm.send("data", 1)
        else:
            req = ctx.comm.irecv(source=0)
            done, val = req.test()
            assert not done  # nothing sent yet
            ctx.comm.send("go", 0, tag=5)
            return req.wait()

    assert spmd_run(2, app)[1] == "data"


def test_iprobe():
    def app(ctx):
        if ctx.world_rank == 0:
            assert not ctx.comm.iprobe(source=1)
            ctx.comm.send("ping", 1)
            ctx.comm.recv(source=1)  # wait for reply => message must be there
        else:
            ctx.comm.recv(source=0)
            ctx.comm.send("pong", 0)

    spmd_run(2, app)


def test_sendrecv():
    def app(ctx):
        other = 1 - ctx.world_rank
        return ctx.comm.sendrecv(ctx.world_rank, dest=other, source=other)

    assert spmd_run(2, app) == [1, 0]


def test_invalid_dest_raises():
    def app(ctx):
        with pytest.raises(ValueError):
            ctx.comm.send("x", dest=99)

    spmd_run(2, app)


def test_intra_node_cheaper_than_inter_node():
    """Same-node messages ride shared memory (lower latency)."""
    from repro.simtime.profiles import SUMMITDEV

    def app(ctx):
        if ctx.world_rank == 0:
            ctx.comm.send(b"z" * 64, 1)   # same node (ranks 0,1 on node 0)
            ctx.comm.send(b"z" * 64, 21)  # node 1
        elif ctx.world_rank in (1, 21):
            t0 = ctx.clock.now
            ctx.comm.recv(source=0)
            return ctx.clock.now - t0

    res = spmd_run(22, app, system=SUMMITDEV)
    assert res[1] < res[21]
