"""Communicator dup/split and launcher behaviour."""

from __future__ import annotations

import pytest

from repro.mpi.launcher import RankFailure, current_rank_context, spmd_run
from repro.simtime.profiles import CORI, SUMMITDEV


class TestDup:
    def test_dup_isolates_traffic(self):
        """A message on the dup is invisible to the parent comm."""

        def app(ctx):
            dup = ctx.comm.dup()
            if ctx.world_rank == 0:
                dup.send("private", 1, tag=3)
                ctx.comm.send("public", 1, tag=3)
            else:
                public = ctx.comm.recv(source=0, tag=3)
                private = dup.recv(source=0, tag=3)
                return (public, private)

        assert spmd_run(2, app)[1] == ("public", "private")

    def test_dup_same_topology(self):
        def app(ctx):
            dup = ctx.comm.dup()
            return (dup.rank, dup.size)

        assert spmd_run(3, app) == [(0, 3), (1, 3), (2, 3)]

    def test_multiple_dups(self):
        def app(ctx):
            comms = [ctx.comm.dup() for _ in range(4)]
            for i, c in enumerate(comms):
                c.barrier()
            return True

        assert all(spmd_run(2, app))


class TestSplit:
    def test_split_disjoint_groups(self):
        def app(ctx):
            color = ctx.world_rank % 2
            sub = ctx.comm.split(color)
            return (color, sub.rank, sub.size)

        res = spmd_run(4, app)
        assert res[0] == (0, 0, 2)
        assert res[1] == (1, 0, 2)
        assert res[2] == (0, 1, 2)
        assert res[3] == (1, 1, 2)

    def test_split_key_orders_ranks(self):
        def app(ctx):
            sub = ctx.comm.split(0, key=-ctx.world_rank)  # reversed order
            return sub.rank

        assert spmd_run(3, app) == [2, 1, 0]

    def test_split_subgroup_collectives(self):
        def app(ctx):
            sub = ctx.comm.split(ctx.world_rank // 2)
            return sub.allgather(ctx.world_rank)

        res = spmd_run(4, app)
        assert res[0] == [0, 1]
        assert res[3] == [2, 3]

    def test_split_p2p_uses_group_ranks(self):
        def app(ctx):
            sub = ctx.comm.split(ctx.world_rank % 2)
            if sub.rank == 0:
                sub.send(ctx.world_rank, 1)
                return None
            return sub.recv(source=0)

        res = spmd_run(4, app)
        assert res[2] == 0  # world rank 2 is rank 1 of color 0: got from wr 0
        assert res[3] == 1


class TestLauncher:
    def test_results_in_rank_order(self):
        assert spmd_run(5, lambda ctx: ctx.world_rank) == [0, 1, 2, 3, 4]

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            spmd_run(0, lambda ctx: None)

    def test_context_fields(self):
        def app(ctx):
            assert current_rank_context() is ctx
            return (
                ctx.world_rank, ctx.nranks, ctx.system.name,
                ctx.node, ctx.machine is not None,
            )

        res = spmd_run(2, app, system=CORI)
        assert res[0] == (0, 2, "cori", 0, True)

    def test_rank_failure_propagates(self):
        def app(ctx):
            if ctx.world_rank == 1:
                raise RuntimeError("rank 1 exploded")
            ctx.comm.barrier()  # would hang without abort

        with pytest.raises(RankFailure) as ei:
            spmd_run(3, app, timeout=30)
        assert any(r == 1 for r, _ in ei.value.failures)

    def test_failure_during_recv_aborts_peers(self):
        def app(ctx):
            if ctx.world_rank == 0:
                raise ValueError("boom")
            ctx.comm.recv(source=0)  # never satisfied

        with pytest.raises(RankFailure):
            spmd_run(2, app, timeout=30)

    def test_clock_bound_per_rank(self):
        def app(ctx):
            from repro.simtime.clock import current_clock

            assert current_clock() is ctx.clock
            ctx.clock.advance(ctx.world_rank + 1.0)
            return ctx.clock.now

        assert spmd_run(3, app) == [1.0, 2.0, 3.0]

    def test_machine_shared_across_ranks(self):
        def app(ctx):
            return id(ctx.machine)

        assert len(set(spmd_run(3, app))) == 1

    def test_node_assignment_follows_system(self):
        def app(ctx):
            return ctx.node

        res = spmd_run(40, app, system=SUMMITDEV)
        assert res[0] == 0 and res[19] == 0 and res[20] == 1 and res[39] == 1
