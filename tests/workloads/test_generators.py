"""Workload generator tests."""

from __future__ import annotations

import string

import pytest

from repro.workloads.generators import KeyGenerator, rank_seed, value_of_size

_ALPHANUM = set((string.ascii_letters + string.digits).encode())


class TestKeyGenerator:
    def test_key_length(self):
        gen = KeyGenerator(16, seed=1)
        assert all(len(k) == 16 for k in gen.keys(50))

    def test_alphabet(self):
        gen = KeyGenerator(16, seed=2)
        for k in gen.keys(100):
            assert set(k) <= _ALPHANUM

    def test_deterministic(self):
        assert KeyGenerator(8, 3).keys(20) == KeyGenerator(8, 3).keys(20)

    def test_seed_changes_stream(self):
        assert KeyGenerator(8, 1).keys(20) != KeyGenerator(8, 2).keys(20)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            KeyGenerator(0, 1)

    def test_iterator(self):
        gen = KeyGenerator(8, 5)
        it = iter(gen)
        assert len(next(it)) == 8

    def test_mostly_unique(self):
        keys = KeyGenerator(16, 7).keys(5000)
        assert len(set(keys)) == 5000


class TestValues:
    def test_exact_size(self):
        for n in (0, 1, 100, 65536):
            assert len(value_of_size(n)) == n

    def test_fill_byte(self):
        assert value_of_size(4, fill=0x41) == b"AAAA"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            value_of_size(-1)


class TestRankSeed:
    def test_disjoint_per_rank(self):
        seeds = {rank_seed(1, r) for r in range(100)}
        assert len(seeds) == 100

    def test_deterministic(self):
        assert rank_seed(5, 3) == rank_seed(5, 3)

    def test_positive(self):
        assert all(rank_seed(9, r) >= 0 for r in range(50))
