"""YCSB workload-suite tests."""

from __future__ import annotations

import pytest

from repro.mpi.launcher import spmd_run
from repro.workloads.ycsb import (
    CORE_WORKLOADS,
    WORKLOAD_A,
    WORKLOAD_D,
    YcsbWorkload,
    ZipfianGenerator,
    run_ycsb,
)
from tests.conftest import small_options


class TestZipfian:
    def test_range(self):
        z = ZipfianGenerator(100, seed=1)
        for _ in range(1000):
            assert 0 <= z.next() < 100

    def test_skew_toward_head(self):
        z = ZipfianGenerator(1000, seed=2)
        draws = [z.next() for _ in range(5000)]
        head = sum(1 for d in draws if d < 100)  # hottest 10%
        assert head > 2500  # far more than the uniform 10%

    def test_deterministic(self):
        a = ZipfianGenerator(50, seed=3)
        b = ZipfianGenerator(50, seed=3)
        assert [a.next() for _ in range(100)] == [b.next() for _ in range(100)]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ZipfianGenerator(0)
        with pytest.raises(ValueError):
            ZipfianGenerator(10, theta=1.5)


class TestWorkloadDefinitions:
    def test_core_set(self):
        assert set(CORE_WORKLOADS) == {"A", "B", "C", "D", "E", "F"}

    def test_mixes_sum_to_100(self):
        for w in CORE_WORKLOADS.values():
            assert (w.read_pct + w.update_pct + w.insert_pct
                    + w.rmw_pct + w.scan_pct) == 100

    def test_invalid_mix_rejected(self):
        with pytest.raises(ValueError):
            YcsbWorkload("bad", 50, 10, 0, 0)
        with pytest.raises(ValueError):
            YcsbWorkload("bad", 0, 0, 5, 0, scan_pct=95, max_scan_len=0)

    def test_d_reads_latest(self):
        assert WORKLOAD_D.distribution == "latest"

    def test_e_is_scan_heavy(self):
        from repro.workloads.ycsb import WORKLOAD_E

        assert WORKLOAD_E.scan_pct == 95
        assert WORKLOAD_E.insert_pct == 5
        assert WORKLOAD_E.max_scan_len > 0


class TestRunYcsb:
    @pytest.mark.parametrize("name", ["A", "C", "F"])
    def test_workload_runs(self, name):
        w = CORE_WORKLOADS[name]

        def app(ctx):
            return run_ycsb(ctx, w, record_count=40, op_count=40,
                            value_size=128, options=small_options())

        res = spmd_run(2, app, timeout=240)
        for r in res:
            assert r.ops == 40
            assert r.reads + r.updates + r.inserts + r.rmws == 40
            assert r.run_time > 0
            assert r.krps() > 0

    def test_workload_c_is_read_only(self):
        def app(ctx):
            return run_ycsb(ctx, CORE_WORKLOADS["C"], record_count=30,
                            op_count=30, value_size=64,
                            options=small_options())

        res = spmd_run(2, app, timeout=240)
        assert all(r.updates == r.inserts == r.rmws == 0 for r in res)

    def test_workload_d_inserts(self):
        def app(ctx):
            return run_ycsb(ctx, WORKLOAD_D, record_count=30, op_count=60,
                            value_size=64, options=small_options(), seed=5)

        res = spmd_run(2, app, timeout=240)
        assert sum(r.inserts for r in res) > 0

    def test_mix_fractions_roughly_honoured(self):
        def app(ctx):
            return run_ycsb(ctx, WORKLOAD_A, record_count=50, op_count=200,
                            value_size=64, options=small_options())

        res = spmd_run(1, app, timeout=240)[0]
        assert 0.35 < res.reads / res.ops < 0.65
        assert 0.35 < res.updates / res.ops < 0.65
