"""Microbenchmark application tests (the artifact's basic/workload/cr)."""

from __future__ import annotations

import pytest

from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI, SUMMITDEV
from repro.workloads import basic_app, cr_app, workload_app
from tests.conftest import small_options


class TestBasicApp:
    def test_phases_timed(self):
        def app(ctx):
            return basic_app(ctx, 16, 256, 40, small_options())

        res = spmd_run(2, app, timeout=240)
        for r in res:
            assert r.put_time > 0
            assert r.barrier_time > 0
            assert r.get_time > 0
            assert r.iters == 40

    def test_metrics(self):
        def app(ctx):
            return basic_app(ctx, 16, 1024, 20, small_options())

        r = spmd_run(1, app, timeout=240)[0]
        assert r.krps("put") == pytest.approx(20 / r.put_time / 1e3)
        assert r.mbps("get") == pytest.approx(
            20 * (16 + 1024) / r.get_time / (1 << 20)
        )

    def test_lustre_repository_slower_get(self):
        """Figure 6's core contrast: gets on NVM beat gets on Lustre."""

        def nvm(ctx):
            return basic_app(ctx, 16, 4096, 30, small_options(),
                             repository="nvm")

        def lustre(ctx):
            return basic_app(ctx, 16, 4096, 30, small_options(),
                             repository="lustre")

        r_nvm = spmd_run(2, nvm, system=SUMMITDEV, timeout=240)[0]
        r_lustre = spmd_run(2, lustre, system=SUMMITDEV, timeout=240)[0]
        assert r_nvm.get_time < r_lustre.get_time

    def test_skip_barrier(self):
        def app(ctx):
            return basic_app(ctx, 16, 128, 10, small_options(),
                             skip_barrier=True)

        r = spmd_run(1, app, timeout=240)[0]
        assert r.barrier_time == 0


class TestWorkloadApp:
    def test_mixed_ratio_counted(self):
        def app(ctx):
            return workload_app(ctx, 16, 256, 40, update_pct=50,
                                options=small_options())

        res = spmd_run(2, app, timeout=240)
        for r in res:
            assert r.reads + r.updates == 40
            assert r.reads > 0 and r.updates > 0
            assert r.mixed_time > 0

    def test_read_only_ratio(self):
        def app(ctx):
            return workload_app(ctx, 16, 256, 30, update_pct=0,
                                options=small_options())

        r = spmd_run(2, app, timeout=240)[0]
        assert r.updates == 0 and r.reads == 30

    def test_protected_variant_faster_or_equal(self):
        """100/0+P (remote cache on) should not be slower than 100/0.

        Virtual time is only interleaving-independent up to shared
        device horizons (``TimedResource.available`` advances in
        wall-clock access order), and with the block-cached read path
        the measured phase is cheap enough that scheduling jitter can
        skew any single run by tens of percent.  Two noise filters keep
        the assertion's direction intact: each prot run is *paired*
        with an immediately-following plain run (so slow-machine phases
        hit both sides of the ratio), and the assertion is on the
        median of five paired ratios — robust to two outliers in either
        direction.
        """

        def plain(ctx):
            return workload_app(ctx, 16, 2048, 200, 0,
                                options=small_options())

        def prot(ctx):
            return workload_app(ctx, 16, 2048, 200, 0,
                                options=small_options(),
                                protect_readonly=True)

        def measure(fn):
            return max(r.mixed_time
                       for r in spmd_run(2, fn, system=CORI, timeout=240))

        ratios = sorted(measure(prot) / measure(plain) for _ in range(5))
        assert ratios[2] <= 1.1, ratios


class TestCrApp:
    def test_all_three_phases(self):
        def app(ctx):
            return cr_app(ctx, 16, 512, 30, small_options())

        res = spmd_run(2, app, timeout=300)
        for r in res:
            assert r.checkpoint_time > 0
            assert r.restart_time > 0
            assert r.restart_rd_time > 0
            assert r.bandwidth_MBps("checkpoint") > 0

    def test_redistribution_slower_than_plain_restart(self):
        """Figure 10: restart+RD pays put-path work on top of the I/O."""

        def app(ctx):
            return cr_app(ctx, 16, 2048, 40, small_options())

        res = spmd_run(2, app, timeout=300)
        r = res[0]
        assert r.restart_rd_time > r.restart_time
