"""Every shipped example must run to completion.

Examples are documentation that executes; this keeps them from rotting.
Each runs in a subprocess exactly as a user would invoke it.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

_EXAMPLES = sorted(
    f for f in os.listdir(_EXAMPLES_DIR) if f.endswith(".py")
)


def test_all_examples_enumerated():
    assert len(_EXAMPLES) >= 6


@pytest.mark.parametrize("example", _EXAMPLES)
def test_example_runs(example):
    proc = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, example)],
        capture_output=True, text=True, timeout=300,
    )
    assert proc.returncode == 0, (
        f"{example} failed:\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{example} produced no output"
