"""System profile tests (paper Table 2)."""

from __future__ import annotations

import pytest

from repro.simtime.profiles import (
    CORI,
    STAMPEDE,
    SUMMITDEV,
    all_systems,
    system_by_name,
)


class TestLookup:
    def test_by_name(self):
        assert system_by_name("summitdev") is SUMMITDEV
        assert system_by_name("STAMPEDE") is STAMPEDE
        assert system_by_name("Cori") is CORI

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            system_by_name("frontier")

    def test_all_systems(self):
        assert set(all_systems()) == {"summitdev", "stampede", "cori"}


class TestTable2Parameters:
    def test_ranks_per_node(self):
        # "20 (Summitdev), 68 (Stampede), and 32 (Cori) MPI ranks" (§5.2)
        assert SUMMITDEV.ranks_per_node == 20
        assert STAMPEDE.ranks_per_node == 68
        assert CORI.ranks_per_node == 32

    def test_nvm_architectures(self):
        assert SUMMITDEV.nvm_arch == "local"
        assert STAMPEDE.nvm_arch == "local"
        assert CORI.nvm_arch == "dedicated"

    def test_cori_bb_is_striped_and_remote(self):
        assert CORI.nvm.nstripes > 1
        assert CORI.nvm.remote

    def test_local_nvms_unstriped(self):
        assert SUMMITDEV.nvm.nstripes == 1
        assert STAMPEDE.nvm.nstripes == 1

    def test_lustre_high_latency_vs_nvme(self):
        assert SUMMITDEV.lustre.read_latency_s > 10 * SUMMITDEV.nvm.read_latency_s

    def test_stampede_ssd_slower_than_summitdev_nvme(self):
        assert (
            STAMPEDE.nvm.read_bandwidth_Bps < SUMMITDEV.nvm.read_bandwidth_Bps
        )

    def test_compute_node_counts(self):
        assert SUMMITDEV.compute_nodes == 54
        assert STAMPEDE.compute_nodes == 508
        assert CORI.compute_nodes == 2004


class TestTopology:
    def test_node_of_rank(self):
        assert SUMMITDEV.node_of_rank(0) == 0
        assert SUMMITDEV.node_of_rank(19) == 0
        assert SUMMITDEV.node_of_rank(20) == 1

    def test_nodes_for(self):
        assert SUMMITDEV.nodes_for(1) == 1
        assert SUMMITDEV.nodes_for(20) == 1
        assert SUMMITDEV.nodes_for(21) == 2
        assert CORI.nodes_for(64) == 2
