"""Virtual clock tests."""

from __future__ import annotations

import threading

import pytest

from repro.simtime.clock import VirtualClock, current_clock, set_current_clock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(5.0).now == 5.0

    def test_advance(self):
        c = VirtualClock()
        assert c.advance(1.5) == 1.5
        assert c.advance(0.5) == 2.0
        assert c.now == 2.0

    def test_negative_advance_rejected(self):
        c = VirtualClock()
        with pytest.raises(ValueError):
            c.advance(-1)

    def test_advance_to_forward_only(self):
        c = VirtualClock(10.0)
        assert c.advance_to(5.0) == 10.0  # never backwards
        assert c.advance_to(15.0) == 15.0

    def test_reset(self):
        c = VirtualClock(10.0)
        c.reset()
        assert c.now == 0.0
        c.reset(3.0)
        assert c.now == 3.0

    def test_zero_advance_allowed(self):
        c = VirtualClock(1.0)
        assert c.advance(0.0) == 1.0


class TestThreadRegistry:
    def test_bind_and_read(self):
        c = VirtualClock(7.0)
        set_current_clock(c)
        try:
            assert current_clock() is c
        finally:
            set_current_clock(None)

    def test_unbound_gets_detached_clock(self):
        set_current_clock(None)
        c = current_clock()
        assert c.label == "detached"
        assert current_clock() is c  # sticky per-thread
        set_current_clock(None)

    def test_per_thread_isolation(self):
        main = VirtualClock(label="main")
        set_current_clock(main)
        seen = {}

        def worker():
            other = VirtualClock(label="worker")
            set_current_clock(other)
            seen["worker"] = current_clock()

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        try:
            assert current_clock() is main
            assert seen["worker"] is not main
        finally:
            set_current_clock(None)
