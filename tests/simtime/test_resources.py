"""Timed resource tests: serialization, striping, background workers."""

from __future__ import annotations

import pytest

from repro.simtime.resources import BackgroundWorker, StripedResource, TimedResource


class TestTimedResource:
    def test_service_time(self):
        r = TimedResource("d", latency_s=0.001, bandwidth_Bps=1000.0)
        assert r.service_time(0) == pytest.approx(0.001)
        assert r.service_time(1000) == pytest.approx(1.001)

    def test_access_serializes(self):
        r = TimedResource("d", 0.0, 1000.0)
        end1 = r.access(0.0, 1000)  # 1s transfer
        end2 = r.access(0.0, 1000)  # queued behind the first
        assert end1 == pytest.approx(1.0)
        assert end2 == pytest.approx(2.0)
        assert r.available == pytest.approx(2.0)

    def test_access_after_idle(self):
        r = TimedResource("d", 0.0, 1000.0)
        r.access(0.0, 1000)
        end = r.access(5.0, 1000)  # arrives after the device went idle
        assert end == pytest.approx(6.0)

    def test_counters(self):
        r = TimedResource("d", 0.0, 1000.0)
        r.access(0.0, 500)
        r.access(0.0, 500)
        assert r.ops == 2
        assert r.bytes_moved == 1000
        assert r.busy_time == pytest.approx(1.0)

    def test_reset(self):
        r = TimedResource("d", 0.0, 1000.0)
        r.access(0.0, 1000)
        r.reset()
        assert r.available == 0.0 and r.ops == 0 and r.bytes_moved == 0

    def test_concurrent_access_shares_bandwidth(self):
        r = TimedResource("d", 0.1, 1000.0)
        end1 = r.access_concurrent(0.0, 1000)
        # second op only queues behind the transfer share, not the latency
        end2 = r.access_concurrent(0.0, 1000)
        assert end1 == pytest.approx(1.1)
        assert end2 == pytest.approx(2.1)
        assert end2 - end1 == pytest.approx(1.0)  # bandwidth-bound spacing

    def test_aggregate_saturation(self):
        """N clients hammering one device see ~device bandwidth, not N×."""
        r = TimedResource("nvme", 0.0, 1_000_000.0)
        clients_end = [r.access(0.0, 100_000) for _ in range(10)]
        # total 1 MB at 1 MB/s: last completion ≈ 1s
        assert max(clients_end) == pytest.approx(1.0)


class TestStripedResource:
    def test_invalid_stripes(self):
        with pytest.raises(ValueError):
            StripedResource("s", 0, 0.0, 1.0)

    def test_striped_transfer_parallel(self):
        s = StripedResource("lustre", 4, 0.0, 1000.0)
        end = s.access(0.0, 4000)  # 1000 B per stripe at 1000 B/s
        assert end == pytest.approx(1.0)

    def test_small_op_pays_one_stripe_latency(self):
        s = StripedResource("lustre", 4, 0.5, 1e9)
        assert s.access_one(0.0, 10) == pytest.approx(0.5, abs=1e-6)

    def test_access_one_round_robins(self):
        s = StripedResource("l", 2, 0.1, 1e9)
        s.access_one(0.0, 0)
        s.access_one(0.0, 0)
        assert s.stripes[0].ops == 1
        assert s.stripes[1].ops == 1

    def test_counters_and_reset(self):
        s = StripedResource("l", 2, 0.0, 1000.0)
        s.access(0.0, 2000)
        assert s.ops == 2
        assert s.bytes_moved == 2000
        s.reset()
        assert s.ops == 0

    def test_striping_beats_single_device_at_size(self):
        """Large transfers: the striped store wins (Figure 6's crossover)."""
        single = TimedResource("nvme", 1e-5, 2e9)
        striped = StripedResource("lustre", 8, 5e-3, 1e9)
        small = 4096
        large = 512 * 1024 * 1024
        assert single.service_time(small) < striped.service_time(small)
        assert striped.service_time(large) < single.service_time(large)


class TestBackgroundWorker:
    def test_submit_serializes(self):
        w = BackgroundWorker("bg")
        assert w.submit(0.0, 1.0) == pytest.approx(1.0)
        assert w.submit(0.0, 1.0) == pytest.approx(2.0)
        assert w.jobs == 2

    def test_submit_after_idle(self):
        w = BackgroundWorker("bg")
        w.submit(0.0, 1.0)
        assert w.submit(10.0, 1.0) == pytest.approx(11.0)

    def test_negative_duration_rejected(self):
        w = BackgroundWorker("bg")
        with pytest.raises(ValueError):
            w.submit(0.0, -1.0)

    def test_schedule_runs_job_with_start(self):
        w = BackgroundWorker("bg")
        seen = []

        def job(start):
            seen.append(start)
            return start + 2.0

        assert w.schedule(1.0, job) == pytest.approx(3.0)
        assert seen == [1.0]
        assert w.available == pytest.approx(3.0)

    def test_schedule_rejects_backwards_job(self):
        w = BackgroundWorker("bg")
        with pytest.raises(ValueError):
            w.schedule(5.0, lambda start: start - 1.0)

    def test_idle_until(self):
        w = BackgroundWorker("bg")
        w.idle_until(4.0)
        assert w.submit(0.0, 1.0) == pytest.approx(5.0)

    def test_overlap_with_main_timeline(self):
        """Background work does not consume the enqueuer's time."""
        w = BackgroundWorker("bg")
        main_time = 0.5
        end = w.submit(main_time, 10.0)
        assert end == pytest.approx(10.5)
        # the main timeline stays where it was; only a full-drain wait
        # (e.g. barrier(SSTABLE)) would advance it to w.available
        assert main_time == 0.5
