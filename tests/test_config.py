"""Options and artifact-style environment configuration tests."""

from __future__ import annotations

import pytest

from repro import config
from repro.config import (
    MEMTABLE,
    Options,
    RDONLY,
    RDWR,
    RELAXED,
    SEQUENTIAL,
    SSTABLE,
    WRONLY,
    consistency_name,
    options_from_env,
    protection_name,
)
from repro.errors import (
    InvalidModeError,
    InvalidOptionError,
    InvalidProtectionError,
)


class TestConstants:
    def test_artifact_consistency_encoding(self):
        # the artifact sets PAPYRUSKV_CONSISTENCY=1 for Seq, =2 for Rel
        assert SEQUENTIAL == 1
        assert RELAXED == 2

    def test_protection_values_distinct(self):
        assert len({RDWR, WRONLY, RDONLY}) == 3

    def test_barrier_levels(self):
        assert MEMTABLE != SSTABLE

    def test_names(self):
        assert consistency_name(RELAXED) == "relaxed"
        assert consistency_name(SEQUENTIAL) == "sequential"
        assert protection_name(RDONLY) == "rdonly"

    def test_bad_names_raise(self):
        with pytest.raises(InvalidModeError):
            consistency_name(99)
        with pytest.raises(InvalidProtectionError):
            protection_name(99)


class TestOptionsValidation:
    def test_defaults_valid(self):
        opt = Options()
        assert opt.consistency == RELAXED
        assert opt.protection == RDWR
        assert opt.binary_search is True
        assert opt.repository is None

    def test_with_replaces(self):
        opt = Options().with_(consistency=SEQUENTIAL, group_size=4)
        assert opt.consistency == SEQUENTIAL
        assert opt.group_size == 4
        assert Options().consistency == RELAXED  # original untouched

    @pytest.mark.parametrize("field,value,exc", [
        ("memtable_capacity", 0, InvalidOptionError),
        ("remote_memtable_capacity", -1, InvalidOptionError),
        ("consistency", 9, InvalidModeError),
        ("protection", 9, InvalidProtectionError),
        ("flush_queue_capacity", 0, InvalidOptionError),
        ("migration_queue_capacity", 0, InvalidOptionError),
        ("compaction_interval", -1, InvalidOptionError),
        ("bloom_fp_rate", 0.0, InvalidOptionError),
        ("bloom_fp_rate", 1.0, InvalidOptionError),
        ("repository", "tape", InvalidOptionError),
        ("group_size", 0, InvalidOptionError),
        ("cache_local_capacity", 0, InvalidOptionError),
        ("cache_remote_capacity", -1, InvalidOptionError),
        ("remote_timeout", 0, InvalidOptionError),
        ("remote_timeout", -1.5, InvalidOptionError),
        ("remote_retries", -1, InvalidOptionError),
    ])
    def test_invalid_fields(self, field, value, exc):
        with pytest.raises(exc):
            Options(**{field: value})

    def test_robustness_knobs(self):
        opt = Options()
        assert opt.remote_timeout is None  # wait forever: seed behavior
        assert opt.remote_retries == 3
        assert opt.verify_on_open is False
        opt = Options(remote_timeout=0.5, remote_retries=0,
                      verify_on_open=True)
        assert opt.remote_timeout == 0.5
        assert opt.remote_retries == 0
        assert opt.verify_on_open is True

    def test_keyword_only_construction(self):
        # positional construction is a bug magnet with ~20 fields; the
        # dataclass is kw_only so it fails loudly
        with pytest.raises(TypeError):
            Options(1 << 20)  # type: ignore[misc]

    def test_with_rejects_invalid_combination(self):
        with pytest.raises(InvalidModeError):
            Options().with_(consistency=7)

    def test_index_replication_knobs(self):
        opt = Options()
        assert opt.index_replication is False  # opt-in
        assert opt.index_cache_capacity == 8 << 20
        assert opt.index_push_eager is True
        opt = Options(index_replication=True,
                      index_cache_capacity=1 << 16,
                      index_push_eager=False)
        assert opt.index_replication is True
        assert opt.index_cache_capacity == 1 << 16
        assert opt.index_push_eager is False

    @pytest.mark.parametrize("value", [0, -1])
    def test_index_cache_capacity_must_be_positive(self, value):
        with pytest.raises(InvalidOptionError):
            Options(index_cache_capacity=value)


class TestEnvParsing:
    def test_empty_env_keeps_defaults(self):
        assert options_from_env({}) == Options()

    def test_consistency_var(self):
        opt = options_from_env({"PAPYRUSKV_CONSISTENCY": "1"})
        assert opt.consistency == SEQUENTIAL

    def test_group_size_var(self):
        opt = options_from_env({"PAPYRUSKV_GROUP_SIZE": "68"})
        assert opt.group_size == 68

    def test_bin_search_artifact_encoding(self):
        # artifact: 1 = sequential scan, 2 = binary search
        assert options_from_env({"PAPYRUSKV_BIN_SEARCH": "1"}).binary_search is False
        assert options_from_env({"PAPYRUSKV_BIN_SEARCH": "2"}).binary_search is True

    def test_memtable_size_var(self):
        opt = options_from_env({"PAPYRUSKV_MEMTABLE_SIZE": "1048576"})
        assert opt.memtable_capacity == 1 << 20

    def test_repository_lustre_detection(self):
        opt = options_from_env(
            {"PAPYRUSKV_REPOSITORY": "/lustre/atlas/scratch/u/x"}
        )
        assert opt.repository == "lustre"
        opt = options_from_env({"PAPYRUSKV_REPOSITORY": "/xfs/scratch/u"})
        assert opt.repository == "nvm"

    def test_base_options_extended(self):
        base = Options(cache_local_enabled=False)
        opt = options_from_env({"PAPYRUSKV_CONSISTENCY": "1"}, base=base)
        assert opt.cache_local_enabled is False
        assert opt.consistency == SEQUENTIAL

    def test_invalid_env_value_raises(self):
        with pytest.raises(InvalidModeError):
            options_from_env({"PAPYRUSKV_CONSISTENCY": "9"})

    def test_index_replication_var(self):
        assert options_from_env(
            {"PAPYRUSKV_INDEX_REPLICATION": "1"}
        ).index_replication is True
        assert options_from_env(
            {"PAPYRUSKV_INDEX_REPLICATION": "0"}
        ).index_replication is False

    def test_index_cache_var(self):
        opt = options_from_env({
            "PAPYRUSKV_INDEX_REPLICATION": "1",
            "PAPYRUSKV_INDEX_CACHE": "65536",
        })
        assert opt.index_replication is True
        assert opt.index_cache_capacity == 1 << 16
        # 0 is not a budget: it switches the whole plane off
        opt = options_from_env({
            "PAPYRUSKV_INDEX_REPLICATION": "1",
            "PAPYRUSKV_INDEX_CACHE": "0",
        })
        assert opt.index_replication is False
        assert opt.index_cache_capacity == Options().index_cache_capacity

    def test_index_push_var(self):
        assert options_from_env(
            {"PAPYRUSKV_INDEX_PUSH": "0"}
        ).index_push_eager is False
        assert options_from_env(
            {"PAPYRUSKV_INDEX_PUSH": "1"}
        ).index_push_eager is True
