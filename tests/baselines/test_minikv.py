"""MiniKV (LevelDB-like local store) tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.minikv import MiniKV
from repro.baselines.minikv.table import Table, TableBuilder, write_table
from repro.nvm.posixfs import PosixStore
from repro.simtime.resources import TimedResource


@pytest.fixture()
def store(tmp_path):
    return PosixStore(str(tmp_path), TimedResource("d", 1e-5, 1e9))


@pytest.fixture()
def kv(store):
    return MiniKV(store, "db", memtable_capacity=512, l0_limit=3)


class TestTableFormat:
    def test_builder_round_trip(self, store):
        items = [
            (f"k{i:03d}".encode(), f"v{i}".encode() * 3, False)
            for i in range(50)
        ]
        write_table(store, "t.ldb", items, 0.0)
        table = Table(store, "t.ldb")
        for k, v, _ in items:
            item, _ = table.get(k, 0.0)
            assert item == (k, v, False)

    def test_builder_rejects_unsorted(self):
        b = TableBuilder()
        b.add(b"b", b"1")
        with pytest.raises(ValueError):
            b.add(b"a", b"2")

    def test_missing_key(self, store):
        write_table(store, "t.ldb", [(b"a", b"1", False)], 0.0)
        item, _ = Table(store, "t.ldb").get(b"zz", 0.0)
        assert item is None

    def test_tombstone_round_trip(self, store):
        write_table(store, "t.ldb", [(b"a", b"", True)], 0.0)
        item, _ = Table(store, "t.ldb").get(b"a", 0.0)
        assert item == (b"a", b"", True)

    def test_scan_ordered(self, store):
        items = [(f"{i:02d}".encode(), b"v", False) for i in range(30)]
        write_table(store, "t.ldb", items, 0.0)
        out, _ = Table(store, "t.ldb").scan(0.0)
        assert out == items

    def test_key_range(self, store):
        items = [(b"banana", b"", False), (b"cherry", b"", False)]
        write_table(store, "t.ldb", items, 0.0)
        rng, _ = Table(store, "t.ldb").key_range(0.0)
        assert rng == (b"banana", b"cherry")

    def test_multi_block_file(self, store):
        items = [
            (f"k{i:04d}".encode(), b"x" * 300, False) for i in range(100)
        ]
        write_table(store, "t.ldb", items, 0.0, block_size=1024)
        table = Table(store, "t.ldb")
        for k, v, _ in items[::9]:
            item, _ = table.get(k, 0.0)
            assert item[1] == v

    def test_bad_footer(self, store):
        store.write("bad.ldb", b"x" * 64, 0.0)
        with pytest.raises(ValueError):
            Table(store, "bad.ldb").get(b"k", 0.0)


class TestMiniKVStore:
    def test_put_get(self, kv):
        kv.put(b"k", b"v", 0.0)
        value, _ = kv.get(b"k", 0.0)
        assert value == b"v"

    def test_get_missing(self, kv):
        value, _ = kv.get(b"nope", 0.0)
        assert value is None

    def test_delete(self, kv):
        kv.put(b"k", b"v", 0.0)
        kv.delete(b"k", 0.0)
        value, _ = kv.get(b"k", 0.0)
        assert value is None

    def test_overwrite(self, kv):
        kv.put(b"k", b"v1", 0.0)
        kv.put(b"k", b"v2", 0.0)
        assert kv.get(b"k", 0.0)[0] == b"v2"

    def test_flush_on_capacity(self, kv):
        t = 0.0
        for i in range(40):
            t = kv.put(f"k{i:03d}".encode(), b"v" * 32, t)
        assert kv.stats["flushes"] > 0
        assert kv.file_count() > 0
        for i in range(40):
            value, t = kv.get(f"k{i:03d}".encode(), t)
            assert value == b"v" * 32

    def test_l0_compaction_into_l1(self, kv):
        t = 0.0
        for i in range(300):
            t = kv.put(f"k{i:04d}".encode(), b"v" * 24, t)
        assert kv.stats["compactions"] > 0
        for i in range(0, 300, 13):
            value, t = kv.get(f"k{i:04d}".encode(), t)
            assert value == b"v" * 24

    def test_delete_survives_compaction(self, kv):
        t = kv.put(b"target", b"v", 0.0)
        t = kv.delete(b"target", t)
        for i in range(300):
            t = kv.put(f"fill{i:04d}".encode(), b"x" * 24, t)
        assert kv.get(b"target", t)[0] is None

    def test_time_monotone(self, kv):
        t = 0.0
        for i in range(60):
            t2 = kv.put(f"k{i}".encode(), b"v" * 40, t)
            assert t2 >= t
            t = t2

    def test_close_flushes(self, kv):
        kv.put(b"k", b"v", 0.0)
        kv.close(0.0)
        assert kv.file_count() >= 1

    def test_l1_splits_into_multiple_files(self, store):
        """Compaction splits L1 output at the ~2MB target, and lookups
        route to the right non-overlapping file."""
        kv = MiniKV(store, "big", memtable_capacity=1 << 20, l0_limit=1)
        t = 0.0
        value = b"x" * 4096
        for i in range(1400):  # ~5.7MB live data
            t = kv.put(f"k{i:05d}".encode(), value, t)
        t = kv.flush_all(t)
        if kv._l0:
            t = kv._compact_l0(t)
        assert len(kv._l1) >= 2
        for i in (0, 700, 1399):
            got, t = kv.get(f"k{i:05d}".encode(), t)
            assert got == value

    def test_cpu_charging(self, store):
        from repro.simtime.profiles import SUMMITDEV

        kv = MiniKV(store, "cpu", cpu=SUMMITDEV.cpu)
        end = kv.put(b"k", b"v" * 1000, 0.0)
        assert end > 0  # marshal + memcpy cost applied


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from("PD"),
    st.binary(min_size=1, max_size=10),
    st.binary(max_size=40),
), max_size=80))
def test_minikv_matches_dict_model(tmp_path_factory, ops):
    store = PosixStore(
        str(tmp_path_factory.mktemp("mkv")), TimedResource("d", 0.0, 1e9)
    )
    kv = MiniKV(store, "db", memtable_capacity=256, l0_limit=2)
    model: dict = {}
    t = 0.0
    for op, key, value in ops:
        if op == "P":
            t = kv.put(key, value, t)
            model[key] = value
        else:
            t = kv.delete(key, t)
            model.pop(key, None)
    for key in {k for _, k, _ in ops}:
        got, t = kv.get(key, t)
        assert got == model.get(key)
