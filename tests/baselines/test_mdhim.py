"""MDHIM baseline tests: distribution, synchrony, structural overheads."""

from __future__ import annotations

import pytest

from repro.baselines import MDHIM
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import SUMMITDEV


class TestBasics:
    def test_put_get_across_ranks(self):
        def app(ctx):
            with MDHIM(ctx, "t", memtable_capacity=1 << 12) as kv:
                r = ctx.world_rank
                for i in range(60):
                    kv.put(f"k-{r}-{i:02d}".encode(), f"v{r}{i}".encode())
                kv.barrier()
                for rr in range(ctx.nranks):
                    for i in range(0, 60, 7):
                        assert (
                            kv.get(f"k-{rr}-{i:02d}".encode())
                            == f"v{rr}{i}".encode()
                        )

        spmd_run(3, app)

    def test_get_missing(self):
        def app(ctx):
            with MDHIM(ctx, "t") as kv:
                assert kv.get(b"never-stored") is None

        spmd_run(2, app)

    def test_delete(self):
        def app(ctx):
            with MDHIM(ctx, "t") as kv:
                if ctx.world_rank == 0:
                    kv.put(b"k", b"v")
                kv.barrier()
                if ctx.world_rank == 1:
                    kv.delete(b"k")
                kv.barrier()
                assert kv.get(b"k") is None

        spmd_run(2, app)

    def test_puts_synchronous(self):
        """MDHIM has no relaxed mode: a put is visible immediately."""

        def app(ctx):
            with MDHIM(ctx, "t") as kv:
                if ctx.world_rank == 0:
                    for i in range(30):
                        kv.put(f"k{i}".encode(), b"v")
                    ctx.comm.send("done", 1, tag=1)
                elif ctx.world_rank == 1:
                    ctx.comm.recv(source=0, tag=1)
                    for i in range(30):
                        assert kv.get(f"k{i}".encode()) == b"v"
                kv.barrier()

        spmd_run(2, app)

    def test_closed_rejects_ops(self):
        def app(ctx):
            kv = MDHIM(ctx, "t")
            kv.close()
            with pytest.raises(RuntimeError):
                kv.put(b"k", b"v")

        spmd_run(1, app)

    def test_flush_to_local_store_files(self):
        def app(ctx):
            with MDHIM(ctx, "t", memtable_capacity=256) as kv:
                for i in range(100):
                    kv.put(f"k-{ctx.world_rank}-{i:03d}".encode(), b"v" * 32)
                kv.barrier()
                return kv.local.file_count()

        counts = spmd_run(2, app)
        assert sum(counts) > 0


class TestStructuralOverheads:
    def test_no_sstable_sharing(self):
        """Same-node gets still transfer values (no storage-group path):
        the per-rank MiniKV directories are independent."""

        def app(ctx):
            with MDHIM(ctx, "t", memtable_capacity=256) as kv:
                r = ctx.world_rank
                for i in range(50):
                    kv.put(f"k-{r}-{i:02d}".encode(), b"v" * 32)
                kv.barrier()
                # each rank's data lives only under its own directory
                mine = kv.local.store.listdir(f"mdhim_t/rank{r}")
                other = kv.local.store.listdir(f"mdhim_t/rank{(r+1) % 2}")
                return (len(mine), len(other))

        res = spmd_run(2, app, system=SUMMITDEV)
        for mine, other in res:
            assert mine > 0

    def test_double_copy_costs_more_than_single(self):
        """The layered hand-off must charge more CPU time per byte than a
        single-copy design would: put cost grows superlinearly vs. the
        raw MiniKV put."""

        def app(ctx):
            if ctx.world_rank != 0:
                with MDHIM(ctx, "t") as kv:
                    kv.barrier()
                return None
            with MDHIM(ctx, "t") as kv:
                key = next(
                    f"k{i}".encode() for i in range(100)
                    if kv._owner(f"k{i}".encode()) == 0
                )
                value = b"x" * 100_000
                t0 = ctx.clock.now
                kv.put(key, value)
                layered = ctx.clock.now - t0
                t0 = ctx.clock.now
                end = kv.local.put(key, value, ctx.clock.now)
                ctx.clock.advance_to(end)
                raw = ctx.clock.now - t0
                kv.barrier()
                return (layered, raw)

        layered, raw = spmd_run(2, app)[0]
        assert layered > raw  # the marshal copy is on top of the store's
