"""Error code mapping tests."""

from __future__ import annotations

import pytest

from repro.errors import (
    DatabaseClosedError,
    ErrorCode,
    InvalidDatabaseError,
    InvalidKeyError,
    KeyNotFoundError,
    PapyrusError,
    ProtectionError,
    StorageError,
    code_of,
)


class TestHierarchy:
    def test_all_papyrus_errors(self):
        for exc in (KeyNotFoundError, InvalidDatabaseError, InvalidKeyError,
                    ProtectionError, DatabaseClosedError, StorageError):
            assert issubclass(exc, PapyrusError)

    def test_key_not_found_is_keyerror(self):
        assert issubclass(KeyNotFoundError, KeyError)

    def test_storage_error_is_oserror(self):
        assert issubclass(StorageError, OSError)

    def test_closed_is_invalid_db(self):
        assert issubclass(DatabaseClosedError, InvalidDatabaseError)


class TestCodeOf:
    def test_papyrus_errors_carry_codes(self):
        assert code_of(KeyNotFoundError(b"k")) == ErrorCode.NOT_FOUND
        assert code_of(ProtectionError("x")) == ErrorCode.PROTECTED
        assert code_of(DatabaseClosedError("x")) == ErrorCode.CLOSED
        assert code_of(StorageError("x")) == ErrorCode.IO_ERROR

    def test_plain_keyerror(self):
        assert code_of(KeyError("k")) == ErrorCode.NOT_FOUND

    def test_plain_oserror(self):
        assert code_of(OSError("disk")) == ErrorCode.IO_ERROR

    def test_unknown_exception(self):
        assert code_of(RuntimeError("?")) == ErrorCode.INTERNAL

    def test_codes_are_ints(self):
        assert int(ErrorCode.SUCCESS) == 0
        assert all(isinstance(int(c), int) for c in ErrorCode)

    def test_paper_aliases(self):
        from repro.errors import (
            PAPYRUSKV_INVALID_DB,
            PAPYRUSKV_NOT_FOUND,
            PAPYRUSKV_SUCCESS,
        )

        assert PAPYRUSKV_SUCCESS == ErrorCode.SUCCESS
        assert PAPYRUSKV_NOT_FOUND == ErrorCode.NOT_FOUND
        assert PAPYRUSKV_INVALID_DB == ErrorCode.INVALID_DB
