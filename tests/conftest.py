"""Shared fixtures and helpers for the PapyrusKV reproduction tests."""

from __future__ import annotations

import pytest

from repro.config import Options
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI, STAMPEDE, SUMMITDEV


def small_options(**kw) -> Options:
    """Options sized so a few hundred ops exercise flush/migration."""
    base = dict(
        memtable_capacity=1 << 12,
        remote_memtable_capacity=1 << 11,
        cache_local_capacity=1 << 14,
        cache_remote_capacity=1 << 14,
        compaction_interval=4,
        flush_queue_capacity=2,
        migration_queue_capacity=2,
    )
    base.update(kw)
    return Options(**base)


def run4(fn, *, nranks: int = 4, system=SUMMITDEV, timeout: float = 120.0):
    """Run an SPMD function with test-friendly defaults."""
    return spmd_run(nranks, fn, system=system, timeout=timeout)


@pytest.fixture(params=["summitdev", "stampede", "cori"])
def any_system(request):
    return {"summitdev": SUMMITDEV, "stampede": STAMPEDE, "cori": CORI}[
        request.param
    ]
