"""Red-black tree unit and property tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.rbtree import RedBlackTree


class TestBasics:
    def test_empty(self):
        t = RedBlackTree()
        assert len(t) == 0
        assert not t
        assert b"x" not in t
        assert t.get(b"x") is None
        assert t.get(b"x", 42) == 42

    def test_insert_and_get(self):
        t = RedBlackTree()
        assert t.insert(b"a", 1) is True
        assert t[b"a"] == 1
        assert b"a" in t
        assert len(t) == 1

    def test_insert_replaces(self):
        t = RedBlackTree()
        t.insert(b"a", 1)
        assert t.insert(b"a", 2) is False
        assert t[b"a"] == 2
        assert len(t) == 1

    def test_getitem_missing_raises(self):
        t = RedBlackTree()
        with pytest.raises(KeyError):
            t[b"nope"]

    def test_setitem_alias(self):
        t = RedBlackTree()
        t[b"k"] = "v"
        assert t[b"k"] == "v"

    def test_delete(self):
        t = RedBlackTree()
        t.insert(b"a", 1)
        t.insert(b"b", 2)
        assert t.delete(b"a") == 1
        assert b"a" not in t
        assert len(t) == 1

    def test_delete_missing_raises(self):
        t = RedBlackTree()
        with pytest.raises(KeyError):
            t.delete(b"missing")

    def test_pop_default(self):
        t = RedBlackTree()
        assert t.pop(b"missing", None) is None
        with pytest.raises(KeyError):
            t.pop(b"missing")

    def test_clear(self):
        t = RedBlackTree()
        for i in range(10):
            t.insert(str(i).encode(), i)
        t.clear()
        assert len(t) == 0
        assert list(t.items()) == []

    def test_sorted_iteration(self):
        t = RedBlackTree()
        keys = [b"m", b"c", b"z", b"a", b"q"]
        for i, k in enumerate(keys):
            t.insert(k, i)
        assert [k for k, _ in t.items()] == sorted(keys)
        assert list(t.keys()) == sorted(keys)
        assert list(iter(t)) == sorted(keys)

    def test_min_max(self):
        t = RedBlackTree()
        for k in [b"m", b"c", b"z"]:
            t.insert(k, None)
        assert t.min_key() == b"c"
        assert t.max_key() == b"z"

    def test_min_max_empty_raises(self):
        t = RedBlackTree()
        with pytest.raises(KeyError):
            t.min_key()
        with pytest.raises(KeyError):
            t.max_key()

    def test_values_follow_key_order(self):
        t = RedBlackTree()
        for k, v in [(b"b", 2), (b"a", 1), (b"c", 3)]:
            t.insert(k, v)
        assert list(t.values()) == [1, 2, 3]

    def test_large_sequential_insert(self):
        t = RedBlackTree()
        for i in range(1000):
            t.insert(i, i * 2)
        assert len(t) == 1000
        t.check_invariants()
        assert t[500] == 1000

    def test_large_reverse_insert(self):
        t = RedBlackTree()
        for i in reversed(range(1000)):
            t.insert(i, i)
        t.check_invariants()
        assert list(t.keys()) == list(range(1000))

    def test_interleaved_insert_delete(self):
        t = RedBlackTree()
        for i in range(200):
            t.insert(i, i)
        for i in range(0, 200, 2):
            t.delete(i)
        t.check_invariants()
        assert list(t.keys()) == list(range(1, 200, 2))


@settings(max_examples=200, deadline=None)
@given(st.lists(st.tuples(st.sampled_from("ID"), st.binary(min_size=1, max_size=6))))
def test_rbtree_matches_dict_model(ops):
    """Random insert/delete sequences behave exactly like a dict."""
    t = RedBlackTree()
    model: dict = {}
    for op, key in ops:
        if op == "I":
            t.insert(key, key)
            model[key] = key
        else:
            if key in model:
                assert t.delete(key) == model.pop(key)
            else:
                with pytest.raises(KeyError):
                    t.delete(key)
    assert len(t) == len(model)
    assert list(t.items()) == sorted(model.items())
    t.check_invariants()


@settings(max_examples=100, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=10_000), max_size=300))
def test_rbtree_invariants_hold(keys):
    t = RedBlackTree()
    for k in keys:
        t.insert(k, None)
    t.check_invariants()
    # delete half and re-check
    for k in sorted(keys)[::2]:
        t.delete(k)
    t.check_invariants()
