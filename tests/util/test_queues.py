"""Bounded FIFO tests: ordering, back-pressure, snapshots, close."""

from __future__ import annotations

import threading
import time

import pytest

from repro.util.queues import BoundedFIFO, QueueClosed


class TestBasics:
    def test_fifo_order(self):
        q = BoundedFIFO(8)
        for i in range(5):
            q.put(i)
        assert [q.get() for _ in range(5)] == [0, 1, 2, 3, 4]

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BoundedFIFO(0)

    def test_len(self):
        q = BoundedFIFO(4)
        assert len(q) == 0
        q.put("x")
        assert len(q) == 1

    def test_try_put_full(self):
        q = BoundedFIFO(1)
        assert q.try_put("a") is True
        assert q.try_put("b") is False

    def test_put_timeout_when_full(self):
        q = BoundedFIFO(1)
        q.put("a")
        with pytest.raises(TimeoutError):
            q.put("b", timeout=0.05)

    def test_get_timeout_when_empty(self):
        q = BoundedFIFO(1)
        with pytest.raises(TimeoutError):
            q.get(timeout=0.05)


class TestBlocking:
    def test_put_blocks_until_drained(self):
        """The paper's back-pressure: a full flushing queue blocks the put."""
        q = BoundedFIFO(1)
        q.put("first")
        done = []

        def producer():
            q.put("second")  # blocks
            done.append(True)

        t = threading.Thread(target=producer, daemon=True)
        t.start()
        time.sleep(0.05)
        assert not done
        assert q.get() == "first"
        t.join(2.0)
        assert done

    def test_get_blocks_until_item(self):
        q = BoundedFIFO(1)
        got = []

        def consumer():
            got.append(q.get())

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.05)
        q.put("x")
        t.join(2.0)
        assert got == ["x"]


class TestSnapshotAndRemove:
    def test_snapshot_newest_first(self):
        q = BoundedFIFO(8)
        for i in range(4):
            q.put(i)
        assert list(q.snapshot_newest_first()) == [3, 2, 1, 0]
        assert len(q) == 4  # snapshot does not consume

    def test_remove_identity(self):
        q = BoundedFIFO(8)
        a, b = object(), object()
        q.put(a)
        q.put(b)
        assert q.remove(a) is True
        assert q.remove(a) is False
        assert q.get() is b

    def test_drain(self):
        q = BoundedFIFO(8)
        for i in range(3):
            q.put(i)
        assert q.drain() == [0, 1, 2]
        assert len(q) == 0


class TestClose:
    def test_get_after_close_drains_then_raises(self):
        q = BoundedFIFO(4)
        q.put(1)
        q.close()
        assert q.get() == 1
        with pytest.raises(QueueClosed):
            q.get()

    def test_put_after_close_raises(self):
        q = BoundedFIFO(4)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)
        with pytest.raises(QueueClosed):
            q.try_put(1)

    def test_close_wakes_blocked_getter(self):
        q = BoundedFIFO(1)
        errors = []

        def consumer():
            try:
                q.get()
            except QueueClosed:
                errors.append("closed")

        t = threading.Thread(target=consumer, daemon=True)
        t.start()
        time.sleep(0.05)
        q.close()
        t.join(2.0)
        assert errors == ["closed"]
