"""LRU cache tests: byte budget, recency, invalidation, statistics."""

from __future__ import annotations

import pytest

from repro.util.lru import LRUCache


class TestBasics:
    def test_put_get(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        assert c.get(b"k") == b"v"
        assert len(c) == 1
        assert b"k" in c

    def test_miss_returns_none(self):
        c = LRUCache(1024)
        assert c.get(b"missing") is None
        assert c.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_size_accounting(self):
        c = LRUCache(1024)
        c.put(b"abc", b"12345")
        assert c.size_bytes == 8
        c.put(b"abc", b"1")  # replace shrinks
        assert c.size_bytes == 4

    def test_peek_does_not_touch_stats(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        assert c.peek(b"k") == b"v"
        assert c.peek(b"x") is None
        assert c.hits == 0 and c.misses == 0


class TestEviction:
    def test_lru_order(self):
        c = LRUCache(30)
        c.put(b"a", b"0123456789")  # 11 bytes
        c.put(b"b", b"0123456789")  # 22
        c.get(b"a")  # a is now MRU
        c.put(b"c", b"0123456789")  # 33 > 30: evict LRU = b
        assert c.get(b"b") is None
        assert c.get(b"a") is not None
        assert c.get(b"c") is not None
        assert c.evictions == 1

    def test_oversized_entry_not_cached(self):
        c = LRUCache(10)
        c.put(b"k", b"x" * 100)
        assert c.get(b"k") is None
        assert c.size_bytes == 0

    def test_oversized_put_drops_stale_copy(self):
        c = LRUCache(20)
        c.put(b"k", b"small")
        c.put(b"k", b"x" * 100)  # too big: the old entry must vanish too
        assert c.get(b"k") is None

    def test_budget_never_exceeded(self):
        c = LRUCache(100)
        for i in range(50):
            c.put(f"key-{i:03d}".encode(), b"v" * 10)
            assert c.size_bytes <= 100


class TestInvalidation:
    def test_invalidate_present(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        assert c.invalidate(b"k") is True
        assert c.get(b"k") is None
        assert c.size_bytes == 0

    def test_invalidate_absent(self):
        c = LRUCache(1024)
        assert c.invalidate(b"k") is False

    def test_clear(self):
        c = LRUCache(1024)
        for i in range(5):
            c.put(str(i).encode(), b"v")
        c.clear()
        assert len(c) == 0
        assert c.size_bytes == 0

    def test_items_snapshot(self):
        c = LRUCache(1024)
        c.put(b"a", b"1")
        c.put(b"b", b"2")
        assert dict(c.items()) == {b"a": b"1", b"b": b"2"}

    def test_hit_statistics(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        c.get(b"k")
        c.get(b"k")
        c.get(b"nope")
        assert c.hits == 2
        assert c.misses == 1
