"""LRU cache tests: byte budget, recency, invalidation, statistics."""

from __future__ import annotations

import pytest

from repro.util.lru import LRUCache


class TestBasics:
    def test_put_get(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        assert c.get(b"k") == b"v"
        assert len(c) == 1
        assert b"k" in c

    def test_miss_returns_none(self):
        c = LRUCache(1024)
        assert c.get(b"missing") is None
        assert c.misses == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(-1)

    def test_size_accounting(self):
        c = LRUCache(1024)
        c.put(b"abc", b"12345")
        assert c.size_bytes == 8
        c.put(b"abc", b"1")  # replace shrinks
        assert c.size_bytes == 4

    def test_peek_does_not_touch_stats(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        assert c.peek(b"k") == b"v"
        assert c.peek(b"x") is None
        assert c.hits == 0 and c.misses == 0


class TestEviction:
    def test_lru_order(self):
        c = LRUCache(30)
        c.put(b"a", b"0123456789")  # 11 bytes
        c.put(b"b", b"0123456789")  # 22
        c.get(b"a")  # a is now MRU
        c.put(b"c", b"0123456789")  # 33 > 30: evict LRU = b
        assert c.get(b"b") is None
        assert c.get(b"a") is not None
        assert c.get(b"c") is not None
        assert c.evictions == 1

    def test_oversized_entry_not_cached(self):
        c = LRUCache(10)
        c.put(b"k", b"x" * 100)
        assert c.get(b"k") is None
        assert c.size_bytes == 0

    def test_oversized_put_drops_stale_copy(self):
        c = LRUCache(20)
        c.put(b"k", b"small")
        c.put(b"k", b"x" * 100)  # too big: the old entry must vanish too
        assert c.get(b"k") is None

    def test_budget_never_exceeded(self):
        c = LRUCache(100)
        for i in range(50):
            c.put(f"key-{i:03d}".encode(), b"v" * 10)
            assert c.size_bytes <= 100


class TestInvalidation:
    def test_invalidate_present(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        assert c.invalidate(b"k") is True
        assert c.get(b"k") is None
        assert c.size_bytes == 0

    def test_invalidate_absent(self):
        c = LRUCache(1024)
        assert c.invalidate(b"k") is False

    def test_clear(self):
        c = LRUCache(1024)
        for i in range(5):
            c.put(str(i).encode(), b"v")
        c.clear()
        assert len(c) == 0
        assert c.size_bytes == 0

    def test_items_snapshot(self):
        c = LRUCache(1024)
        c.put(b"a", b"1")
        c.put(b"b", b"2")
        assert dict(c.items()) == {b"a": b"1", b"b": b"2"}

    def test_hit_statistics(self):
        c = LRUCache(1024)
        c.put(b"k", b"v")
        c.get(b"k")
        c.get(b"k")
        c.get(b"nope")
        assert c.hits == 2
        assert c.misses == 1


class TestObjectLRU:
    """Cost-budgeted LRU over arbitrary keys/values (peer caches)."""

    def _cache(self, capacity=100):
        from repro.util.lru import ObjectLRU

        return ObjectLRU(capacity)

    def test_put_get_arbitrary_objects(self):
        c = self._cache()
        handle = object()
        c.put(("dir", 1), handle, cost=10)
        assert c.get(("dir", 1)) is handle
        assert ("dir", 1) in c
        assert c.cost == 10

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            self._cache(-1)

    def test_cost_budget_evicts_lru(self):
        c = self._cache(100)
        c.put("a", 1, cost=40)
        c.put("b", 2, cost=40)
        c.get("a")  # a is MRU
        c.put("c", 3, cost=40)  # 120 > 100: evict LRU = b
        assert c.get("b") is None
        assert c.get("a") == 1
        assert c.get("c") == 3
        assert c.evictions == 1
        assert c.cost == 80

    def test_replace_adjusts_cost(self):
        c = self._cache(100)
        c.put("k", 1, cost=60)
        c.put("k", 2, cost=10)
        assert c.cost == 10
        assert c.get("k") == 2

    def test_oversized_entry_not_cached_and_drops_stale(self):
        c = self._cache(10)
        c.put("k", 1, cost=5)
        c.put("k", 2, cost=50)  # oversized refresh evicts the stale copy
        assert c.get("k") is None
        assert c.cost == 0

    def test_invalidate_where_prefix(self):
        c = self._cache(100)
        c.put(("r0", 1), "x")
        c.put(("r0", 2), "y")
        c.put(("r1", 1), "z")
        assert c.invalidate_where(lambda k: k[0] == "r0") == 2
        assert c.get(("r1", 1)) == "z"
        assert len(c) == 1

    def test_entry_count_bound_with_unit_costs(self):
        c = self._cache(3)
        for i in range(5):
            c.put(i, i)
        assert len(c) == 3
        assert c.evictions == 2

    def test_peek_and_clear(self):
        c = self._cache(100)
        c.put("k", "v", cost=5)
        assert c.peek("k") == "v"
        assert c.hits == 0 and c.misses == 0
        c.clear()
        assert len(c) == 0 and c.cost == 0

    def test_keys_lru_first(self):
        c = self._cache(100)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")
        assert c.keys() == ["b", "a"]

    def test_dict_snapshot(self):
        c = self._cache(100)
        c.put("a", 1)
        c.put("b", 2)
        assert dict(c) == {"a": 1, "b": 2}
        assert c["a"] == 1  # no recency/stat side effects
        assert c.hits == 0 and c.misses == 0
        with pytest.raises(KeyError):
            c["missing"]
