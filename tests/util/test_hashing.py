"""Hashing and owner-rank mapping tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.hashing import builtin_key_hash, fnv1a_64, owner_rank


class TestFnv:
    def test_known_vector(self):
        # standard FNV-1a 64 test vector
        assert fnv1a_64(b"") == 0xCBF29CE484222325
        assert fnv1a_64(b"a") == 0xAF63DC4C8601EC8C

    def test_deterministic(self):
        assert fnv1a_64(b"hello") == fnv1a_64(b"hello")

    def test_different_inputs_differ(self):
        assert fnv1a_64(b"hello") != fnv1a_64(b"world")

    def test_64bit_range(self):
        for s in (b"", b"x", b"longer input value"):
            assert 0 <= fnv1a_64(s) < (1 << 64)


class TestOwnerRank:
    def test_in_range(self):
        for n in (1, 2, 7, 64):
            assert 0 <= owner_rank(b"key", n) < n

    def test_single_rank_owns_all(self):
        assert owner_rank(b"anything", 1) == 0

    def test_invalid_nranks(self):
        with pytest.raises(ValueError):
            owner_rank(b"k", 0)

    def test_custom_hash_honoured(self):
        assert owner_rank(b"k", 8, lambda _: 5) == 5
        assert owner_rank(b"k", 4, lambda _: 5) == 1

    def test_builtin_is_fnv(self):
        assert builtin_key_hash(b"k") == fnv1a_64(b"k")

    def test_distribution_roughly_uniform(self):
        n = 8
        counts = [0] * n
        for i in range(4000):
            counts[owner_rank(f"key-{i}".encode(), n)] += 1
        for c in counts:
            assert 300 < c < 700  # expectation 500


@settings(max_examples=200, deadline=None)
@given(st.binary(min_size=1, max_size=64), st.integers(min_value=1, max_value=128))
def test_owner_rank_always_valid(key, nranks):
    assert 0 <= owner_rank(key, nranks) < nranks
