"""Bloom filter tests: no false negatives, serialization, sizing."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.bloom import BloomFilter


class TestConstruction:
    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 1)
        with pytest.raises(ValueError):
            BloomFilter(8, 0)

    def test_for_capacity_sizing(self):
        bf = BloomFilter.for_capacity(1000, 0.01)
        # ~9.6 bits/key at 1% FP
        assert 8000 <= bf.nbits <= 12000
        assert 5 <= bf.nhashes <= 10

    def test_for_capacity_invalid_fp(self):
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 0.0)
        with pytest.raises(ValueError):
            BloomFilter.for_capacity(10, 1.0)

    def test_zero_capacity_clamped(self):
        bf = BloomFilter.for_capacity(0)
        assert bf.nbits >= 8


class TestMembership:
    def test_added_keys_found(self):
        bf = BloomFilter.for_capacity(100)
        keys = [f"key{i}".encode() for i in range(100)]
        for k in keys:
            bf.add(k)
        for k in keys:
            assert k in bf
            assert bf.may_contain(k)
        assert len(bf) == 100

    def test_empty_filter_rejects(self):
        bf = BloomFilter.for_capacity(100)
        assert b"anything" not in bf

    def test_false_positive_rate_reasonable(self):
        bf = BloomFilter.for_capacity(1000, 0.01)
        for i in range(1000):
            bf.add(f"in-{i}".encode())
        fps = sum(
            1 for i in range(10_000) if f"out-{i}".encode() in bf
        )
        assert fps / 10_000 < 0.05  # generous bound on the 1% target

    def test_fill_ratio(self):
        bf = BloomFilter.for_capacity(100, 0.01)
        assert bf.fill_ratio() == 0.0
        for i in range(100):
            bf.add(str(i).encode())
        assert 0.2 < bf.fill_ratio() < 0.8


class TestSerialization:
    def test_round_trip(self):
        bf = BloomFilter.for_capacity(50)
        for i in range(50):
            bf.add(f"k{i}".encode())
        bf2 = BloomFilter.from_bytes(bf.to_bytes())
        assert bf2.nbits == bf.nbits
        assert bf2.nhashes == bf.nhashes
        assert bf2.count == 50
        for i in range(50):
            assert f"k{i}".encode() in bf2

    def test_truncated_blob_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"short")

    def test_corrupt_length_rejected(self):
        bf = BloomFilter.for_capacity(10)
        blob = bf.to_bytes()
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(blob[:-1])


@settings(max_examples=150, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=32), max_size=200))
def test_no_false_negatives(keys):
    """The defining invariant: every added key tests positive."""
    bf = BloomFilter.for_capacity(max(1, len(keys)))
    for k in keys:
        bf.add(k)
    for k in keys:
        assert k in bf


@settings(max_examples=50, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=64))
def test_serialization_preserves_membership(keys):
    bf = BloomFilter.for_capacity(len(keys))
    for k in keys:
        bf.add(k)
    bf2 = BloomFilter.from_bytes(bf.to_bytes())
    for k in keys:
        assert k in bf2
