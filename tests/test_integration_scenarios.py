"""End-to-end scenario tests spanning every subsystem at once.

Each scenario is a realistic multi-phase HPC application:
write-heavy initialization, protection-gated analysis, dynamic
consistency switches, mid-run checkpoints, and cross-application
workflows — on all three modelled platforms.
"""

from __future__ import annotations

import pytest

from repro import (
    Options,
    Papyrus,
    RDONLY,
    RDWR,
    RELAXED,
    SEQUENTIAL,
    SSTABLE,
    WRONLY,
    spmd_run,
)
from repro.nvm.storage import Machine
from repro.simtime.profiles import CORI, STAMPEDE, SUMMITDEV
from tests.conftest import small_options


class TestFullLifecycle:
    def test_write_analyze_checkpoint_cycle(self, any_system):
        """init (WRONLY) -> analyze (RDONLY) -> update -> checkpoint ->
        destroy -> restart -> verify, on every platform."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("cycle", small_options())
                # phase 1: write-only initialization
                db.protect(WRONLY)
                for i in range(120):
                    db.put(f"init{i:04d}".encode(), f"v{i}".encode() * 3)
                db.protect(RDWR)
                db.barrier(SSTABLE)

                # phase 2: read-only analysis with remote caching
                db.protect(RDONLY)
                total = sum(
                    len(db.get(f"init{i:04d}".encode()))
                    for i in range(0, 120, 11)
                )
                assert total > 0
                db.protect(RDWR)

                # phase 3: updates under sequential consistency
                db.set_consistency(SEQUENTIAL)
                for i in range(0, 120, 7):
                    db.put(f"init{i:04d}".encode(), b"updated")
                db.set_consistency(RELAXED)
                db.barrier()

                # phase 4: checkpoint, destroy, restart, verify
                db.checkpoint("cycle-snap").wait(ctx.clock)
                db.destroy().wait(ctx.clock)
                db2, ev = env.restart("cycle-snap", "cycle", small_options())
                ev.wait(ctx.clock)
                db2.coll_comm.barrier()
                for i in range(120):
                    expected = b"updated" if i % 7 == 0 else f"v{i}".encode() * 3
                    assert db2.get(f"init{i:04d}".encode()) == expected
                db2.close()

        spmd_run(3, app, system=any_system, timeout=300)


class TestMultiDatabaseWorkflow:
    def test_pipeline_over_two_databases(self):
        """A two-stage pipeline: stage 1 writes db A; stage 2 reads A
        and writes derived values to db B; all ranks verify B."""

        def app(ctx):
            with Papyrus(ctx) as env:
                raw = env.open("raw", small_options())
                derived = env.open("derived", small_options())
                me = ctx.world_rank
                for i in range(60):
                    raw.put(f"s{me}:{i}".encode(), bytes([i % 251]))
                raw.barrier()
                # each rank derives from the next rank's data
                src = (me + 1) % ctx.nranks
                for i in range(60):
                    v = raw.get(f"s{src}:{i}".encode())
                    derived.put(f"d{src}:{i}".encode(), v * 2)
                derived.barrier()
                for r in range(ctx.nranks):
                    for i in range(0, 60, 13):
                        assert (
                            derived.get(f"d{r}:{i}".encode())
                            == bytes([i % 251]) * 2
                        )
                derived.close()
                raw.close()

        spmd_run(3, app, timeout=300)

    def test_databases_with_different_options(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                seq_db = env.open(
                    "seqdb", small_options(consistency=SEQUENTIAL)
                )
                rel_db = env.open(
                    "reldb", small_options(consistency=RELAXED, group_size=1)
                )
                assert seq_db.consistency == SEQUENTIAL
                assert rel_db.consistency == RELAXED
                assert rel_db.layout.group_size == 1
                seq_db.put(b"k", b"s")
                rel_db.put(b"k", b"r")
                seq_db.barrier()
                rel_db.barrier()
                assert seq_db.get(b"k") == b"s"
                assert rel_db.get(b"k") == b"r"
                rel_db.close()
                seq_db.close()

        spmd_run(2, app, timeout=300)


class TestCrossJobWorkflows:
    def test_three_coupled_applications(self, tmp_path):
        """Figure 5(b): produce -> checkpoint; job ends (NVM trim);
        restart -> extend -> checkpoint; restart -> consume."""
        machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

        def produce(ctx):
            with Papyrus(ctx) as env:
                db = env.open("chain", small_options())
                for i in range(40):
                    db.put(f"gen0:{i}".encode(), b"alpha")
                db.barrier()
                db.checkpoint("chain-1").wait(ctx.clock)
                db.coll_comm.barrier()
                db.close()

        def extend(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("chain-1", "chain", small_options())
                ev.wait(ctx.clock)
                db.coll_comm.barrier()
                assert db.get(b"gen0:0") == b"alpha"
                for i in range(40):
                    db.put(f"gen1:{i}".encode(), b"beta")
                db.barrier()
                db.checkpoint("chain-2").wait(ctx.clock)
                db.coll_comm.barrier()
                db.close()

        def consume(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("chain-2", "chain", small_options())
                ev.wait(ctx.clock)
                db.coll_comm.barrier()
                assert db.get(b"gen0:39") == b"alpha"
                assert db.get(b"gen1:39") == b"beta"
                db.close()

        spmd_run(2, produce, machine=machine)
        machine.trim_nvm()
        spmd_run(2, extend, machine=machine)
        machine.trim_nvm()
        spmd_run(2, consume, machine=machine)
        machine.close()


class TestScaleStress:
    def test_two_node_summitdev_soak(self):
        """24 ranks across two Summitdev nodes: inter-node migration,
        per-node storage groups, mixed operations under churn."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("soak", small_options())
                me = ctx.world_rank
                for round_ in range(2):
                    for i in range(30):
                        db.put(
                            f"r{me}:i{i}:g{round_}".encode(),
                            bytes([round_]) * 64,
                        )
                    db.barrier(SSTABLE)
                    for peer in (me + 1, me + ctx.nranks // 2):
                        peer %= ctx.nranks
                        for i in range(0, 30, 7):
                            v = db.get(f"r{peer}:i{i}:g{round_}".encode())
                            assert v == bytes([round_]) * 64
                    db.barrier()
                db.close()
                return dict(db.stats.get_tiers)

        res = spmd_run(24, app, system=SUMMITDEV, timeout=600)
        assert len(res) == 24

    def test_many_small_values_churn(self):
        """Thousands of tiny pairs with frequent compaction."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "churn",
                    small_options(memtable_capacity=1 << 10,
                                  compaction_interval=3),
                )
                for i in range(500):
                    db.put(f"{i % 97:02d}".encode(), f"{i}".encode() * 40)
                db.barrier()
                # final value of key k is the largest i with i%97==k
                for k in range(97):
                    last = max(i for i in range(500) if i % 97 == k)
                    assert (
                        db.get(f"{k:02d}".encode())
                        == f"{last}".encode() * 40
                    )
                assert db.stats.compactions > 0
                db.close()

        spmd_run(2, app, timeout=300)


class TestEdgeCases:
    def test_empty_value_is_not_a_delete(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("edge", small_options())
                db.put(b"empty", b"")
                db.barrier()
                assert db.get(b"empty") == b""
                db.close()

        spmd_run(2, app)

    def test_long_keys_and_binary_data(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("edge", small_options())
                key = bytes(range(256)) * 4  # 1 KB binary key
                value = bytes(255 - b for b in range(256)) * 8
                db.put(key, value)
                db.barrier(SSTABLE)
                assert db.get(key) == value
                db.close()

        spmd_run(2, app)

    def test_single_rank_world(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("solo", small_options())
                for i in range(50):
                    db.put(f"{i}".encode(), b"x")
                db.barrier(SSTABLE)
                db.fence()  # no remote state: must be a no-op
                assert db.stats.remote_puts == 0
                db.close()

        spmd_run(1, app)

    def test_closed_database_rejects_operations(self):
        from repro.errors import DatabaseClosedError

        def app(ctx):
            env = Papyrus(ctx)
            db = env.open("gone", small_options())
            db.close()
            with pytest.raises(DatabaseClosedError):
                db.put(b"k", b"v")
            with pytest.raises(DatabaseClosedError):
                db.get(b"k")
            with pytest.raises(DatabaseClosedError):
                db.fence()
            env.finalize()

        spmd_run(2, app)

    def test_reopen_after_close_in_same_env(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("re", small_options())
                db.put(f"k{ctx.world_rank}".encode(), b"v1")
                db.barrier()
                db.close()
                db = env.open("re", small_options())
                for r in range(ctx.nranks):
                    assert db.get(f"k{r}".encode()) == b"v1"
                db.close()

        spmd_run(2, app)
