"""Functional API tests: the full Table 1 surface and error codes."""

from __future__ import annotations

import pytest

from repro.config import RDONLY, RDWR, SEQUENTIAL, SSTABLE
from repro.core import api
from repro.errors import ErrorCode
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options


def test_table1_symbols_exist():
    """Every Table 1 function has a counterpart."""
    for fn in (
        "papyruskv_init", "papyruskv_finalize",
        "papyruskv_open", "papyruskv_close",
        "papyruskv_put", "papyruskv_get", "papyruskv_delete",
        "papyruskv_free",
        "papyruskv_signal_notify", "papyruskv_signal_wait",
        "papyruskv_fence", "papyruskv_barrier",
        "papyruskv_consistency", "papyruskv_protect",
        "papyruskv_checkpoint", "papyruskv_restart",
        "papyruskv_destroy", "papyruskv_wait",
    ):
        assert callable(getattr(api, fn)), fn


def test_basic_lifecycle_codes():
    def app(ctx):
        assert api.papyruskv_init() == ErrorCode.SUCCESS
        code, db = api.papyruskv_open("d", 0, small_options())
        assert code == ErrorCode.SUCCESS and db is not None
        assert api.papyruskv_put(db, b"k", b"v") == ErrorCode.SUCCESS
        assert api.papyruskv_barrier(db, SSTABLE) == ErrorCode.SUCCESS
        code, value = api.papyruskv_get(db, b"k")
        assert code == ErrorCode.SUCCESS and value == b"v"
        assert api.papyruskv_free(db, value) == ErrorCode.SUCCESS
        # all ranks must finish reading before anyone deletes
        assert api.papyruskv_barrier(db, 0) == ErrorCode.SUCCESS
        assert api.papyruskv_delete(db, b"k") == ErrorCode.SUCCESS
        assert api.papyruskv_fence(db) == ErrorCode.SUCCESS
        assert api.papyruskv_barrier(db, 0) == ErrorCode.SUCCESS
        code, value = api.papyruskv_get(db, b"k")
        assert code == ErrorCode.NOT_FOUND and value is None
        assert api.papyruskv_close(db) == ErrorCode.SUCCESS
        assert api.papyruskv_finalize() == ErrorCode.SUCCESS

    spmd_run(2, app)


def test_not_found_code():
    def app(ctx):
        api.papyruskv_init()
        _, db = api.papyruskv_open("d", 0, small_options())
        code, value = api.papyruskv_get(db, b"never")
        assert code == ErrorCode.NOT_FOUND
        api.papyruskv_close(db)
        api.papyruskv_finalize()

    spmd_run(1, app)


def test_invalid_key_code():
    def app(ctx):
        api.papyruskv_init()
        _, db = api.papyruskv_open("d", 0, small_options())
        assert api.papyruskv_put(db, b"", b"v") == ErrorCode.INVALID_KEY
        api.papyruskv_close(db)
        api.papyruskv_finalize()

    spmd_run(1, app)


def test_protection_codes():
    def app(ctx):
        api.papyruskv_init()
        _, db = api.papyruskv_open("d", 0, small_options())
        assert api.papyruskv_protect(db, RDONLY) == ErrorCode.SUCCESS
        assert api.papyruskv_put(db, b"k", b"v") == ErrorCode.PROTECTED
        assert api.papyruskv_protect(db, RDWR) == ErrorCode.SUCCESS
        assert api.papyruskv_protect(db, 99) == ErrorCode.INVALID_PROTECTION
        api.papyruskv_close(db)
        api.papyruskv_finalize()

    spmd_run(2, app)


def test_consistency_codes():
    def app(ctx):
        api.papyruskv_init()
        _, db = api.papyruskv_open("d", 0, small_options())
        assert api.papyruskv_consistency(db, SEQUENTIAL) == ErrorCode.SUCCESS
        assert api.papyruskv_consistency(db, 42) == ErrorCode.INVALID_MODE
        api.papyruskv_close(db)
        api.papyruskv_finalize()

    spmd_run(2, app)


def test_signal_functions():
    def app(ctx):
        api.papyruskv_init()
        if ctx.world_rank == 0:
            assert api.papyruskv_signal_notify(3, [1]) == ErrorCode.SUCCESS
        else:
            assert api.papyruskv_signal_wait(3, [0]) == ErrorCode.SUCCESS
        ctx.comm.barrier()
        api.papyruskv_finalize()

    spmd_run(2, app)


def test_checkpoint_restart_destroy_wait():
    def app(ctx):
        api.papyruskv_init()
        _, db = api.papyruskv_open("d", 0, small_options())
        api.papyruskv_put(db, b"k", b"v")
        api.papyruskv_barrier(db, 0)
        code, ev = api.papyruskv_checkpoint(db, "apisnap")
        assert code == ErrorCode.SUCCESS and ev is not None
        assert api.papyruskv_wait(db, ev) == ErrorCode.SUCCESS
        code, dev = api.papyruskv_destroy(db)
        assert code == ErrorCode.SUCCESS
        code, db2, rev = api.papyruskv_restart(
            "apisnap", "d", 0, small_options()
        )
        assert code == ErrorCode.SUCCESS and db2 is not None
        assert api.papyruskv_wait(db2, rev) == ErrorCode.SUCCESS
        db2.coll_comm.barrier()
        code, value = api.papyruskv_get(db2, b"k")
        assert code == ErrorCode.SUCCESS and value == b"v"
        api.papyruskv_close(db2)
        api.papyruskv_finalize()

    spmd_run(2, app, timeout=240)


def test_free_rejects_non_bytes():
    def app(ctx):
        api.papyruskv_init()
        _, db = api.papyruskv_open("d", 0, small_options())
        assert api.papyruskv_free(db, 123) == ErrorCode.INVALID_VALUE
        api.papyruskv_close(db)
        api.papyruskv_finalize()

    spmd_run(1, app)


def test_finalize_without_init():
    def app(ctx):
        assert api.papyruskv_finalize() == ErrorCode.NOT_INITIALIZED

    spmd_run(1, app)


def test_ops_without_init_fail_gracefully():
    def app(ctx):
        code, db = api.papyruskv_open("d", 0, small_options())
        assert code != ErrorCode.SUCCESS and db is None

    spmd_run(1, app)
