"""Handler service-path tests: cache hits, cross-group data shipping."""

from __future__ import annotations

import pytest

from repro import Papyrus, SSTABLE, spmd_run
from repro.metrics import machine_metrics
from tests.conftest import small_options


class TestHandlerCachePath:
    def test_owner_local_cache_serves_repeat_remote_gets(self):
        """After the owner's local cache holds a key (populated by its
        own SSTable read), an out-of-group requester's get is served
        from the owner's memory — FOUND, not NOT_IN_MEMORY."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("hc", small_options(group_size=1))
                key = next(
                    f"k{i}".encode() for i in range(300)
                    if db.owner_of(f"k{i}".encode()) == 0
                )
                if ctx.world_rank == 0:
                    db.put(key, b"v" * 40)
                db.barrier(SSTABLE)
                if ctx.world_rank == 0:
                    db.get(key)  # primes rank 0's local cache
                db.barrier()
                if ctx.world_rank == 1:
                    res = db.get_ex(key)
                    assert res.tier == "remote"
                    assert res.value == b"v" * 40
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_cross_group_get_reads_owner_sstables(self):
        """With group_size=1 the handler itself walks its SSTables and
        ships the value (the paper's non-shared path)."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("xg", small_options(group_size=1))
                r = ctx.world_rank
                for i in range(50):
                    db.put(f"k-{r}-{i:02d}".encode(), b"d" * 32)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                for i in range(0, 50, 7):
                    key = f"k-{other}-{i:02d}".encode()
                    if db.owner_of(key) != r:
                        res = db.get_ex(key)
                        assert res.tier == "remote"
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestMachineMetricsAfterCheckpoint:
    def test_lustre_traffic_recorded(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("mm", small_options())
                for i in range(40):
                    db.put(f"k{i}".encode(), b"v" * 64)
                db.barrier()
                db.checkpoint("mmsnap").wait(ctx.clock)
                db.coll_comm.barrier()
                db.close()
                mm = machine_metrics(ctx.machine)
                return mm["lustre"]["write"]["bytes"]

        lustre_bytes = spmd_run(2, app)[0]
        assert lustre_bytes > 0


class TestMdhimAcrossSystems:
    @pytest.mark.parametrize("sysname", ["stampede", "cori"])
    def test_mdhim_runs_on_other_platforms(self, sysname):
        from repro.baselines import MDHIM
        from repro.simtime.profiles import system_by_name

        def app(ctx):
            with MDHIM(ctx, "xsys", memtable_capacity=1 << 12) as kv:
                for i in range(40):
                    kv.put(f"k-{ctx.world_rank}-{i}".encode(), b"v" * 24)
                kv.barrier()
                hits = sum(
                    1 for r in range(ctx.nranks) for i in range(0, 40, 9)
                    if kv.get(f"k-{r}-{i}".encode()) == b"v" * 24
                )
                return hits

        res = spmd_run(2, app, system=system_by_name(sysname))
        assert all(h == 2 * 5 for h in res)
