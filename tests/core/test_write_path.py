"""Write-path overhaul: group commit, pipelined flush, partitioned
compaction, and the WriteBatch surface.

Covers the redesigned write API's contract: commit-window coalescing
and its cost model, the two-stage flush pipeline (equivalence with the
monolithic path, non-blocking flush, worker accounting), incremental
partitioned compaction (correctness, precise invalidation, major
merges dropping tombstones, the legacy monolithic fallback), the
deprecation shims, batch durability levels and auto-flush, and the
streaming scan_collect merge.
"""

from __future__ import annotations

import pytest

from repro import FaultPlan, Options, Papyrus, SSTABLE, spmd_run
from repro.core import api
from repro.errors import InvalidOptionError
from repro.mpi.launcher import RankFailure
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from tests.conftest import small_options


def run1(fn, **kw):
    return spmd_run(1, fn, **kw)[0]


def _fill(db, n, tag="w", vlen=48):
    for i in range(n):
        db.put(f"{tag}{i:04d}".encode(), f"v{i}".encode().ljust(vlen, b"."))


def _check(db, n, tag="w", vlen=48):
    for i in range(n):
        assert db.get(f"{tag}{i:04d}".encode()) == \
            f"v{i}".encode().ljust(vlen, b".")


class TestGroupCommit:
    def test_counters_and_coalescing(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("gc", small_options(memtable_capacity=1 << 20))
                _fill(db, 200)
                s = db.stats
                assert s.group_commits >= 1
                assert s.group_commit_coalesced >= 1
                assert s.group_commits + s.group_commit_coalesced == 200
                _check(db, 200)
                db.close()

        run1(app)

    def test_disabled_by_zero_interval(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "gcoff",
                    small_options(memtable_capacity=1 << 20,
                                  group_commit_interval=0.0),
                )
                _fill(db, 100)
                assert db.stats.group_commits == 0
                assert db.stats.group_commit_coalesced == 0
                db.close()

        run1(app)

    def test_coalesced_puts_are_cheaper(self):
        """Same single-rank workload, group commit on vs off: the
        coalesced run must finish earlier on the virtual clock."""

        def timed(gc_on):
            def app(ctx):
                with Papyrus(ctx) as env:
                    opts = small_options(
                        memtable_capacity=1 << 20,
                        group_commit_interval=200e-6 if gc_on else 0.0,
                    )
                    db = env.open("gctime", opts)
                    t0 = ctx.clock.now
                    _fill(db, 500)
                    dt = ctx.clock.now - t0
                    db.close()
                    return dt

            return run1(app)

        assert timed(True) < timed(False)

    def test_bytes_budget_reopens_window(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "gcbytes",
                    small_options(memtable_capacity=1 << 20,
                                  group_commit_bytes=128),
                )
                _fill(db, 50, vlen=150)  # each put overflows the budget
                # alone, so every put opens its own window
                assert db.stats.group_commits == 50
                assert db.stats.group_commit_coalesced == 0
                db.close()

        run1(app)

    def test_bulk_batch_counts_as_one_window(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("gcbulk", small_options())
                with db.batch() as b:
                    for i in range(30):
                        b.put(f"bk{i}".encode(), b"v" * 16)
                assert db.stats.group_commits == 1
                assert db.stats.group_commit_coalesced == 29
                db.close()

        run1(app)


class TestPipelinedFlush:
    def test_pipeline_matches_legacy_data(self, tmp_path):
        """Both flush shapes persist identical key/value sets."""

        def write_and_read(pipeline, base):
            machine = Machine(SUMMITDEV, 1, base_dir=str(base))

            def writer(ctx):
                with Papyrus(ctx) as env:
                    db = env.open("pf", small_options(
                        flush_pipeline=pipeline))
                    _fill(db, 300)
                    db.barrier(SSTABLE)
                    db.close()

            def reader(ctx):
                with Papyrus(ctx) as env:
                    db = env.open("pf", small_options(
                        flush_pipeline=pipeline))
                    _check(db, 300)
                    n = len(db.scan_local())
                    db.close()
                    return n

            spmd_run(1, writer, machine=machine)
            n = spmd_run(1, reader, machine=machine)[0]
            machine.close()
            return n

        assert write_and_read(True, tmp_path / "on") == \
            write_and_read(False, tmp_path / "off") == 300

    def test_stage_workers_charged(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pfw", small_options())
                _fill(db, 300)
                db.flush()
                assert db.flush_build_worker.busy_time > 0
                assert db.flush_sync_worker.busy_time > 0
                db.close()

        run1(app)

    def test_pipeline_overlap_beats_serial(self):
        """Overlapped build/sync stages finish the flush train no later
        than the monolithic single-worker path."""

        def timed(pipeline):
            def app(ctx):
                with Papyrus(ctx) as env:
                    db = env.open("pft", small_options(
                        flush_pipeline=pipeline, compaction_interval=0))
                    _fill(db, 400)
                    db.flush()
                    t = ctx.clock.now
                    db.close()
                    return t

            return run1(app)

        assert timed(True) < timed(False)

    def test_flush_nowait_enqueues_only(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pfnw", small_options(
                    memtable_capacity=1 << 20, compaction_interval=0))
                _fill(db, 50)
                t0 = ctx.clock.now
                db.flush(wait=False)
                t_nowait = ctx.clock.now
                assert db.ssids  # the table was enqueued
                db.flush(wait=True)
                assert ctx.clock.now > t_nowait  # waiting costs time
                assert t_nowait - t0 < ctx.clock.now - t_nowait
                _check(db, 50)
                db.close()

        run1(app)

    def test_flush_sstables_alias_warns(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pfdep", small_options())
                db.put(b"k", b"v")
                with pytest.warns(DeprecationWarning):
                    db.flush_sstables()
                assert db.ssids
                db.close()

        run1(app)

    def test_api_flush_veneer(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pfapi", small_options())
                db.put(b"k", b"v")
                assert api.papyruskv_flush(db) == 0
                assert db.ssids
                db.close()

        run1(app)


class TestPartitionedCompaction:
    def test_partition_jobs_and_correctness(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pc", small_options(compaction_interval=2))
                _fill(db, 400)
                db.flush()
                s = db.stats
                assert s.compactions >= 1
                assert s.compaction_partition_jobs >= 2
                _check(db, 400)
                db.close()

        run1(app)

    def test_minor_merge_leaves_older_tables(self):
        """A minor pass merges only the L0 delta; tables from earlier
        generations stay on disk untouched."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pcminor", small_options(
                    compaction_interval=2, compaction_major_every=100))
                _fill(db, 500)
                db.flush()
                assert db.stats.compactions >= 2
                assert db.stats.compaction_majors == 0
                # several generations of partition outputs accumulate
                assert len(db.ssids) > db.options.compaction_partitions
                _check(db, 500)
                db.close()

        run1(app)

    def test_major_merge_drops_tombstones(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pcmajor", small_options(
                    compaction_interval=2, compaction_major_every=2))
                _fill(db, 200)
                for i in range(0, 200, 2):
                    db.delete(f"w{i:04d}".encode())
                # churn until a major pass has consumed the tombstones
                _fill(db, 200, tag="x")
                db.flush()
                assert db.stats.compaction_majors >= 1
                live = db.scan_local()
                keys = {k for k, _ in live}
                assert not any(
                    f"w{i:04d}".encode() in keys for i in range(0, 200, 2)
                )
                assert all(
                    f"w{i:04d}".encode() in keys for i in range(1, 200, 2)
                )
                db.close()

        run1(app)

    def test_legacy_monolithic_fallback(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pcmono", small_options(
                    compaction_partitions=1))
                _fill(db, 400)
                db.flush()
                assert db.stats.compactions >= 1
                assert db.stats.compaction_partition_jobs == 0
                _check(db, 400)
                db.close()

        run1(app)

    def test_precise_reader_invalidation(self):
        """Compaction drops cached readers for its inputs only; survivor
        tables keep their cached readers."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pcinv", small_options(
                    compaction_interval=0))
                _fill(db, 400)
                db.flush()
                # touch every table so readers get cached
                _check(db, 400)
                with db._readers_lock:
                    cached_before = set(db._readers)
                survivors = [s for s in db.ssids if s not in db._l0][:0]
                inputs = list(db._l0)
                db._schedule_compaction(ctx.clock.now)
                with db._readers_lock:
                    cached_after = set(db._readers)
                # inputs' readers are gone; nothing else was touched
                assert not (cached_after & set(inputs))
                assert cached_after <= cached_before
                del survivors
                _check(db, 400)
                db.close()

        run1(app)

    def test_rate_limit_paces_worker(self):
        """duty < 1 forces idle gaps: the compaction worker's horizon
        stretches past its busy time."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pcrate", small_options(
                    compaction_interval=2, compaction_rate_limit=0.25))
                _fill(db, 400)
                db.flush()
                w = db.compaction_worker
                assert w.jobs > 0
                assert w.available > w.busy_time * 1.5
                db.close()

        run1(app)

    def test_multirank_compaction_visibility(self):
        """Peers still resolve keys after partitioned compactions churn
        the owner's table set (fresh-SSID invariant)."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pcmr", small_options(compaction_interval=2))
                me = ctx.world_rank
                for i in range(200):
                    db.put(f"r{me}:{i:04d}".encode(), b"v" * 32)
                db.barrier(SSTABLE)
                other = (me + 1) % ctx.nranks
                for i in range(0, 200, 10):
                    assert db.get(f"r{other}:{i:04d}".encode()) == b"v" * 32
                db.barrier()
                db.close()

        spmd_run(4, app, timeout=120)


class TestWriteBatch:
    def test_durability_flush_persists(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("wbf", small_options(
                    memtable_capacity=1 << 20))
                with db.batch(durability="flush") as b:
                    for i in range(40):
                        b.put(f"d{i}".encode(), b"v" * 16)
                assert db.ssids  # local shard hit the SSTable tier
                assert b.written == 40
                db.close()

        run1(app)

    def test_durability_fence_acks_remote(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("wbfe", small_options())
                me = ctx.world_rank
                with db.batch(durability="fence") as b:
                    for i in range(40):
                        b.put(f"f{me}:{i}".encode(), b"v" * 16)
                assert not db._pending_acks  # fence drained them
                db.barrier()
                other = (me + 1) % ctx.nranks
                for i in range(40):
                    assert db.get(f"f{other}:{i}".encode()) == b"v" * 16
                db.barrier()
                db.close()

        spmd_run(2, app, timeout=120)

    def test_max_bytes_autoflush(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("wbmb", small_options())
                with db.batch(max_bytes=256) as b:
                    for i in range(64):
                        b.put(f"a{i:02d}".encode(), b"v" * 28)
                        assert b._bytes < 256 + 32  # bounded buffer
                assert db.stats.bulk_batches > 1  # flushed mid-stream
                assert b.written == 64
                db.close()

        run1(app)

    def test_delete_parity_and_written(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("wbd", small_options())
                with db.batch() as b:
                    b.put(b"keep", b"v")
                    b.put(b"gone", b"v")
                with db.batch() as b:
                    b.delete(b"gone")
                    del b[b"never-there"]
                assert b.written == 2
                assert db.get_or_none(b"keep") == b"v"
                assert db.get_or_none(b"gone") is None
                db.close()

        run1(app)

    def test_invalid_arguments(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("wbinv", small_options())
                with pytest.raises(InvalidOptionError):
                    db.batch(durability="eventually")
                with pytest.raises(InvalidOptionError):
                    db.batch(max_bytes=0)
                db.close()

        run1(app)

    def test_bulk_shims_warn_and_work(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("wbdep", small_options())
                with pytest.warns(DeprecationWarning):
                    assert db.put_bulk([(b"a", b"1"), (b"b", b"2")]) == 2
                with pytest.warns(DeprecationWarning):
                    assert db.delete_bulk([b"a"]) == 1
                assert db.get_or_none(b"a") is None
                assert db.get(b"b") == b"2"
                db.close()

        run1(app)


class TestScanCollectStreaming:
    def test_streamed_merge_equals_sorted_union(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scs", small_options())
                me = ctx.world_rank
                mine = {}
                for i in range(60):
                    k = f"s{me}:{i:04d}".encode()
                    mine[k] = f"val{me}-{i}".encode()
                    db.put(k, mine[k])
                db.barrier(SSTABLE)
                # tiny chunk: force several broadcast rounds per rank
                got = db.scan_collect(chunk=7)
                keys = [k for k, _ in got]
                assert keys == sorted(keys)
                assert len(got) == 60 * ctx.nranks
                for k, v in mine.items():
                    assert dict(got)[k] == v
                # bounded scans agree with the full merge
                lo, hi = keys[10], keys[-10]
                window = db.scan_collect(lo, hi, chunk=7)
                assert window == [kv for kv in got if lo <= kv[0] < hi]
                db.barrier()
                db.close()

        spmd_run(4, app, timeout=120)

    def test_empty_scan(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scse", small_options())
                assert db.scan_collect() == []
                db.close()

        spmd_run(2, app, timeout=120)


class TestFlushCrashPoints:
    """Kill a rank at each pipeline stage boundary; on restart no
    acknowledged durable state may be wrong and no partial table may be
    admitted silently."""

    SITES = ["flush.freeze", "flush.build", "flush.sync", "flush.retire"]

    def test_crash_at_each_stage_recovers(self, tmp_path):
        model = {
            f"fc{i:03d}".encode(): f"fv{i:03d}".encode() * 6
            for i in range(120)
        }

        def workload(ctx):
            with Papyrus(ctx) as env:
                db = env.open("flcrash", small_options())
                for k, v in sorted(model.items()):
                    db.put(k, v)
                db.barrier(SSTABLE)
                db.close()

        # record the pipeline sites rank 1 actually visits
        recorder = FaultPlan(seed=11, record_sites=True)
        m0 = Machine(SUMMITDEV, 2, base_dir=str(tmp_path / "rec"))
        spmd_run(2, workload, machine=m0, faults=recorder, timeout=120)
        m0.close()
        seen = recorder.sites_seen
        picks = []
        for stage in self.SITES:
            match = [
                s for s in seen
                if s.startswith(stage) and ("rank1" in s)
            ]
            assert match, f"no {stage} site recorded: {seen[:10]}"
            # crash the *second* visit where one exists, so a completed
            # first flush is already durable when the crash lands
            picks.append(match[min(1, len(match) - 1)])

        def audit(ctx):
            with Papyrus(ctx) as env:
                db = env.open("flcrash", small_options())
                db.coll_comm.barrier()
                wrong = []
                if ctx.world_rank == 0:
                    for k, v in model.items():
                        got = db.get_or_none(k)
                        if got is not None and got != v:
                            wrong.append(k)
                db.barrier()
                db.close()
                return wrong

        for i, site in enumerate(picks):
            machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path / f"c{i}"))
            plan = FaultPlan(seed=11).crash(site, rank=1)
            with pytest.raises(RankFailure) as ei:
                spmd_run(2, workload, machine=machine, faults=plan,
                         timeout=120)
            kinds = {type(e).__name__ for _, e in ei.value.failures}
            assert "RankCrashError" in kinds, (site, kinds)
            assert spmd_run(2, audit, machine=machine, timeout=120)[0] == [], \
                f"wrong value after crash at {site}"
            machine.close()

    def test_no_partial_table_after_sync_crash(self, tmp_path):
        """A crash mid-sync leaves either no table or a repairable one —
        reopen must admit or rebuild, never serve a torn table."""

        def workload(ctx):
            with Papyrus(ctx) as env:
                db = env.open("torn", small_options())
                _fill(db, 150)
                db.barrier(SSTABLE)
                db.close()

        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))
        plan = FaultPlan(seed=13).crash("flush.sync", rank=0)
        with pytest.raises(RankFailure):
            spmd_run(1, workload, machine=machine, faults=plan, timeout=120)

        def reopen(ctx):
            with Papyrus(ctx) as env:
                db = env.open("torn", small_options())
                # every admitted table answers point gets coherently
                ok = 0
                for i in range(150):
                    got = db.get_or_none(f"w{i:04d}".encode())
                    if got is not None:
                        assert got == f"v{i}".encode().ljust(48, b".")
                        ok += 1
                db.close()
                return ok

        assert spmd_run(1, reopen, machine=machine, timeout=120)[0] >= 0
        machine.close()


class TestOptionsValidation:
    def test_new_options_validate(self):
        with pytest.raises(InvalidOptionError):
            Options(group_commit_interval=-1.0)
        with pytest.raises(InvalidOptionError):
            Options(group_commit_bytes=-1)
        with pytest.raises(InvalidOptionError):
            Options(compaction_partitions=-2)
        with pytest.raises(InvalidOptionError):
            Options(compaction_major_every=-1)
        with pytest.raises(InvalidOptionError):
            Options(compaction_rate_limit=0.0)
        with pytest.raises(InvalidOptionError):
            Options(compaction_rate_limit=1.5)
        # the boundary duty cycle is legal
        assert Options(compaction_rate_limit=1.0)
