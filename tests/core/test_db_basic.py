"""Database basics: put/get/delete, flushing, compaction, zero-copy reopen."""

from __future__ import annotations

import pytest

from repro import KeyNotFoundError, Options, Papyrus
from repro.errors import InvalidKeyError, InvalidOptionError
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options


def run1(fn, **kw):
    return spmd_run(1, fn, **kw)[0]


class TestSingleRank:
    def test_put_get_delete(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"v")
                assert db.get(b"k") == b"v"
                db.delete(b"k")
                with pytest.raises(KeyNotFoundError):
                    db.get(b"k")
                db.close()

        run1(app)

    def test_get_or_none(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                assert db.get_or_none(b"missing") is None
                db.put(b"k", b"v")
                assert db.get_or_none(b"k") == b"v"
                db.close()

        run1(app)

    def test_update_overwrites(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"v1")
                db.put(b"k", b"v2")
                assert db.get(b"k") == b"v2"
                db.close()

        run1(app)

    def test_reinsert_after_delete(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"v1")
                db.delete(b"k")
                db.put(b"k", b"v2")
                assert db.get(b"k") == b"v2"
                db.close()

        run1(app)

    def test_empty_key_rejected(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                with pytest.raises(InvalidKeyError):
                    db.put(b"", b"v")
                with pytest.raises(InvalidKeyError):
                    db.put("notbytes", b"v")
                db.close()

        run1(app)

    def test_large_value_spans_memtables(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                big = bytes(range(256)) * 64  # 16 KB > 4 KB memtable
                db.put(b"big", big)
                assert db.get(b"big") == big
                db.close()

        run1(app)

    def test_flush_moves_data_to_sstables(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(compaction_interval=0))
                for i in range(300):
                    db.put(f"k{i:04d}".encode(), b"v" * 32)
                assert db.stats.flushes > 0
                assert len(db.ssids) > 0
                # everything still readable (memtable, queue, or sstable)
                for i in range(300):
                    assert db.get(f"k{i:04d}".encode()) == b"v" * 32
                db.close()

        run1(app)

    def test_sstable_tier_used_after_barrier(self):
        from repro import SSTABLE

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                for i in range(100):
                    db.put(f"k{i:04d}".encode(), b"v" * 64)
                db.barrier(SSTABLE)
                # force virtual time past all background work
                res = db.get_ex(b"k0042")
                assert res.tier in ("sstable", "local_cache")
                db.close()

        run1(app)

    def test_compaction_reduces_table_count(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(compaction_interval=4))
                for i in range(600):
                    db.put(f"k{i:05d}".encode(), b"v" * 48)
                assert db.stats.compactions > 0
                # after a compaction all data must survive
                for i in range(0, 600, 31):
                    assert db.get(f"k{i:05d}".encode()) == b"v" * 48
                db.close()

        run1(app)

    def test_delete_shadows_sstable_data(self):
        from repro import SSTABLE

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(compaction_interval=0))
                db.put(b"k", b"v")
                db.barrier(SSTABLE)   # k now lives in an SSTable
                db.delete(b"k")       # tombstone in the memtable
                with pytest.raises(KeyNotFoundError):
                    db.get(b"k")
                db.barrier(SSTABLE)   # tombstone flushed too
                with pytest.raises(KeyNotFoundError):
                    db.get(b"k")
                db.close()

        run1(app)

    def test_local_cache_hit_after_sstable_read(self):
        from repro import SSTABLE

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"v" * 100)
                db.barrier(SSTABLE)
                first = db.get_ex(b"k")
                second = db.get_ex(b"k")
                assert first.tier in ("sstable", "local_cache")
                assert second.tier == "local_cache"
                db.close()

        run1(app)

    def test_cache_invalidated_by_new_put(self):
        from repro import SSTABLE

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"old" * 20)
                db.barrier(SSTABLE)
                db.get(b"k")          # primes the local cache
                db.put(b"k", b"new")  # must evict the stale entry
                assert db.get(b"k") == b"new"
                db.close()

        run1(app)


class TestZeroCopyReopen:
    def test_reopen_sees_sstable_data(self):
        """Figure 5(a): a later open composes the DB from retained SSTables."""

        def app(ctx):
            env = Papyrus(ctx)
            db = env.open("wf", small_options())
            for i in range(100):
                db.put(f"k{i:03d}".encode(), f"v{i}".encode())
            db.close()  # close flushes to SSTables
            db2 = env.open("wf", small_options())
            for i in range(100):
                assert db2.get(f"k{i:03d}".encode()) == f"v{i}".encode()
            db2.close()
            env.finalize()

        run1(app)

    def test_reopen_continues_ssids(self):
        def app(ctx):
            env = Papyrus(ctx)
            db = env.open("wf", small_options())
            for i in range(100):
                db.put(f"a{i:03d}".encode(), b"x" * 32)
            db.close()
            first_max = None
            db2 = env.open("wf", small_options())
            first_max = db2.ssids[-1]
            for i in range(100):
                db2.put(f"b{i:03d}".encode(), b"y" * 32)
            db2.close()
            db3 = env.open("wf", small_options())
            assert db3.ssids[-1] > first_max
            assert db3.get(b"a005") == b"x" * 32
            assert db3.get(b"b005") == b"y" * 32
            db3.close()
            env.finalize()

        run1(app)


class TestMultiRank:
    def test_all_ranks_read_everything(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                r = ctx.world_rank
                for i in range(100):
                    db.put(f"k-{r}-{i:03d}".encode(), f"v-{r}-{i}".encode())
                db.barrier()
                for rr in range(ctx.nranks):
                    for i in range(0, 100, 9):
                        assert (
                            db.get(f"k-{rr}-{i:03d}".encode())
                            == f"v-{rr}-{i}".encode()
                        )
                db.close()

        spmd_run(4, app)

    def test_remote_delete_visible_after_barrier(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                if ctx.world_rank == 0:
                    for i in range(50):
                        db.put(f"k{i}".encode(), b"v")
                db.barrier()
                if ctx.world_rank == 1:
                    for i in range(0, 50, 2):
                        db.delete(f"k{i}".encode())
                db.barrier()
                for i in range(50):
                    got = db.get_or_none(f"k{i}".encode())
                    assert (got is None) == (i % 2 == 0)
                db.close()

        spmd_run(3, app)

    def test_concurrent_mixed_ops(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                r = ctx.world_rank
                for round_ in range(3):
                    for i in range(60):
                        db.put(
                            f"k-{i:03d}".encode(),
                            f"r{r}round{round_}".encode(),
                        )
                    db.barrier()
                # all ranks agree on final values (someone's round-2 write)
                values = [db.get(f"k-{i:03d}".encode()) for i in range(60)]
                agreed = ctx.comm.allgather(values)
                assert all(v == agreed[0] for v in agreed)
                db.close()

        spmd_run(3, app)

    def test_open_rank_count_mismatch_rejected(self, tmp_path):
        from repro.nvm.storage import Machine
        from repro.simtime.profiles import SUMMITDEV

        machine = Machine(SUMMITDEV, 4, base_dir=str(tmp_path))

        def create(ctx):
            with Papyrus(ctx) as env:
                db = env.open("fixed", small_options())
                db.put(b"k", b"v")
                db.close()

        spmd_run(2, create, machine=machine)

        def reopen(ctx):
            with Papyrus(ctx) as env:
                with pytest.raises(InvalidOptionError):
                    env.open("fixed", small_options())

        spmd_run(3, reopen, machine=machine)


class TestMultipleDatabases:
    def test_independent_databases(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                a = env.open("dba", small_options())
                b = env.open("dbb", small_options())
                a.put(b"k", b"from-a")
                b.put(b"k", b"from-b")
                a.barrier()
                b.barrier()
                assert a.get(b"k") == b"from-a"
                assert b.get(b"k") == b"from-b"
                a.close()
                b.close()

        spmd_run(2, app)

    def test_same_name_twice_rejected(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("dup", small_options())
                with pytest.raises(InvalidOptionError):
                    env.open("dup", small_options())
                db.close()

        run1(app)
