"""The overhauled read path: fence pruning, block-cache invalidation,
cached peer readers, and the counters that make them observable.

Per-table gate order on a get: quarantine poison-range check, footer
``[min_key, max_key]`` fences, bloom filter, index search, block cache,
SSData.  These tests pin the order down where it matters most — pruning
must never mask a poisoned range, and an invalidated table must never
serve stale cached blocks.
"""

from __future__ import annotations

import pytest

from repro import Options, Papyrus
from repro.analysis import runtime as rt
from repro.config import MB, SSTABLE, options_from_env
from repro.errors import CorruptionError, KeyNotFoundError
from repro.metrics import database_metrics, format_report
from repro.mpi.launcher import spmd_run
from repro.nvm.posixfs import PosixStore
from repro.simtime.profiles import SUMMITDEV
from repro.simtime.resources import TimedResource
from repro.sstable.format import FORMAT_V1, Record
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import write_sstable
from tests.conftest import small_options


def run1(fn, **kw):
    return spmd_run(1, fn, **kw)[0]


def _opts(**kw):
    """One table per flush phase; gets always reach the SSTable path."""
    base = dict(
        memtable_capacity=1 * MB,
        cache_local_enabled=False,
        compaction_interval=0,
    )
    base.update(kw)
    return Options(**base)


def _load_phases(db, prefixes, n=30, vlen=64):
    """One flushed SSTable per prefix: fences are disjoint by design."""
    for p in prefixes:
        for i in range(n):
            db.put(f"{p}{i:03d}".encode(), p.encode() * vlen)
        db.barrier(SSTABLE)


def _flip_byte(store, rel, offset=100):
    p = store.path(rel)
    blob = bytearray(open(p, "rb").read())
    blob[offset % len(blob)] ^= 0x40
    with open(p, "wb") as f:
        f.write(bytes(blob))


class TestFencePruning:
    def test_prunes_tables_whose_fences_exclude_the_key(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "amz")
                # newest-first walk: key in the *oldest* table passes
                # through both newer tables' fences
                d0 = db.stats.fence_skips
                assert db.get(b"a015") == b"a" * 64
                assert db.stats.fence_skips - d0 == 2
                assert db.stats.bloom_skips == 0  # fences decided alone
                db.close()

        run1(app)

    def test_absent_keys_outside_every_fence(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "amz")
                for probe in (b"0below", b"q-between", b"zz-above"):
                    d0 = db.stats.fence_skips
                    assert db.get_or_none(probe) is None
                    assert db.stats.fence_skips - d0 == 3
                db.close()

        run1(app)

    def test_keys_equal_to_fences_are_not_pruned(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "amz")
                # exact min and max of the middle table
                for probe in (b"m000", b"m029"):
                    d0 = db.stats.fence_skips
                    assert db.get(probe) == b"m" * 64
                    assert db.stats.fence_skips - d0 == 1  # newer 'z' only
                db.close()

        run1(app)

    def test_absent_key_inside_fences_falls_to_bloom(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "amz")
                d0 = db.stats.fence_skips
                assert db.get_or_none(b"m0150") is None  # within [m000,m029]
                # 'z' and 'a' pruned; 'm' passed its fence to the bloom
                assert db.stats.fence_skips - d0 == 2
                db.close()

        run1(app)

    def test_disabled_pruning_keeps_bloom_behavior(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts(fence_pruning=False))
                _load_phases(db, "amz")
                assert db.get(b"a015") == b"a" * 64
                with pytest.raises(KeyNotFoundError):
                    db.get(b"q-between")
                assert db.stats.fence_skips == 0
                assert db.stats.bloom_skips > 0
                db.close()

        run1(app)

    def test_v1_tables_fall_back_to_bloom_and_skip_the_cache(self):
        """A table rewritten in v1 (no footer) keeps serving: no fence
        pruning, no block caching — and no wrong answers."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "m")
                ssid = db.ssids[0]
                recs, _ = SSTableReader(db.store, db.rank_dir, ssid).read_all(
                    db.clock.now
                )
                write_sstable(db.store, db.rank_dir, ssid, recs,
                              db.clock.now, format_version=FORMAT_V1)
                db._invalidate_readers()
                c0 = db.block_cache.counters()
                assert db.get(b"m007") == b"m" * 64
                assert db.get_or_none(b"q-absent") is None
                c1 = db.block_cache.counters()
                assert db.stats.fence_skips == 0
                assert db.stats.bloom_skips > 0
                assert (c1["hits"], c1["misses"]) == (c0["hits"], c0["misses"])
                db.close()

        run1(app)

    def test_pruning_never_masks_a_poisoned_range(self):
        """Gate order: the quarantine check runs before the fences.  A
        key in a quarantined table's poison range must raise even though
        every healthy table's fences would have pruned the walk."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "amz")
                victim = db.ssids[1]  # the 'm' table
                _flip_byte(db.store, f"{db.rank_dir}/{victim:010d}.ssd",
                           offset=500)
                report = db.verify(repair=False)
                assert victim in report["quarantined"]
                with pytest.raises(CorruptionError):
                    db.get(b"m015")
                # keys outside the poisoned range still work / still miss
                assert db.get(b"a015") == b"a" * 64
                assert db.get(b"z015") == b"z" * 64
                assert db.get_or_none(b"0below") is None
                db.close()

        run1(app)


class TestReaderFences:
    """key_range() corner cases straight at the reader."""

    @pytest.fixture()
    def store(self, tmp_path):
        return PosixStore(str(tmp_path), TimedResource("d", 0.0, 1e9))

    def test_v2_fences_match_key_extremes(self, store):
        recs = [Record(f"k{i:02d}".encode(), b"v") for i in range(10)]
        write_sstable(store, "t", 1, recs, 0.0)
        fences, _ = SSTableReader(store, "t", 1).key_range(0.0)
        assert fences == (b"k00", b"k09")

    def test_empty_v2_table_prunes_everything(self, store):
        write_sstable(store, "t", 1, [], 0.0)
        fences, _ = SSTableReader(store, "t", 1).key_range(0.0)
        assert fences == (b"", b"")  # `not max_key` prunes any valid key

    def test_v1_table_has_no_fences(self, store):
        recs = [Record(b"a", b"v"), Record(b"b", b"v")]
        write_sstable(store, "t", 1, recs, 0.0, format_version=FORMAT_V1)
        fences, _ = SSTableReader(store, "t", 1).key_range(0.0)
        assert fences is None


class TestCacheInvalidation:
    def test_compaction_drops_cached_blocks(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts(compaction_interval=2))
                _load_phases(db, "a")
                first = db.ssids[0]
                assert db.get(b"a003") == b"a" * 64  # warm the cache
                assert db.block_cache.cached_blocks(db.rank_dir, first) > 0
                _load_phases(db, "b")  # ssid 2 triggers compaction
                assert db.stats.compactions == 1
                assert db.block_cache.cached_blocks(db.rank_dir, first) == 0
                assert db.block_cache.counters()["invalidations"] > 0
                # reads come back right through the merged table
                assert db.get(b"a003") == b"a" * 64
                assert db.get(b"b003") == b"b" * 64
                db.close()

        run1(app)

    def test_quarantine_drops_cached_blocks(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "am")
                victim = db.ssids[0]
                assert db.get(b"a003") == b"a" * 64
                assert db.block_cache.cached_blocks(db.rank_dir, victim) > 0
                _flip_byte(db.store, f"{db.rank_dir}/{victim:010d}.ssd",
                           offset=500)
                report = db.verify(repair=False)
                assert victim in report["quarantined"]
                assert db.block_cache.cached_blocks(db.rank_dir, victim) == 0
                assert db.get(b"m003") == b"m" * 64
                db.close()

        run1(app)

    def test_checkpoint_restore_never_serves_stale_blocks(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "a")
                db.checkpoint("cp").wait(ctx.clock)
                victim = db.ssids[0]
                assert db.get(b"a003") == b"a" * 64  # warm the cache
                _flip_byte(db.store, f"{db.rank_dir}/{victim:010d}.ssd",
                           offset=500)
                report = db.verify()  # ladder ends at the checkpoint rung
                assert victim in report["rebuilt"]
                assert db.get(b"a003") == b"a" * 64
                assert db.get(b"a029") == b"a" * 64
                db.close()

        run1(app)

    def test_disabled_cache_still_serves(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts(block_cache_enabled=False))
                _load_phases(db, "am")
                assert db.block_cache is None
                assert db.get(b"a003") == b"a" * 64
                assert db.get_or_none(b"q-absent") is None
                db.close()

        run1(app)


class TestPeerReaderCache:
    def test_peer_readers_are_cached_and_hit_the_block_cache(self):
        """Storage-group gets reuse one reader per (directory, ssid) and
        read SSData through the shared block cache."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(cache_local_enabled=False))
                for i in range(60):
                    db.put(f"k-{ctx.world_rank}-{i:03d}".encode(), b"V" * 64)
                db.barrier(SSTABLE)
                other = 1 - ctx.world_rank
                peer_keys = [
                    f"k-{other}-{i:03d}".encode() for i in range(0, 60, 7)
                    if db.owner_of(f"k-{other}-{i:03d}".encode()) == other
                ]
                tiers = {db.get_ex(k).tier for k in peer_keys}
                readers1 = dict(db._peer_reader_cache)
                hits0 = db.block_cache.counters()["hits"]
                for k in peer_keys:
                    assert db.get(k) == b"V" * 64
                readers2 = dict(db._peer_reader_cache)
                hits1 = db.block_cache.counters()["hits"]
                db.close()
                return {
                    "tiers": tiers,
                    "cached": len(readers1),
                    "reused": all(
                        readers2.get(k) is rd for k, rd in readers1.items()
                    ),
                    "hit_delta": hits1 - hits0,
                }

        res = spmd_run(2, app, system=SUMMITDEV)
        assert any("shared_sstable" in r["tiers"] for r in res)
        winner = next(r for r in res if "shared_sstable" in r["tiers"])
        assert winner["cached"] > 0
        assert winner["reused"]
        assert winner["hit_delta"] > 0


class TestCountersSurface:
    def test_metrics_expose_read_path_counters(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts())
                _load_phases(db, "am")
                db.get(b"a003")
                db.get(b"a003")
                m = database_metrics(db)
                report = format_report(m)
                db.close()
                return m, report

        m, report = run1(app)
        assert m["fence_skips"] > 0
        assert "bloom_skips" in m
        assert m["block_cache"]["hits"] > 0
        assert m["block_cache"]["bytes"] <= m["block_cache"]["capacity_bytes"]
        assert "block cache:" in report and "read path:" in report

    def test_metrics_omit_block_cache_when_disabled(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", _opts(block_cache_enabled=False))
                db.put(b"k", b"v")
                m = database_metrics(db)
                report = format_report(m)
                db.close()
                return m, report

        m, report = run1(app)
        assert "block_cache" not in m
        assert "block cache:" not in report

    def test_env_knobs(self):
        opt = options_from_env({"PAPYRUSKV_BLOCK_CACHE": "0"})
        assert not opt.block_cache_enabled
        opt = options_from_env({"PAPYRUSKV_BLOCK_CACHE": "65536"})
        assert opt.block_cache_enabled
        assert opt.block_cache_capacity == 65536
        opt = options_from_env({"PAPYRUSKV_FENCE_PRUNING": "0"})
        assert not opt.fence_pruning


class TestRaceCleanliness:
    def test_cached_read_path_is_race_clean(self):
        """Main thread + handler both read through the block cache; the
        dynamic detector must see zero findings on a mixed workload."""
        prev = rt.get_detector()
        det = rt.enable(reset=True)
        try:

            def app(ctx):
                with Papyrus(ctx) as env:
                    db = env.open("d", small_options(
                        cache_local_enabled=False, race_detect=True,
                    ))
                    for i in range(80):
                        db.put(f"rk{ctx.world_rank}{i:03d}".encode(), b"x" * 32)
                    db.barrier(SSTABLE)
                    for i in range(0, 80, 3):
                        for r in range(ctx.nranks):
                            db.get_or_none(f"rk{r}{i:03d}".encode())
                    db.close()

            spmd_run(2, app, system=SUMMITDEV)
            assert det.findings() == [], det.findings()
        finally:
            rt.restore(prev)
