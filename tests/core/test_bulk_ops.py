"""Bulk-operation pipeline: put_bulk/get_bulk/delete_bulk semantics.

Covers the batched API's contract against the per-key loop it replaces:
empty batches, duplicate keys (last-write-wins), mixed local/remote
owners, deletes interleaved with puts, both consistency modes,
protection rejection, per-owner message coalescing, and randomized
cross-rank equivalence.
"""

from __future__ import annotations

import random

import pytest

from repro import Options, Papyrus, SSTABLE
from repro.config import RDONLY, RELAXED, SEQUENTIAL
from repro.errors import InvalidKeyError, ProtectionError
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options


def run1(fn, **kw):
    return spmd_run(1, fn, **kw)[0]


def _kv(tag: str, i: int, vlen: int = 24) -> tuple:
    return f"{tag}{i:04d}".encode(), f"v{tag}{i}".encode().ljust(vlen, b".")


class TestEmptyAndValidation:
    def test_empty_batches_are_noops(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                assert db.put_bulk([]) == 0
                assert db.put_bulk({}) == 0
                assert db.delete_bulk([]) == 0
                assert db.get_bulk([]) == []
                assert db.stats.puts == 0
                assert db.stats.gets == 0
                assert db.stats.bulk_batches == 0
                db.close()

        run1(app)

    def test_invalid_key_rejects_whole_batch(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                with pytest.raises(InvalidKeyError):
                    db.put_bulk([(b"ok", b"v"), (b"", b"v")])
                # validation happens before any insert lands
                assert db.get_or_none(b"ok") is None
                with pytest.raises(InvalidKeyError):
                    db.get_bulk([b"ok", "notbytes"])
                db.close()

        run1(app)

    def test_rdonly_rejects_bulk_writes(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"v")
                db.protect(RDONLY)
                with pytest.raises(ProtectionError):
                    db.put_bulk([(b"a", b"1")])
                with pytest.raises(ProtectionError):
                    db.delete_bulk([b"k"])
                assert db.get_bulk([b"k"]) == [b"v"]  # reads still fine
                db.close()

        run1(app)


class TestBatchSemantics:
    def test_duplicate_keys_last_write_wins(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                assert db.put_bulk(
                    [(b"k", b"first"), (b"x", b"xv"), (b"k", b"last")]
                ) == 2
                assert db.get(b"k") == b"last"
                assert db.get(b"x") == b"xv"
                db.close()

        run1(app)

    def test_get_bulk_caller_order_with_duplicates(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put_bulk([(b"a", b"1"), (b"b", b"2")])
                got = db.get_bulk([b"b", b"missing", b"a", b"b"])
                assert got == [b"2", None, b"1", b"2"]
                db.close()

        run1(app)

    def test_deletes_interleaved_with_puts(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put_bulk([(b"keep", b"old"), (b"gone", b"old")])
                with db.batch() as b:
                    b.put(b"gone", b"temp")
                    b.delete(b"gone")       # delete after put: key dies
                    b.delete(b"keep")
                    b[b"keep"] = b"revived"  # put after delete: key lives
                    b.delete(b"never-there")
                assert db.get_or_none(b"gone") is None
                assert db.get(b"keep") == b"revived"
                db.close()

        run1(app)

    def test_bulk_matches_per_key_loop_single_rank(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                a = env.open("perkey", small_options())
                b = env.open("bulk", small_options())
                pairs = [_kv("k", i) for i in range(150)]
                for k, v in pairs:
                    a.put(k, v)
                b.put_bulk(pairs)
                dels = [k for k, _ in pairs[::7]]
                for k in dels:
                    a.delete(k)
                b.delete_bulk(dels)
                keys = [k for k, _ in pairs]
                expect = [a.get_or_none(k) for k in keys]
                assert b.get_bulk(keys) == expect
                a.close()
                b.close()

        run1(app)


class TestMixedOwners:
    def test_mixed_local_remote_partition(self):
        """One batch spanning every rank's shard lands correctly."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                me = ctx.world_rank
                pairs = [_kv(f"r{me}-", i) for i in range(120)]
                owners = {db.owner_of(k) for k, _ in pairs}
                assert len(owners) > 1  # genuinely mixed
                db.put_bulk(pairs)
                # my own shard's share is visible immediately
                for k, v in pairs:
                    if db.owner_of(k) == me:
                        assert db.get(k) == v
                db.barrier()
                # after the barrier every rank reads everything
                for rr in range(ctx.nranks):
                    keys = [_kv(f"r{rr}-", i)[0] for i in range(0, 120, 13)]
                    vals = [_kv(f"r{rr}-", i)[1] for i in range(0, 120, 13)]
                    assert db.get_bulk(keys) == vals
                db.close()

        spmd_run(4, app)

    def test_sequential_one_round_per_owner(self):
        """Sequential mode: per-owner batch messages, not per-key."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "d", small_options(consistency=SEQUENTIAL,
                                       memtable_capacity=1 << 20)
                )
                if ctx.world_rank == 0:
                    pairs = [_kv("s", i) for i in range(100)]
                    remote_owners = {
                        db.owner_of(k) for k, _ in pairs
                    } - {0}
                    db.put_bulk(pairs)
                    # one PutSyncBatchMsg per distinct remote owner
                    assert db.stats.bulk_owner_msgs == len(remote_owners)
                    # and the data is already visible everywhere
                    assert db.get_bulk([k for k, _ in pairs]) == [
                        v for _, v in pairs
                    ]
                db.barrier()
                db.close()

        spmd_run(4, app)

    def test_relaxed_migration_one_chunk_per_owner(self):
        """Relaxed mode: a bulk batch migrates as one chunk per owner."""

        def app(ctx):
            with Papyrus(ctx) as env:
                # remote MemTable large enough to hold the whole batch:
                # the fence then migrates it in a single sweep
                db = env.open(
                    "d", small_options(consistency=RELAXED,
                                       remote_memtable_capacity=1 << 20)
                )
                if ctx.world_rank == 0:
                    pairs = [_kv("m", i) for i in range(100)]
                    remote_owners = {
                        db.owner_of(k) for k, _ in pairs
                    } - {0}
                    db.put_bulk(pairs)
                    assert db.stats.migrations == 0  # staged, not sent
                    db.fence()
                    assert db.stats.migrations == len(remote_owners)
                db.barrier()
                db.close()

        spmd_run(4, app)

    def test_get_bulk_one_mget_per_owner(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                me = ctx.world_rank
                pairs = [_kv(f"g{me}-", i) for i in range(80)]
                db.put_bulk(pairs)
                db.barrier()
                if me == 0:
                    keys = [_kv("g2-", i)[0] for i in range(80)]
                    remote_owners = {db.owner_of(k) for k in keys} - {0}
                    before = db.stats.bulk_owner_msgs
                    db.get_bulk(keys)
                    assert (
                        db.stats.bulk_owner_msgs - before
                        == len(remote_owners)
                    )
                db.barrier()
                db.close()

        spmd_run(4, app)

    def test_get_bulk_reads_shared_sstables(self):
        """NOT_IN_MEMORY multi-get keys resolve from shared NVM (§2.7)."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                me = ctx.world_rank
                pairs = [_kv(f"s{me}-", i, vlen=64) for i in range(60)]
                db.put_bulk(pairs)
                db.barrier(SSTABLE)  # everything flushed out of memory
                other = (me + 1) % ctx.nranks
                keys = [_kv(f"s{other}-", i, vlen=64)[0]
                        for i in range(60)]
                vals = [_kv(f"s{other}-", i, vlen=64)[1]
                        for i in range(60)]
                assert db.get_bulk(keys) == vals
                db.barrier()
                tiers = set(db.stats.get_tiers)
                db.close()
                return tiers

        res = spmd_run(4, app)
        assert any("shared_sstable" in t for t in res)


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("mode", [RELAXED, SEQUENTIAL],
                             ids=["relaxed", "sequential"])
    def test_bulk_equals_per_key_cross_rank(self, mode):
        """Acceptance: bulk and per-key paths agree on a randomized
        cross-rank workload under both consistency modes."""

        def app(ctx):
            with Papyrus(ctx) as env:
                per = env.open("perkey", small_options(consistency=mode))
                blk = env.open("bulk", small_options(consistency=mode))
                rng = random.Random(1234 + ctx.world_rank)
                ops = []
                for i in range(120):
                    key = f"k{rng.randrange(60):03d}".encode()
                    if rng.random() < 0.25:
                        ops.append((key, b"", True))
                    else:
                        val = f"r{ctx.world_rank}i{i}".encode()
                        ops.append((key, val, False))
                for k, v, tomb in ops:
                    if tomb:
                        per.delete(k)
                    else:
                        per.put(k, v)
                with blk.batch() as b:
                    for k, v, tomb in ops:
                        if tomb:
                            b.delete(k)
                        else:
                            b.put(k, v)
                per.barrier()
                blk.barrier()
                keys = [f"k{i:03d}".encode() for i in range(60)]
                got_per = [per.get_or_none(k) for k in keys]
                got_blk = blk.get_bulk(keys)
                # each database agrees with itself across ranks...
                per_all = ctx.comm.allgather(got_per)
                blk_all = ctx.comm.allgather(got_blk)
                assert all(x == per_all[0] for x in per_all)
                assert all(x == blk_all[0] for x in blk_all)
                per.close()
                blk.close()

        spmd_run(4, app)

    def test_bulk_equals_per_key_same_op_stream(self):
        """With a single writer the two paths agree key-for-key."""

        def app(ctx):
            with Papyrus(ctx) as env:
                per = env.open("perkey", small_options())
                blk = env.open("bulk", small_options())
                rng = random.Random(99)
                if ctx.world_rank == 0:
                    ops = []
                    for i in range(200):
                        key = f"q{rng.randrange(80):03d}".encode()
                        if rng.random() < 0.3:
                            ops.append((key, None))
                        else:
                            ops.append((key, f"v{i}".encode()))
                    for k, v in ops:
                        if v is None:
                            per.delete(k)
                        else:
                            per.put(k, v)
                    with blk.batch() as b:
                        for k, v in ops:
                            if v is None:
                                b.delete(k)
                            else:
                                b[k] = v
                per.barrier()
                blk.barrier()
                keys = [f"q{i:03d}".encode() for i in range(80)]
                assert blk.get_bulk(keys) == [
                    per.get_or_none(k) for k in keys
                ]
                per.close()
                blk.close()

        spmd_run(4, app)


class TestBulkVeneer:
    def test_c_style_bulk_functions(self):
        from repro.core import api
        from repro.errors import ErrorCode

        def app(ctx):
            assert api.papyruskv_init(ctx=ctx) == 0
            code, db = api.papyruskv_open("d", opt=small_options())
            assert code == 0
            assert api.papyruskv_put_bulk(
                db, [(b"a", b"1"), (b"b", b"2")]
            ) == 0
            code, values = api.papyruskv_get_bulk(db, [b"a", b"nope", b"b"])
            assert code == 0
            assert values == [b"1", None, b"2"]
            assert api.papyruskv_delete_bulk(db, [b"a"]) == 0
            code, values = api.papyruskv_get_bulk(db, [b"a"])
            assert code == 0 and values == [None]
            # protection errors surface as codes, not exceptions
            db.protect(RDONLY)
            assert api.papyruskv_put_bulk(db, [(b"x", b"y")]) == int(
                ErrorCode.PROTECTED
            )
            assert api.papyruskv_close(db) == 0
            assert api.papyruskv_finalize() == 0

        run1(app)
