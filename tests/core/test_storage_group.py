"""Storage groups (§2.7): shared-SSTable reads, group sizing, fallbacks."""

from __future__ import annotations

import pytest

from repro import Options, Papyrus, SSTABLE
from repro.mpi.launcher import spmd_run
from repro.simtime.profiles import CORI, SUMMITDEV
from tests.conftest import small_options


def _fill_and_flush(db, rank, n=80, vlen=64):
    for i in range(n):
        db.put(f"k-{rank}-{i:03d}".encode(), bytes([65 + rank % 26]) * vlen)
    db.barrier(SSTABLE)


class TestSharedReads:
    def test_same_group_reads_shared_sstables(self):
        """Ranks on one node fetch peers' flushed data without value
        transfer over the network."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                _fill_and_flush(db, ctx.world_rank)
                tiers = set()
                for rr in range(ctx.nranks):
                    if rr == ctx.world_rank:
                        continue
                    for i in range(0, 80, 11):
                        key = f"k-{rr}-{i:03d}".encode()
                        owner = db.owner_of(key)
                        if owner == ctx.world_rank:
                            continue
                        res = db.get_ex(key)
                        assert res.value == bytes([65 + rr % 26]) * 64
                        tiers.add(res.tier)
                db.close()
                return tiers

        res = spmd_run(4, app, system=SUMMITDEV)
        assert any("shared_sstable" in t for t in res)

    def test_group_size_one_disables_sharing(self):
        """PAPYRUSKV_GROUP_SIZE=1 (Figure 8 'Default'): values always
        travel over the network."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(group_size=1))
                _fill_and_flush(db, ctx.world_rank)
                tiers = set()
                for rr in range(ctx.nranks):
                    for i in range(0, 80, 11):
                        key = f"k-{rr}-{i:03d}".encode()
                        if db.owner_of(key) != ctx.world_rank:
                            tiers.add(db.get_ex(key).tier)
                db.close()
                return tiers

        res = spmd_run(4, app, system=SUMMITDEV)
        for tiers in res:
            assert "shared_sstable" not in tiers

    def test_cross_node_never_shares_on_local_arch(self):
        """Ranks on different Summitdev nodes cannot read each other's
        NVMe even inside an (over-wide) requested group."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(group_size=40))
                _fill_and_flush(db, ctx.world_rank, n=30)
                tiers = set()
                me = ctx.world_rank
                other_node_rank = (me + 20) % 40
                for i in range(30):
                    key = f"k-{other_node_rank}-{i:03d}".encode()
                    owner = db.owner_of(key)
                    if owner != me and ctx.system.node_of_rank(owner) != ctx.node:
                        tiers.add(db.get_ex(key).tier)
                db.close()
                return tiers

        # 40 ranks = 2 Summitdev nodes
        res = spmd_run(40, app, system=SUMMITDEV, timeout=240)
        for tiers in res:
            assert "shared_sstable" not in tiers

    def test_dedicated_arch_shares_machine_wide(self):
        """On Cori every rank shares the burst buffer (one storage group)."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                _fill_and_flush(db, ctx.world_rank, n=40)
                shared = 0
                for rr in range(ctx.nranks):
                    for i in range(0, 40, 7):
                        key = f"k-{rr}-{i:03d}".encode()
                        if db.owner_of(key) != ctx.world_rank:
                            if db.get_ex(key).tier == "shared_sstable":
                                shared += 1
                db.close()
                return shared

        res = spmd_run(4, app, system=CORI)
        assert sum(res) > 0

    def test_shared_read_correct_after_owner_compaction(self):
        """Group peers retry through compaction races and still get data."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(compaction_interval=2))
                r = ctx.world_rank
                for round_ in range(4):
                    for i in range(60):
                        db.put(f"k-{r}-{i:02d}".encode(),
                               f"round{round_}".encode() * 8)
                    db.barrier(SSTABLE)
                    for rr in range(ctx.nranks):
                        for i in range(0, 60, 13):
                            v = db.get(f"k-{rr}-{i:02d}".encode())
                            assert v == f"round{round_}".encode() * 8
                    # nobody may start the next round's puts while a peer
                    # is still reading this round's values
                    db.barrier()
                db.close()

        spmd_run(3, app, system=SUMMITDEV, timeout=240)


class TestGroupMetadata:
    def test_group_assignment(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(group_size=2))
                g = db.group
                db.close()
                return g

        assert spmd_run(4, app) == [0, 0, 1, 1]

    def test_shares_storage_with(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(group_size=2))
                out = [db.shares_storage_with(r) for r in range(4)]
                db.close()
                return out

        res = spmd_run(4, app, system=SUMMITDEV)
        assert res[0] == [True, True, False, False]
        assert res[3] == [False, False, True, True]

    def test_lustre_repository_shared_by_all(self):
        def app(ctx):
            with Papyrus(ctx, repository="lustre") as env:
                db = env.open("d", small_options())
                assert all(
                    db.shares_storage_with(r) for r in range(ctx.nranks)
                )
                db.close()

        spmd_run(4, app, system=SUMMITDEV)
