"""MemTable tests: replacement, tombstones, freezing, owner grouping."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.memtable import Entry, MemTable


class TestPutGet:
    def test_put_get(self):
        mt = MemTable(1024)
        mt.put(b"k", b"v")
        e = mt.get(b"k")
        assert e == Entry(b"v", False, -1)
        assert b"k" in mt
        assert len(mt) == 1

    def test_replace_updates_size(self):
        mt = MemTable(1024)
        mt.put(b"k", b"vvvv")
        assert mt.size_bytes == 5
        mt.put(b"k", b"v")
        assert mt.size_bytes == 2
        assert len(mt) == 1

    def test_tombstone_put(self):
        mt = MemTable(1024)
        mt.put(b"k", b"ignored-value", tombstone=True)
        e = mt.get(b"k")
        assert e.tombstone
        assert e.value == b""  # tombstones carry no value

    def test_missing_key(self):
        mt = MemTable(1024)
        assert mt.get(b"missing") is None

    def test_owner_recorded(self):
        mt = MemTable(1024, kind="remote")
        mt.put(b"k", b"v", owner=3)
        assert mt.get(b"k").owner == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            MemTable(0)


class TestCapacityAndFreeze:
    def test_full_flag(self):
        mt = MemTable(10)
        assert not mt.full
        mt.put(b"abc", b"0123456")  # 10 bytes
        assert mt.full

    def test_freeze_blocks_writes(self):
        mt = MemTable(100)
        mt.put(b"k", b"v")
        mt.freeze()
        assert mt.frozen
        with pytest.raises(RuntimeError):
            mt.put(b"x", b"y")
        with pytest.raises(RuntimeError):
            mt.delete_entry(b"k")

    def test_frozen_still_readable(self):
        mt = MemTable(100)
        mt.put(b"k", b"v")
        mt.freeze()
        assert mt.get(b"k").value == b"v"

    def test_delete_entry(self):
        mt = MemTable(100)
        mt.put(b"k", b"vvv")
        assert mt.delete_entry(b"k") is True
        assert mt.delete_entry(b"k") is False
        assert mt.size_bytes == 0


class TestExport:
    def test_to_records_sorted(self):
        mt = MemTable(1024)
        for k in (b"m", b"a", b"z"):
            mt.put(k, k.upper())
        recs = mt.to_records()
        assert [r.key for r in recs] == [b"a", b"m", b"z"]
        assert recs[0].value == b"A"

    def test_to_records_includes_tombstones(self):
        mt = MemTable(1024)
        mt.put(b"dead", b"", tombstone=True)
        recs = mt.to_records()
        assert recs[0].tombstone

    def test_by_owner_grouping(self):
        mt = MemTable(1024, kind="remote")
        mt.put(b"a", b"1", owner=2)
        mt.put(b"b", b"2", owner=1)
        mt.put(b"c", b"3", owner=2)
        groups = mt.by_owner()
        assert set(groups) == {1, 2}
        assert [k for k, _, _ in groups[2]] == [b"a", b"c"]

    def test_items_sorted(self):
        mt = MemTable(1024)
        for i in (5, 1, 3):
            mt.put(str(i).encode(), b"")
        assert [k for k, _ in mt.items()] == [b"1", b"3", b"5"]


@settings(max_examples=100, deadline=None)
@given(st.lists(st.tuples(
    st.binary(min_size=1, max_size=8),
    st.binary(max_size=24),
    st.booleans(),
)))
def test_memtable_matches_dict_model(ops):
    """put/tombstone sequences track a reference dict exactly."""
    mt = MemTable(1 << 30)
    model: dict = {}
    for key, value, tomb in ops:
        mt.put(key, value, tombstone=tomb)
        model[key] = (b"" if tomb else value, tomb)
    assert len(mt) == len(model)
    for key, (value, tomb) in model.items():
        e = mt.get(key)
        assert e.value == value and e.tombstone == tomb
    expected_bytes = sum(len(k) + len(v) for k, (v, _) in model.items())
    assert mt.size_bytes == expected_bytes
