"""Edge-path tests: fallback protocols, empty databases, dispatcher sends."""

from __future__ import annotations

import pytest

from repro import Papyrus, SSTABLE, spmd_run
from repro.core import messages as msg
from tests.conftest import small_options


class TestForceDataFallback:
    def test_forced_get_returns_value_within_group(self):
        """The force_data escape hatch must ship bytes even when the
        requester shares the owner's storage group."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("force", small_options())
                key = next(
                    f"k{i}".encode() for i in range(300)
                    if db.owner_of(f"k{i}".encode()) == 1
                )
                if ctx.world_rank == 1:
                    db.put(key, b"direct-value" * 8)
                db.barrier(SSTABLE)
                if ctx.world_rank == 0:
                    reply = db._request_get(1, key, force=True)
                    assert reply.status == msg.FOUND
                    assert reply.value == b"direct-value" * 8
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_not_in_memory_reply_carries_metadata(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("meta", small_options())
                key = next(
                    f"k{i}".encode() for i in range(300)
                    if db.owner_of(f"k{i}".encode()) == 1
                )
                if ctx.world_rank == 1:
                    db.put(key, b"x" * 64)
                db.barrier(SSTABLE)
                if ctx.world_rank == 0:
                    reply = db._request_get(1, key, force=False)
                    assert reply.status == msg.NOT_IN_MEMORY
                    assert reply.owner_dir == "db_meta/rank1"
                    assert reply.newest_ssid >= 1
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestEmptyDatabase:
    def test_checkpoint_empty_db(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("empty", small_options())
                ev = db.checkpoint("empty-snap")
                ev.wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)
                db2, rev = env.restart("empty-snap", "empty",
                                       small_options())
                rev.wait(ctx.clock)
                db2.coll_comm.barrier()
                assert db2.get_or_none(b"anything") is None
                assert db2.scan_local() == []
                db2.close()

        spmd_run(2, app, timeout=120)

    def test_barrier_on_empty_db(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("empty", small_options())
                db.barrier(SSTABLE)  # nothing to flush: must not wedge
                db.fence()
                assert db.ssids == []
                db.close()

        spmd_run(3, app)

    def test_scan_empty_ranges(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("empty", small_options())
                db.put(b"m", b"v")
                db.barrier()
                assert db.scan_collect(b"x", b"z") == []
                assert db.scan_collect(end=b"a") == []
                db.close()

        spmd_run(2, app)


class TestDispatcherSendAt:
    def test_send_at_arrival_reflects_explicit_time(self):
        def app(ctx):
            if ctx.world_rank == 0:
                arrival = ctx.comm.send_at(b"x" * 100, 1, tag=5,
                                           t_send=2.0)
                assert arrival > 2.0
                # the sender's own clock is untouched
                assert ctx.clock.now < 2.0
            else:
                status = {}
                ctx.comm.recv(source=0, tag=5, status=status)
                assert ctx.clock.now >= 2.0  # waited for the arrival

        spmd_run(2, app)


class TestLoadBalance:
    def test_builtin_hash_balances_shards(self):
        """§2.4 load balancing: the built-in hash spreads uniform keys
        evenly enough that no shard exceeds 2x the mean."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("bal", small_options())
                for i in range(250):
                    db.put(f"uniform-key-{i:05d}".encode(), b"v")
                db.barrier(SSTABLE)
                count = db.count_local()
                counts = ctx.comm.allgather(count)
                db.close()
                return counts

        counts = spmd_run(4, app, timeout=120)[0]
        total = sum(counts)
        assert total == 250
        mean = total / len(counts)
        assert max(counts) < 2 * mean

    def test_custom_hash_redirects_ownership(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "custom",
                    small_options(hash_fn=lambda k: k[0]),
                )
                # first byte dictates the owner
                assert db.owner_of(b"\x00rest") == 0
                assert db.owner_of(b"\x03rest") == 3 % ctx.nranks
                db.put(b"\x01abc", b"v")
                db.barrier()
                assert db.get(b"\x01abc") == b"v"
                db.close()

        spmd_run(2, app)
