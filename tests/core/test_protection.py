"""Protection attributes: RDWR/WRONLY/RDONLY and cache gating (§3.2)."""

from __future__ import annotations

import pytest

from repro import Options, Papyrus, ProtectionError, RDONLY, RDWR, WRONLY
from repro.errors import InvalidProtectionError
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options


class TestWriteOnly:
    def test_get_rejected(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.protect(WRONLY)
                db.put(b"k", b"v")  # puts fine
                with pytest.raises(ProtectionError):
                    db.get(b"k")
                db.protect(RDWR)
                db.close()

        spmd_run(2, app)

    def test_local_cache_cleared_on_wronly(self):
        from repro import SSTABLE

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.put(b"k", b"v" * 50)
                db.barrier(SSTABLE)
                db.get(b"k")  # prime local cache
                assert len(db.local_cache) > 0
                db.protect(WRONLY)
                assert len(db.local_cache) == 0
                db.protect(RDWR)
                db.close()

        spmd_run(1, app)


class TestReadOnly:
    def test_put_rejected(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                db.protect(RDONLY)
                with pytest.raises(ProtectionError):
                    db.put(b"k", b"v")
                with pytest.raises(ProtectionError):
                    db.delete(b"k")
                db.protect(RDWR)
                db.close()

        spmd_run(2, app)

    def test_remote_cache_only_active_under_rdonly(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                other = (ctx.world_rank + 1) % ctx.nranks
                keys = [
                    f"k{i}".encode() for i in range(500)
                    if db.owner_of(f"k{i}".encode()) == ctx.world_rank
                ][:20]
                for k in keys:
                    db.put(k, b"v" * 20)
                db.barrier()
                remote_keys = ctx.comm.allgather(keys)[other]
                # without protection: repeat gets never hit the remote cache
                for k in remote_keys:
                    db.get(k)
                    db.get(k)
                assert db.remote_cache.hits == 0
                db.protect(RDONLY)
                for k in remote_keys:
                    db.get(k)
                for k in remote_keys:
                    r = db.get_ex(k)
                    assert r.tier == "remote_cache"
                db.protect(RDWR)
                db.close()

        spmd_run(2, app)

    def test_remote_cache_evicted_when_writable_again(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                if ctx.world_rank == 0:
                    key = next(
                        f"k{i}".encode() for i in range(500)
                        if db.owner_of(f"k{i}".encode()) == 1
                    )
                else:
                    key = None
                key = ctx.comm.bcast(key, root=0)
                db.put(key, b"v") if ctx.world_rank == 1 else None
                db.barrier()
                db.protect(RDONLY)
                if ctx.world_rank == 0:
                    db.get(key)
                    assert len(db.remote_cache) > 0
                db.protect(RDWR)
                assert len(db.remote_cache) == 0
                db.close()

        spmd_run(2, app)


class TestValidation:
    def test_invalid_protection_rejected(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                with pytest.raises(InvalidProtectionError):
                    db.protect(42)
                db.close()

        spmd_run(1, app)

    def test_options_protection_validated(self):
        with pytest.raises(InvalidProtectionError):
            Options(protection=42)

    def test_open_with_initial_protection(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(protection=RDONLY))
                with pytest.raises(ProtectionError):
                    db.put(b"k", b"v")
                db.protect(RDWR)
                db.put(b"k", b"v")
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_cache_disabled_entirely(self):
        from repro import SSTABLE

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "d", small_options(cache_local_enabled=False)
                )
                assert db.local_cache is None
                db.put(b"k", b"v" * 50)
                db.barrier(SSTABLE)
                res = db.get_ex(b"k")
                assert res.tier == "sstable"
                res2 = db.get_ex(b"k")
                assert res2.tier == "sstable"  # never cached
                db.close()

        spmd_run(1, app)
