"""Property-based model checking of the distributed store.

A random operation sequence is executed against PapyrusKV on several
ranks and against a plain dict; at every synchronization point all
ranks must observe exactly the dict's contents.  Covers the interaction
of memtables, flushing, migration, compaction, tombstones and SSTables
in one invariant: *barrier => globally agreed key-value map*.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Papyrus, SEQUENTIAL
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options

# op = (rank that issues it, kind, key id, value id)
_ops = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2),
        st.sampled_from(["put", "del"]),
        st.integers(min_value=0, max_value=25),
        st.integers(min_value=0, max_value=7),
    ),
    max_size=60,
)


def _key(i: int) -> bytes:
    return f"key-{i:02d}".encode()


def _value(i: int) -> bytes:
    return f"value-{i}".encode() * (i + 1)


def _run_model(ops, consistency=None, barrier_every=17):
    """Execute ops on 3 ranks; verify against the dict model at each sync."""
    model: dict = {}
    phases = []  # list of (ops_chunk, model_snapshot)
    chunk = []
    for op in ops:
        chunk.append(op)
        _, kind, ki, vi = op
        if kind == "put":
            model[_key(ki)] = _value(vi)
        else:
            model.pop(_key(ki), None)
        if len(chunk) >= barrier_every:
            phases.append((chunk, dict(model)))
            chunk = []
    phases.append((chunk, dict(model)))

    def app(ctx):
        opts = small_options()
        if consistency is not None:
            opts = opts.with_(consistency=consistency)
        with Papyrus(ctx) as env:
            db = env.open("model", opts)
            for chunk, snapshot in phases:
                for issuer, kind, ki, vi in chunk:
                    if issuer % ctx.nranks != ctx.world_rank:
                        continue
                    if kind == "put":
                        db.put(_key(ki), _value(vi))
                    else:
                        db.delete(_key(ki))
                db.barrier()
                for i in range(26):
                    got = db.get_or_none(_key(i))
                    want = snapshot.get(_key(i))
                    assert got == want, (
                        f"rank {ctx.world_rank} key {i}: {got!r} != {want!r}"
                    )
                # hold writers of the next chunk until all reads finish
                db.barrier()
            db.close()

    spmd_run(3, app, timeout=120)


@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_ops)
def test_relaxed_mode_agrees_with_dict_at_barriers(ops):
    # different ranks writing the same key between barriers race by
    # design under relaxed consistency; restrict each key to one writer
    filtered = [
        (ki % 3, kind, ki, vi) for (_, kind, ki, vi) in ops
    ]
    _run_model(filtered)


@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(_ops)
def test_sequential_mode_agrees_with_dict_at_barriers(ops):
    filtered = [
        (ki % 3, kind, ki, vi) for (_, kind, ki, vi) in ops
    ]
    _run_model(filtered, consistency=SEQUENTIAL)


def test_single_writer_many_phases():
    """Deterministic long-run variant (regression anchor)."""
    ops = []
    for i in range(120):
        ops.append((0, "put" if i % 3 else "del", i % 20, i % 8))
    _run_model(ops, barrier_every=11)
