"""Replication, write quorum, and rank-failure recovery.

The acceptance contract: with ``replicas=3, write_quorum=2`` on four
ranks, killing any single rank mid-run loses **zero acknowledged
writes**, gets keep succeeding while the group recovers, and automatic
re-replication returns every key to full replication factor.  The kill
schedule is seeded (CI's fault matrix re-runs this module under
``PKV_FAULT_SEED`` 7/23/1009) so the runs are deterministic.

Survivor shutdown: after a kill the collective ``close()`` would hang
on the dead rank, so survivors stop their own handler with a self-sent
``StopMsg`` and mark themselves closed — the documented pattern for
post-failure teardown.
"""

from __future__ import annotations

import os
import threading

import pytest

from repro import Papyrus
from repro.config import Options
from repro.core import messages as msg
from repro.errors import InvalidOptionError, QuorumLostError
from repro.faults import FaultPlan
from repro.mpi.launcher import spmd_run
from tests.conftest import run4, small_options

#: CI's fault matrix re-runs this module under several seeds
FAULT_SEED = int(os.environ.get("PKV_FAULT_SEED", "7"))

NRANKS = 4
#: the kill schedule varies with the seed: which rank dies and when
VICTIM = FAULT_SEED % NRANKS
KILL_NTH = 90 + FAULT_SEED % 97


def _repl_options(**kw) -> Options:
    base = dict(
        replicas=3,
        write_quorum=2,
        remote_timeout=0.2,
        memtable_capacity=1 << 12,
    )
    base.update(kw)
    return Options(**base)


def _survivor_close(db) -> None:
    """Non-collective close for ranks that outlive a killed peer."""
    db.srv_comm.send(msg.StopMsg(), db.rank, tag=0)
    db._handler_thread.join(10)
    db._closed = True


class TestReplicatedOperation:
    """Failure-free replication semantics."""

    def test_put_get_and_physical_copies(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("repl", _repl_options())
                rank = ctx.world_rank
                for i in range(40):
                    db.put(f"r{rank}-{i:03d}".encode(), f"v{i}".encode())
                db.fence()
                db.barrier()
                for rr in range(ctx.nranks):
                    for i in range(0, 40, 7):
                        assert (
                            db.get(f"r{rr}-{i:03d}".encode())
                            == f"v{i}".encode()
                        )
                # every key is physically held by exactly R ranks, and
                # the primary-filtered scans partition the key space
                held = len(db.scan_local(include_replicas=True))
                primary = len(db.scan_local())
                helds = db.coll_comm.allgather(held)
                primaries = db.coll_comm.allgather(primary)
                assert sum(helds) == 40 * ctx.nranks * 3
                assert sum(primaries) == 40 * ctx.nranks
                db.close()

        run4(app)

    def test_replicated_delete_propagates(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("repl", _repl_options())
                rank = ctx.world_rank
                for i in range(10):
                    db.put(f"d{rank}-{i}".encode(), b"doomed")
                db.fence()
                db.barrier()
                db.delete(f"d{rank}-0".encode())
                db.fence()
                db.barrier()
                for rr in range(ctx.nranks):
                    assert db.get_or_none(f"d{rr}-0".encode()) is None
                    assert db.get(f"d{rr}-1".encode()) == b"doomed"
                db.close()

        run4(app)

    def test_write_batch_replicated(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("repl", _repl_options())
                rank = ctx.world_rank
                with db.batch() as b:
                    for i in range(30):
                        b.put(f"b{rank}-{i:03d}".encode(), f"w{i}".encode())
                db.fence()
                db.barrier()
                for rr in range(ctx.nranks):
                    assert db.get(f"b{rr}-015".encode()) == b"w15"
                db.close()

        run4(app)

    def test_options_validation(self):
        with pytest.raises(InvalidOptionError):
            Options(replicas=2, write_quorum=3)
        with pytest.raises(InvalidOptionError):
            Options(replicas=0)

        def app(ctx):
            with Papyrus(ctx) as env:
                with pytest.raises(InvalidOptionError):
                    env.open("repl", _repl_options(replicas=5))

        run4(app)


class TestKillRank:
    """The headline fault test: seeded mid-run kill, zero acked loss."""

    def test_kill_loses_no_acked_writes(self):
        shared = {"acked": {}, "held": {}}
        survivors = threading.Barrier(NRANKS - 1)

        def app(ctx):
            env = Papyrus(ctx)
            db = env.open("kill", _repl_options())
            rank = ctx.world_rank
            acked: set = set()
            shared["acked"][rank] = acked
            for i in range(120):
                key = f"k{rank}-{i:04d}".encode()
                db.put(key, f"v{i}".encode())
                acked.add(key)
                if i % 3 == 0:
                    db.get(key)
            if rank == VICTIM:
                raise AssertionError("victim survived its kill schedule")
            db.fence()
            survivors.wait()
            # recovery: spin the failure detector until the victim is
            # declared dead and re-replication has drained — gets must
            # keep succeeding the whole time
            mv = db.membership
            probe = sorted(acked)[0]
            for _ in range(10000):
                db.tick()
                assert db.get_or_none(probe) is not None, (
                    "get failed during recovery"
                )
                if mv.is_dead(VICTIM) and not mv.pending_rereplication:
                    break
            assert mv.is_dead(VICTIM), (
                f"rank {rank} never declared {VICTIM} dead"
            )
            survivors.wait()
            # zero acknowledged writes lost — including the victim's
            lost = []
            for r, keys in shared["acked"].items():
                for key in sorted(keys):
                    if db.get_or_none(key) is None:
                        lost.append((r, key))
            assert not lost, (
                f"rank {rank} lost {len(lost)} acked writes: {lost[:5]}"
            )
            # back to full replication factor: every acked key must be
            # physically held by >= R of the survivors
            shared["held"][rank] = {
                k for k, v, tomb in db._all_local_records() if not tomb
            }
            survivors.wait()
            if rank == min(r for r in range(NRANKS) if r != VICTIM):
                under = []
                for key in set().union(*shared["acked"].values()):
                    copies = sum(
                        1 for h in shared["held"].values() if key in h
                    )
                    if copies < 3:
                        under.append((key, copies))
                assert not under, f"under-replicated: {under[:5]}"
            survivors.wait()
            _survivor_close(db)
            return len(acked)

        faults = FaultPlan(seed=FAULT_SEED).kill_rank(VICTIM, nth=KILL_NTH)
        res = spmd_run(NRANKS, app, faults=faults, timeout=240)
        assert res[VICTIM] is None  # the kill fired
        assert all(r == 120 for i, r in enumerate(res) if i != VICTIM)
        # the victim acked some writes before dying; none were lost
        assert shared["acked"][VICTIM]

    def test_quorum_lost_when_too_few_survivors(self):
        """With R=Q=2 on two ranks a single death makes writes refuse
        loudly (QuorumLostError) instead of acking unreplicated data."""

        def app(ctx):
            env = Papyrus(ctx)
            db = env.open("qlost", _repl_options(replicas=2))
            rank = ctx.world_rank
            try:
                for i in range(60):
                    db.put(f"q{rank}-{i:03d}".encode(), b"x")
            except QuorumLostError:
                pass  # the peer died mid-loop: writes refuse from here on
            if rank == 1:
                raise AssertionError("victim survived its kill schedule")
            mv = db.membership
            for _ in range(10000):
                db.tick()
                if mv.is_dead(1):
                    break
            assert mv.is_dead(1)
            with pytest.raises(QuorumLostError):
                db.put(b"after-death", b"y")
            # acked pre-death writes are still readable from the survivor
            assert db.get_or_none(b"q0-000") is not None
            _survivor_close(db)

        faults = FaultPlan(seed=FAULT_SEED).kill_rank(1, nth=40)
        res = spmd_run(2, app, faults=faults, timeout=240)
        assert res[1] is None


class TestKillRecoverUnderRaceDetector:
    """The kill/recover stress loop runs clean under the detector."""

    def test_detector_reports_no_findings(self):
        from repro.analysis import runtime

        saved = runtime.get_detector()
        det = runtime.enable(reset=True)
        try:
            shared = {"acked": {}}
            survivors = threading.Barrier(NRANKS - 1)

            def app(ctx):
                env = Papyrus(ctx)
                db = env.open("race", _repl_options())
                rank = ctx.world_rank
                acked = set()
                shared["acked"][rank] = acked
                for i in range(80):
                    key = f"s{rank}-{i:03d}".encode()
                    db.put(key, b"z")
                    acked.add(key)
                    if i % 5 == 0:
                        db.get(key)
                if rank == VICTIM:
                    raise AssertionError("victim survived")
                db.fence()
                survivors.wait()
                mv = db.membership
                for _ in range(10000):
                    db.tick()
                    if mv.is_dead(VICTIM) and not mv.pending_rereplication:
                        break
                for keys in shared["acked"].values():
                    for key in sorted(keys)[:10]:
                        assert db.get_or_none(key) is not None
                survivors.wait()
                _survivor_close(db)

            faults = FaultPlan(seed=FAULT_SEED).kill_rank(VICTIM, nth=60)
            spmd_run(NRANKS, app, faults=faults, timeout=240)
            report = det.report()
            assert report["findings"] == [], report["findings"]
            assert report["summary"]["locations"] > 0
        finally:
            runtime.disable()
            runtime.restore(saved)
