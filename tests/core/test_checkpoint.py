"""Checkpoint/restart/redistribution tests (§4)."""

from __future__ import annotations

import pytest

from repro import Papyrus
from repro.core.checkpoint import read_manifest
from repro.errors import StorageError
from repro.mpi.launcher import spmd_run
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from tests.conftest import small_options


def _populate(db, rank, n=60):
    for i in range(n):
        db.put(f"x-{rank}-{i:03d}".encode(), f"y-{rank}-{i:03d}".encode() * 3)
    db.barrier()


def _verify(db, nranks, n=60):
    for rr in range(nranks):
        for i in range(0, n, 5):
            assert (
                db.get(f"x-{rr}-{i:03d}".encode())
                == f"y-{rr}-{i:03d}".encode() * 3
            )


class TestCheckpoint:
    def test_checkpoint_creates_snapshot_on_lustre(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank)
                ev = db.checkpoint("snap1")
                ev.wait(ctx.clock)
                db.coll_comm.barrier()
                lustre = ctx.machine.lustre_store()
                files = lustre.listdir(
                    f"ckpt/snap1/db_db/gen1/rank{ctx.world_rank}"
                )
                assert files, "rank snapshot dir is empty"
                assert "MANIFEST.json" in files  # per-rank checksum record
                if ctx.world_rank == 0:
                    m = read_manifest(ctx.machine, "snap1", "db")
                    assert m["nranks"] == ctx.nranks
                    assert m["generation"] == 1
                    assert m["format"] == 2
                db.close()

        spmd_run(3, app)

    def test_checkpoint_is_asynchronous(self):
        """The event completes on the background timeline; the main clock
        does not pay the transfer until wait()."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=80)
                ev = db.checkpoint("snap2")
                t_issue = ctx.clock.now
                assert ev.done_time >= t_issue
                overlap = ev.done_time - t_issue
                ev.wait(ctx.clock)
                assert ctx.clock.now >= ev.done_time
                db.close()
                return overlap

        overlaps = spmd_run(2, app)
        assert all(o >= 0 for o in overlaps)

    def test_updates_after_checkpoint_do_not_touch_snapshot(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=40)
                ev = db.checkpoint("snap3")
                # keep writing while the transfer "runs"
                for i in range(40):
                    db.put(f"late-{ctx.world_rank}-{i}".encode(), b"new")
                ev.wait(ctx.clock)
                db.barrier()
                db.destroy().wait(ctx.clock)
                db2, rev = env.restart("snap3", "db", small_options())
                rev.wait(ctx.clock)
                db2.coll_comm.barrier()
                _verify(db2, ctx.nranks, n=40)
                # post-checkpoint writes are NOT in the snapshot
                assert db2.get_or_none(
                    f"late-{ctx.world_rank}-0".encode()
                ) is None
                db2.close()

        spmd_run(2, app, timeout=240)


class TestRestart:
    def test_restart_same_ranks_round_trip(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank)
                db.checkpoint("rt").wait(ctx.clock)
                db.destroy().wait(ctx.clock)
                db2, ev = env.restart("rt", "db", small_options())
                ev.wait(ctx.clock)
                db2.coll_comm.barrier()
                _verify(db2, ctx.nranks)
                db2.close()

        spmd_run(3, app, timeout=240)

    def test_restart_missing_snapshot_raises(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with pytest.raises(StorageError):
                    env.restart("no-such-snap", "db", small_options())

        spmd_run(1, app)

    def test_restart_preserves_deletes(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=30)
                if ctx.world_rank == 0:
                    db.delete(b"x-0-000")
                db.barrier()
                db.checkpoint("deltest").wait(ctx.clock)
                db.destroy().wait(ctx.clock)
                db2, ev = env.restart("deltest", "db", small_options())
                ev.wait(ctx.clock)
                db2.coll_comm.barrier()
                assert db2.get_or_none(b"x-0-000") is None
                assert db2.get(b"x-0-001") is not None
                db2.close()

        spmd_run(2, app, timeout=240)


class TestRedistribution:
    def _machine(self, tmp_path):
        return Machine(SUMMITDEV, 8, base_dir=str(tmp_path))

    def test_restart_with_different_rank_count(self, tmp_path):
        """The headline persistence feature: a snapshot taken with N ranks
        restarts correctly on M ranks through redistribution."""
        machine = self._machine(tmp_path)

        def writer(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=40)
                db.checkpoint("resize").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)

        spmd_run(4, writer, machine=machine)

        def reader(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("resize", "db", small_options())
                ev.wait(ctx.clock)
                db.barrier()
                for rr in range(4):  # writer ran with 4 ranks
                    for i in range(0, 40, 5):
                        assert (
                            db.get(f"x-{rr}-{i:03d}".encode())
                            == f"y-{rr}-{i:03d}".encode() * 3
                        )
                db.close()

        spmd_run(2, reader, machine=machine, timeout=240)
        machine.close()

    def test_forced_redistribution_same_ranks(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=30)
                db.checkpoint("forced").wait(ctx.clock)
                db.destroy().wait(ctx.clock)
                db2, ev = env.restart(
                    "forced", "db", small_options(), force_redistribute=True
                )
                ev.wait(ctx.clock)
                db2.barrier()
                _verify(db2, ctx.nranks, n=30)
                db2.close()

        spmd_run(3, app, timeout=240)

    def test_redistribution_preserves_newest_version(self, tmp_path):
        machine = self._machine(tmp_path)

        def writer(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                db.put(b"versioned", b"old")
                db.barrier(level=1)
                db.put(b"versioned", b"new")
                db.barrier()
                db.checkpoint("vers").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)

        spmd_run(2, writer, machine=machine)

        def reader(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("vers", "db", small_options())
                ev.wait(ctx.clock)
                db.barrier()
                assert db.get(b"versioned") == b"new"
                db.close()

        spmd_run(3, reader, machine=machine, timeout=240)
        machine.close()


class TestRestartDecision:
    """restart() reports the redistribute decision on the event."""

    def test_copy_path_reports_no_redistribution(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=20)
                db.checkpoint("dec1").wait(ctx.clock)
                db.destroy().wait(ctx.clock)
                db2, ev = env.restart("dec1", "db", small_options())
                assert ev.redistributed is False
                assert ev.redistribute_reason == "none"
                ev.wait(ctx.clock)
                db2.barrier()
                _verify(db2, ctx.nranks, n=20)
                db2.close()

        spmd_run(2, app, timeout=240)

    def test_forced_reports_forced(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=20)
                db.checkpoint("dec2").wait(ctx.clock)
                db.destroy().wait(ctx.clock)
                db2, ev = env.restart(
                    "dec2", "db", small_options(), force_redistribute=True
                )
                assert ev.redistributed is True
                assert ev.redistribute_reason == "forced"
                ev.wait(ctx.clock)
                db2.barrier()
                _verify(db2, ctx.nranks, n=20)
                db2.close()

        spmd_run(2, app, timeout=240)

    def test_rank_count_change_warns_despite_force_false(self, tmp_path):
        """A changed rank count overrides force_redistribute=False: the
        event says so and rank 0 gets a RuntimeWarning instead of a
        silent redistribution."""
        import warnings

        machine = Machine(SUMMITDEV, 8, base_dir=str(tmp_path))

        def writer(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=20)
                db.checkpoint("dec3").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)

        spmd_run(2, writer, machine=machine)

        def reader(ctx):
            with Papyrus(ctx) as env:
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    db, ev = env.restart("dec3", "db", small_options())
                assert ev.redistributed is True
                assert ev.redistribute_reason == "rank count changed 2->1"
                assert any(
                    issubclass(w.category, RuntimeWarning)
                    and "force_redistribute=False" in str(w.message)
                    for w in caught
                ), "expected a RuntimeWarning about the overridden flag"
                ev.wait(ctx.clock)
                for rr in range(2):  # writer ran with 2 ranks
                    assert (
                        db.get(f"x-{rr}-000".encode())
                        == f"y-{rr}-000".encode() * 3
                    )
                db.close()

        spmd_run(1, reader, machine=machine, timeout=240)
        machine.close()


class TestDestroy:
    def test_destroy_removes_data(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=20)
                store, rank_dir = db.store, db.rank_dir
                ev = db.destroy()
                ev.wait(ctx.clock)
                assert store.listdir(rank_dir) == []
                # the database can be recreated fresh afterwards
                db2 = env.open("db", small_options())
                assert db2.get_or_none(b"x-0-000") is None
                db2.close()

        spmd_run(2, app)


class TestGenerations:
    """Re-checkpointing to the same name must never overwrite the last
    good snapshot in place; restart prefers the newest COMPLETE one."""

    def test_second_checkpoint_is_new_generation(self, tmp_path):
        machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                _populate(db, ctx.world_rank, n=20)
                db.checkpoint("gens").wait(ctx.clock)
                db.coll_comm.barrier()
                db.put(f"extra-{ctx.world_rank}".encode(), b"late")
                db.barrier()
                db.checkpoint("gens").wait(ctx.clock)
                db.coll_comm.barrier()
                if ctx.world_rank == 0:
                    lustre = ctx.machine.lustre_store()
                    gens = sorted(
                        f for f in lustre.listdir("ckpt/gens/db_db")
                        if f.startswith("gen")
                    )
                    assert gens == ["gen1", "gen2"]
                    m = read_manifest(ctx.machine, "gens", "db")
                    assert m["generation"] == 2
                db.close()

        spmd_run(2, app, machine=machine, timeout=240)
        machine.close()

    def test_restart_falls_back_to_newest_complete_generation(self, tmp_path):
        import os

        machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                db.put(f"g-{ctx.world_rank}".encode(), b"old")
                db.barrier()
                db.checkpoint("fall").wait(ctx.clock)
                db.coll_comm.barrier()
                db.put(f"g-{ctx.world_rank}".encode(), b"new")
                db.barrier()
                db.checkpoint("fall").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)
                # gen2 loses a rank manifest: incomplete, must be skipped
                if ctx.world_rank == 0:
                    lustre = ctx.machine.lustre_store()
                    os.remove(lustre.path(
                        "ckpt/fall/db_db/gen2/rank0/MANIFEST.json"
                    ))
                ctx.comm.barrier()
                db2, ev = env.restart("fall", "db", small_options())
                ev.wait(ctx.clock)
                db2.coll_comm.barrier()
                for rr in range(ctx.nranks):
                    assert db2.get(f"g-{rr}".encode()) == b"old"
                db2.close()

        spmd_run(2, app, machine=machine, timeout=240)
        machine.close()
