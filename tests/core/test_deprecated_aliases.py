"""The deprecated write-surface aliases still work and still warn.

``put_bulk``/``delete_bulk``/``flush_sstables`` are kept as thin shims
over :meth:`Database.batch` and :meth:`Database.flush`; these tests pin
both halves of that contract — a ``DeprecationWarning`` fires, and the
results are byte-identical to the supported path.

Warning capture runs single-rank: ``warnings.catch_warnings`` mutates
the process-global filter list, which races with other rank threads.
"""

from __future__ import annotations

import warnings

from repro import Papyrus
from repro.mpi.launcher import spmd_run
from tests.conftest import run4, small_options


def _deprecations(caught):
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestWarningsFire:
    def test_put_bulk_warns(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    n = db.put_bulk({b"k1": b"v1", b"k2": b"v2"})
                assert n == 2
                deps = _deprecations(caught)
                assert deps and "put_bulk" in str(deps[0].message)
                assert "db.batch()" in str(deps[0].message)
                db.close()

        spmd_run(1, app)

    def test_delete_bulk_warns(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                db.put(b"k1", b"v1")
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    n = db.delete_bulk([b"k1"])
                assert n == 1
                deps = _deprecations(caught)
                assert deps and "delete_bulk" in str(deps[0].message)
                assert db.get_or_none(b"k1") is None
                db.close()

        spmd_run(1, app)

    def test_flush_sstables_warns(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("db", small_options())
                db.put(b"k1", b"v1" * 64)
                with warnings.catch_warnings(record=True) as caught:
                    warnings.simplefilter("always")
                    db.flush_sstables()
                deps = _deprecations(caught)
                assert deps and "flush_sstables" in str(deps[0].message)
                assert len(db.local_mt) == 0, "alias must flush like flush()"
                assert db.ssids, "flush_sstables left no SSTable behind"
                db.close()

        spmd_run(1, app)


class TestAliasesMatchBatchPath:
    """The shims and WriteBatch must land identical state (4 ranks)."""

    def test_put_bulk_matches_write_batch(self):
        def app(ctx):
            warnings.simplefilter("ignore", DeprecationWarning)
            items = {
                f"k-{ctx.world_rank}-{i:03d}".encode(): f"v{i}".encode() * 3
                for i in range(40)
            }
            with Papyrus(ctx) as env:
                old = env.open("old", small_options())
                new = env.open("new", small_options())
                n_old = old.put_bulk(items)
                with new.batch() as b:
                    for k, v in items.items():
                        b.put(k, v)
                n_new = b.written
                old.barrier()
                new.barrier()
                assert n_old == n_new == len(items)
                for rr in range(ctx.nranks):
                    for i in range(40):
                        k = f"k-{rr}-{i:03d}".encode()
                        assert old.get(k) == new.get(k)
                old.close()
                new.close()

        run4(app)

    def test_delete_bulk_matches_write_batch(self):
        def app(ctx):
            warnings.simplefilter("ignore", DeprecationWarning)
            keys = [f"d-{ctx.world_rank}-{i:03d}".encode() for i in range(20)]
            with Papyrus(ctx) as env:
                old = env.open("old", small_options())
                new = env.open("new", small_options())
                for db in (old, new):
                    for k in keys:
                        db.put(k, b"doomed")
                    db.barrier()
                n_old = old.delete_bulk(keys[::2])
                with new.batch() as b:
                    for k in keys[::2]:
                        b.delete(k)
                n_new = b.written
                old.barrier()
                new.barrier()
                assert n_old == n_new == len(keys[::2])
                for rr in range(ctx.nranks):
                    for i in range(20):
                        k = f"d-{rr}-{i:03d}".encode()
                        assert old.get_or_none(k) == new.get_or_none(k)
                old.close()
                new.close()

        run4(app)
