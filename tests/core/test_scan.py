"""Range-scan tests: merged LSM iteration across all tiers."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Papyrus, SSTABLE, WRONLY, RDWR, ProtectionError, spmd_run
from repro.core.scan import merge_scan
from tests.conftest import small_options


class TestMergeScan:
    def test_single_tier(self):
        tiers = [[(b"a", b"1", False), (b"b", b"2", False)]]
        assert list(merge_scan(tiers)) == [(b"a", b"1"), (b"b", b"2")]

    def test_newest_tier_wins(self):
        tiers = [
            [(b"k", b"new", False)],   # newest
            [(b"k", b"old", False)],
        ]
        assert list(merge_scan(tiers)) == [(b"k", b"new")]

    def test_tombstone_shadows(self):
        tiers = [
            [(b"k", b"", True)],
            [(b"k", b"old", False)],
        ]
        assert list(merge_scan(tiers)) == []

    def test_range_bounds_half_open(self):
        tiers = [[(bytes([c]), b"v", False) for c in b"abcde"]]
        assert [k for k, _ in merge_scan(tiers, b"b", b"d")] == [b"b", b"c"]

    def test_empty_tiers(self):
        assert list(merge_scan([])) == []
        assert list(merge_scan([[], []])) == []


class TestScanLocal:
    def test_spans_memtable_and_sstables(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                # first generation: flushed to SSTables
                for i in range(40):
                    db.put(f"a{i:03d}".encode(), b"gen1")
                db.barrier(SSTABLE)
                # second generation: still in the MemTable
                for i in range(40, 60):
                    db.put(f"a{i:03d}".encode(), b"gen2")
                pairs = db.scan_local()
                keys = [k for k, _ in pairs]
                assert keys == sorted(keys)
                # this rank's shard only: every key it owns, no others
                for k, v in pairs:
                    assert db.owner_of(k) == ctx.world_rank
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_overwrite_returns_newest(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                db.put(b"k", b"old")
                db.barrier(SSTABLE)
                db.put(b"k", b"new")
                if db.owner_of(b"k") == ctx.world_rank:
                    # the overwrite may still be staged remotely; fence
                    pass
                db.barrier()
                pairs = dict(db.scan_collect())
                assert pairs[b"k"] == b"new"
                db.close()

        spmd_run(2, app)

    def test_deleted_keys_absent(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                for i in range(30):
                    db.put(f"k{i:02d}".encode(), b"v")
                db.barrier(SSTABLE)
                for i in range(0, 30, 2):
                    db.delete(f"k{i:02d}".encode())
                db.barrier()
                keys = [k for k, _ in db.scan_collect()]
                assert keys == [f"k{i:02d}".encode() for i in range(1, 30, 2)]
                db.close()

        spmd_run(2, app)

    def test_range_query(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                for i in range(50):
                    db.put(f"{i:03d}".encode(), str(i).encode())
                db.barrier()
                pairs = db.scan_collect(b"010", b"020")
                assert [k for k, _ in pairs] == [
                    f"{i:03d}".encode() for i in range(10, 20)
                ]
                db.close()

        spmd_run(3, app)

    def test_wronly_rejects_scan(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                db.protect(WRONLY)
                with pytest.raises(ProtectionError):
                    db.scan_local()
                db.protect(RDWR)
                db.close()

        spmd_run(1, app)

    def test_count_local_sums_to_total(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                for i in range(70):
                    db.put(f"x{i:02d}".encode(), b"v")
                db.barrier(SSTABLE)
                counts = ctx.comm.allgather(db.count_local())
                assert sum(counts) == 70
                db.close()

        spmd_run(3, app)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.dictionaries(
    st.integers(min_value=0, max_value=40).map(lambda i: f"{i:02d}".encode()),
    st.one_of(st.none(), st.binary(min_size=1, max_size=12)),
    max_size=30,
))
def test_scan_collect_matches_dict_model(final_state):
    """Apply puts/deletes, barrier, scan: the result is exactly the
    live subset of the model, globally sorted."""

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("prop", small_options())
            items = sorted(final_state.items())
            for i, (key, value) in enumerate(items):
                if i % ctx.nranks != ctx.world_rank:
                    continue
                db.put(key, b"seed")
                if value is None:
                    db.delete(key)
                else:
                    db.put(key, value)
            db.barrier(SSTABLE)
            got = db.scan_collect()
            want = sorted(
                (k, v) for k, v in final_state.items() if v is not None
            )
            assert got == want
            db.close()

    spmd_run(2, app, timeout=120)
