"""Range-scan tests: merged LSM iteration across all tiers."""

from __future__ import annotations

from itertools import islice

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Papyrus, SSTABLE, WRONLY, RDWR, ProtectionError, spmd_run
from repro.core.scan import merge_scan, reference_scan
from tests.conftest import small_options


class TestMergeScan:
    def test_single_tier(self):
        tiers = [[(b"a", b"1", False), (b"b", b"2", False)]]
        assert list(merge_scan(tiers)) == [(b"a", b"1"), (b"b", b"2")]

    def test_newest_tier_wins(self):
        tiers = [
            [(b"k", b"new", False)],   # newest
            [(b"k", b"old", False)],
        ]
        assert list(merge_scan(tiers)) == [(b"k", b"new")]

    def test_tombstone_shadows(self):
        tiers = [
            [(b"k", b"", True)],
            [(b"k", b"old", False)],
        ]
        assert list(merge_scan(tiers)) == []

    def test_range_bounds_half_open(self):
        tiers = [[(bytes([c]), b"v", False) for c in b"abcde"]]
        assert [k for k, _ in merge_scan(tiers, b"b", b"d")] == [b"b", b"c"]

    def test_empty_tiers(self):
        assert list(merge_scan([])) == []
        assert list(merge_scan([[], []])) == []


class TestScanLocal:
    def test_spans_memtable_and_sstables(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                # first generation: flushed to SSTables
                for i in range(40):
                    db.put(f"a{i:03d}".encode(), b"gen1")
                db.barrier(SSTABLE)
                # second generation: still in the MemTable
                for i in range(40, 60):
                    db.put(f"a{i:03d}".encode(), b"gen2")
                pairs = db.scan_local()
                keys = [k for k, _ in pairs]
                assert keys == sorted(keys)
                # this rank's shard only: every key it owns, no others
                for k, v in pairs:
                    assert db.owner_of(k) == ctx.world_rank
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_overwrite_returns_newest(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                db.put(b"k", b"old")
                db.barrier(SSTABLE)
                db.put(b"k", b"new")
                if db.owner_of(b"k") == ctx.world_rank:
                    # the overwrite may still be staged remotely; fence
                    pass
                db.barrier()
                pairs = dict(db.scan_collect())
                assert pairs[b"k"] == b"new"
                db.close()

        spmd_run(2, app)

    def test_deleted_keys_absent(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                for i in range(30):
                    db.put(f"k{i:02d}".encode(), b"v")
                db.barrier(SSTABLE)
                for i in range(0, 30, 2):
                    db.delete(f"k{i:02d}".encode())
                db.barrier()
                keys = [k for k, _ in db.scan_collect()]
                assert keys == [f"k{i:02d}".encode() for i in range(1, 30, 2)]
                db.close()

        spmd_run(2, app)

    def test_range_query(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                for i in range(50):
                    db.put(f"{i:03d}".encode(), str(i).encode())
                db.barrier()
                pairs = db.scan_collect(b"010", b"020")
                assert [k for k, _ in pairs] == [
                    f"{i:03d}".encode() for i in range(10, 20)
                ]
                db.close()

        spmd_run(3, app)

    def test_wronly_rejects_scan(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                db.protect(WRONLY)
                with pytest.raises(ProtectionError):
                    db.scan_local()
                db.protect(RDWR)
                db.close()

        spmd_run(1, app)

    def test_count_local_sums_to_total(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("scan", small_options())
                for i in range(70):
                    db.put(f"x{i:02d}".encode(), b"v")
                db.barrier(SSTABLE)
                counts = ctx.comm.allgather(db.count_local())
                assert sum(counts) == 70
                db.close()

        spmd_run(3, app)


class TestStreamedScan:
    """The lazy iterator: snapshot pinning, pruning, counters."""

    def test_matches_reference_across_tiers(self):
        """Streamed scan == the seed-era materializing oracle with
        overwrites and deletes spread across SSTables, the flushing
        queue, and the live MemTable."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("stream", small_options())
                for i in range(60):
                    db.put(f"m{i:03d}".encode(), b"gen1")
                db.barrier(SSTABLE)
                for i in range(0, 60, 3):
                    db.put(f"m{i:03d}".encode(), b"gen2")
                for i in range(1, 60, 5):
                    db.delete(f"m{i:03d}".encode())
                db.barrier(SSTABLE)
                for i in range(60, 75):
                    db.put(f"m{i:03d}".encode(), b"mem")
                db.barrier()
                for window in [(None, None), (b"m010", b"m050"),
                               (b"m070", None), (None, b"m005")]:
                    got = db.scan_local(*window)
                    assert got == reference_scan(db, *window)
                db.close()

        spmd_run(2, app)

    def test_snapshot_survives_flush_and_compaction(self):
        """Writes, flushes, and compactions landing mid-iteration do not
        disturb an open scan: it yields exactly its open-time snapshot,
        and the retired tables' files are unlinked only after close."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("pin", small_options(compaction_interval=2))
                for i in range(80):
                    db.put(f"p{i:03d}".encode(), b"old")
                db.barrier(SSTABLE)
                before = reference_scan(db)
                it = db.scan()
                got = list(islice(it, 5))  # partially consumed
                # churn hard enough to flush and compact several times,
                # retiring the tables the open scan has pinned.  Only
                # locally-owned keys: remote puts would migrate into the
                # peer's MemTable at a nondeterministic moment relative
                # to its own snapshot open.
                mine = [
                    f"p{i:03d}".encode() for i in range(80)
                    if db.owner_of(f"p{i:03d}".encode()) == ctx.world_rank
                ]
                for round_ in range(4):
                    for key in mine:
                        db.put(key, f"new{round_}".encode())
                    db.flush()
                assert db.stats.compactions >= 1
                got += list(it)  # iterator finishes over the snapshot
                assert got == before
                assert not db._scan_pins  # exhaustion auto-closed it
                assert not db._deferred_unlinks
                # a fresh scan sees the post-churn world
                fresh = dict(db.scan_local())
                assert sorted(fresh.items()) == reference_scan(db)
                for key in mine:
                    assert fresh[key] == b"new3"
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_abandoned_iterator_releases_pins(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("abandon", small_options())
                for i in range(40):
                    db.put(f"a{i:02d}".encode(), b"v")
                db.barrier(SSTABLE)
                with db.scan() as it:
                    next(it)
                    assert db._scan_pins  # held while open
                assert not db._scan_pins  # context exit released them
                db.close()

        spmd_run(1, app)

    def test_keys_only_skips_values(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("keysonly", small_options())
                for i in range(50):
                    db.put(f"k{i:02d}".encode(), b"payload" * 8)
                db.barrier(SSTABLE)
                with db.scan(keys_only=True) as it:
                    pairs = list(it)
                assert all(v == b"" for _, v in pairs)
                assert [k for k, _ in pairs] == [
                    k for k, _ in db.scan_local()
                ]
                db.close()

        spmd_run(1, app)

    def test_fence_pruning_and_counters(self):
        """Prefix-phased loading gives disjoint per-table fences; a
        narrow window must prune the other tables and count it."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("prune", small_options())
                for prefix in b"abcd":
                    for i in range(30):
                        db.put(bytes([prefix]) + f"{i:03d}".encode(), b"v")
                    db.barrier(SSTABLE)
                pairs = db.scan_local(b"c", b"d")
                assert len(pairs) == 30
                s = db.stats
                assert s.scans >= 1
                assert s.scan_tables_pruned > 0
                assert s.scan_blocks_read > 0
                m = db.metrics()
                for key in ("scans", "scan_tables_pruned",
                            "scan_blocks_read", "scan_chunks_shipped",
                            "scan_peak_buffered"):
                    assert key in m
                from repro.metrics import format_report

                assert "scan path:" in format_report(m)
                db.barrier()
                db.close()

        spmd_run(1, app)


class TestScanGlobal:
    """The collective windowed streaming merge."""

    def test_streams_sorted_and_chunked(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("glob", small_options())
                for i in range(90):
                    db.put(f"g{i:03d}".encode(), str(i).encode())
                db.barrier(SSTABLE)
                got = list(db.scan_global(chunk=8))
                assert got == [
                    (f"g{i:03d}".encode(), str(i).encode())
                    for i in range(90)
                ]
                assert db.stats.scan_chunks_shipped > 1
                db.close()

        spmd_run(3, app)

    def test_limit_is_a_prefix_and_ships_less(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("lim", small_options())
                for i in range(120):
                    db.put(f"l{i:03d}".encode(), b"v")
                db.barrier(SSTABLE)
                full = db.scan_collect(chunk=8)
                full_chunks = db.stats.scan_chunks_shipped
                limited = list(db.scan_global(limit=10, chunk=8))
                assert limited == full[:10]
                top_chunks = db.stats.scan_chunks_shipped - full_chunks
                # a top-10 needs about one chunk per rank, not the drain
                assert 0 < top_chunks < full_chunks
                db.close()

        spmd_run(3, app)

    def test_peak_buffer_bounded_by_window(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("peak", small_options())
                for i in range(100):
                    db.put(f"b{ctx.world_rank}:{i:03d}".encode(), b"v")
                db.barrier(SSTABLE)
                chunk = 8
                n = len(list(db.scan_global(chunk=chunk)))
                counts = ctx.comm.allgather(n)
                assert all(c == 100 * ctx.nranks for c in counts)
                # O(nranks x chunk), never the full result
                assert (db.stats.scan_peak_buffered
                        <= ctx.nranks * chunk + chunk)
                db.close()

        spmd_run(4, app)

    def test_zero_limit_and_bad_chunk(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("edge", small_options())
                db.put(b"k", b"v")
                db.barrier()
                assert list(db.scan_global(limit=0)) == []
                from repro.errors import InvalidOptionError

                with pytest.raises(InvalidOptionError):
                    db.scan_global(chunk=0)
                db.close()

        spmd_run(1, app)


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.dictionaries(
    st.integers(min_value=0, max_value=40).map(lambda i: f"{i:02d}".encode()),
    st.one_of(st.none(), st.binary(min_size=1, max_size=12)),
    max_size=30,
))
def test_scan_collect_matches_dict_model(final_state):
    """Apply puts/deletes, barrier, scan: the result is exactly the
    live subset of the model, globally sorted."""

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("prop", small_options())
            items = sorted(final_state.items())
            for i, (key, value) in enumerate(items):
                if i % ctx.nranks != ctx.world_rank:
                    continue
                db.put(key, b"seed")
                if value is None:
                    db.delete(key)
                else:
                    db.put(key, value)
            db.barrier(SSTABLE)
            got = db.scan_collect()
            want = sorted(
                (k, v) for k, v in final_state.items() if v is not None
            )
            assert got == want
            db.close()

    spmd_run(2, app, timeout=120)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=60).map(
            lambda i: f"{i:02d}".encode()
        ),
        st.one_of(st.none(), st.binary(min_size=1, max_size=12)),
        max_size=40,
    ),
    st.tuples(
        st.one_of(st.none(), st.integers(0, 60).map(
            lambda i: f"{i:02d}".encode())),
        st.one_of(st.none(), st.integers(0, 60).map(
            lambda i: f"{i:02d}".encode())),
    ),
)
def test_streamed_scan_matches_oracle_under_churn(final_state, window):
    """The streamed iterator equals the seed-era materializing oracle on
    any window, and an iterator opened *before* a storm of overwrites,
    flushes, and compactions still yields its open-time snapshot."""
    start, end = window
    if start is not None and end is not None and start > end:
        start, end = end, start

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("churnprop",
                          small_options(compaction_interval=2))
            items = sorted(final_state.items())
            for i, (key, value) in enumerate(items):
                if i % ctx.nranks != ctx.world_rank:
                    continue
                db.put(key, b"seed")
                if i % 3 == 0:
                    db.flush()  # spread the state across tiers
                if value is None:
                    db.delete(key)
                else:
                    db.put(key, value)
            db.barrier(SSTABLE)
            want = reference_scan(db, start, end)
            it = db.scan(start, end)
            head = list(islice(it, 3))
            # mid-iteration churn: overwrites + flush + compaction.
            # Locally-owned keys only — remote puts would migrate into
            # the peer's MemTable at a nondeterministic moment relative
            # to its own snapshot open.
            for key, _value in items:
                if db.owner_of(key) == ctx.world_rank:
                    db.put(key, b"churn")
            db.flush()
            assert head + list(it) == want  # the pinned snapshot
            assert db.scan_local(start, end) == reference_scan(
                db, start, end)  # the fresh view agrees too
            db.barrier()
            db.close()

    spmd_run(2, app, timeout=120)


def test_replica_scan_filtering_matches_oracle():
    """Under replication the streamed scan and the oracle agree for
    both the primary-filtered and the physical (include_replicas)
    views, and the primary views partition the keyspace."""

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("replscan", small_options(
                replicas=2, write_quorum=1, remote_timeout=0.2))
            for i in range(30):
                db.put(f"r{ctx.world_rank}-{i:02d}".encode(), b"v")
            db.fence()
            db.barrier(SSTABLE)
            primary = db.scan_local()
            physical = db.scan_local(include_replicas=True)
            assert primary == reference_scan(db)
            assert physical == reference_scan(db, include_replicas=True)
            assert len(physical) >= len(primary)
            totals = ctx.comm.allgather(len(primary))
            assert sum(totals) == 30 * ctx.nranks
            helds = ctx.comm.allgather(len(physical))
            assert sum(helds) == 30 * ctx.nranks * 2
            db.close()

    spmd_run(4, app, timeout=240)
