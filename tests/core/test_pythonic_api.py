"""The Pythonic object layer: context managers, mapping sugar, batches."""

from __future__ import annotations

import pytest

from repro import KeyNotFoundError, Papyrus
from repro.errors import InvalidKeyError, ProtectionError
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options


def run1(fn, **kw):
    return spmd_run(1, fn, **kw)[0]


class TestContextManagers:
    def test_database_as_context_manager(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    db.put(b"k", b"v")
                    assert db.get(b"k") == b"v"
                assert db._closed  # the with-block closed it

        run1(app)

    def test_close_inside_with_is_idempotent(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    db.put(b"k", b"v")
                    db.close()

        run1(app)


class TestMappingSugar:
    def test_setitem_getitem_delitem_contains(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    db[b"k"] = b"v"
                    assert db[b"k"] == b"v"
                    assert b"k" in db
                    assert b"nope" not in db
                    del db[b"k"]
                    assert b"k" not in db

        run1(app)

    def test_getitem_raises_keyerror(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    # KeyNotFoundError subclasses KeyError: both idioms work
                    with pytest.raises(KeyError):
                        db[b"missing"]
                    with pytest.raises(KeyNotFoundError):
                        db[b"missing"]

        run1(app)

    def test_sugar_is_distributed(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    me = ctx.world_rank
                    db[f"from-{me}".encode()] = str(me).encode()
                    db.barrier()
                    for rr in range(ctx.nranks):
                        assert db[f"from-{rr}".encode()] == str(rr).encode()
                    db.barrier()

        spmd_run(4, app)


class TestWriteBatch:
    def test_batch_flushes_on_exit(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    with db.batch() as b:
                        b[b"a"] = b"1"
                        b.put(b"b", b"2")
                        assert len(b) == 2
                        # nothing visible until the batch flushes
                        assert b"a" not in db
                    assert db[b"a"] == b"1"
                    assert db[b"b"] == b"2"

        run1(app)

    def test_batch_discarded_on_exception(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    with pytest.raises(RuntimeError):
                        with db.batch() as b:
                            b[b"a"] = b"1"
                            raise RuntimeError("abandon ship")
                    assert b"a" not in db

        run1(app)

    def test_batch_validates_eagerly(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    with db.batch() as b:
                        with pytest.raises(InvalidKeyError):
                            b.put(b"", b"v")
                        b[b"ok"] = b"v"
                    assert db[b"ok"] == b"v"

        run1(app)

    def test_batch_clear_and_manual_flush(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    b = db.batch()
                    b[b"x"] = b"1"
                    b.clear()
                    assert b.flush() == 0
                    assert b"x" not in db
                    b[b"y"] = b"2"
                    assert b.flush() == 1
                    assert db[b"y"] == b"2"

        run1(app)

    def test_batch_flush_respects_protection(self):
        from repro.config import RDONLY

        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    db.protect(RDONLY)
                    with pytest.raises(ProtectionError):
                        with db.batch() as b:
                            b[b"a"] = b"1"

        run1(app)

    def test_batch_delete_sugar(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                with env.open("d", small_options()) as db:
                    db[b"a"] = b"1"
                    with db.batch() as b:
                        del b[b"a"]
                        b[b"c"] = b"3"
                    assert b"a" not in db
                    assert db[b"c"] == b"3"

        run1(app)
