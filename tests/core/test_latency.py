"""Latency tracking tests."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Papyrus, spmd_run
from repro.core.latency import LatencyReservoir, LatencyTracker
from tests.conftest import small_options


class TestReservoir:
    def test_empty(self):
        r = LatencyReservoir()
        assert r.mean == 0.0
        assert r.percentile(50) == 0.0
        assert r.count == 0

    def test_basic_stats(self):
        r = LatencyReservoir()
        for v in (1.0, 2.0, 3.0, 4.0):
            r.observe(v)
        assert r.count == 4
        assert r.mean == pytest.approx(2.5)
        assert r.max_seen == 4.0
        assert r.percentile(0) == 1.0
        assert r.percentile(100) == 4.0

    def test_median(self):
        r = LatencyReservoir()
        for v in range(1, 102):  # 1..101
            r.observe(float(v))
        assert r.percentile(50) == pytest.approx(51.0)

    def test_invalid_inputs(self):
        r = LatencyReservoir()
        with pytest.raises(ValueError):
            r.observe(-1.0)
        with pytest.raises(ValueError):
            r.percentile(101)
        with pytest.raises(ValueError):
            LatencyReservoir(0)

    def test_reservoir_bounds_memory(self):
        r = LatencyReservoir(capacity=64)
        for v in range(10_000):
            r.observe(float(v))
        assert len(r._samples) == 64
        assert r.count == 10_000
        # the sample median should be in the right neighbourhood
        assert 2_000 < r.percentile(50) < 8_000

    def test_summary_keys(self):
        r = LatencyReservoir()
        r.observe(1.0)
        s = r.summary()
        assert set(s) == {"count", "mean_s", "p50_s", "p95_s", "p99_s",
                          "max_s"}


class TestTracker:
    def test_per_op_isolation(self):
        t = LatencyTracker()
        t.observe("put", 1.0)
        t.observe("get", 2.0)
        assert t.get("put").mean == 1.0
        assert t.get("get").mean == 2.0
        assert "put" in t and "delete" not in t

    def test_summary(self):
        t = LatencyTracker()
        t.observe("put", 1.0)
        assert set(t.summary()) == {"put"}


class TestDatabaseIntegration:
    def test_ops_recorded(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("lat", small_options())
                for i in range(40):
                    db.put(f"k{i}".encode(), b"v")
                db.barrier()
                for i in range(20):
                    db.get(f"k{i}".encode())
                db.delete(b"k0")
                summary = db.latency.summary()
                db.close()
                return summary

        s = spmd_run(2, app)[0]
        assert s["put"]["count"] == 40
        assert s["get"]["count"] == 20
        assert s["delete"]["count"] == 1
        assert s["get"]["p99_s"] >= s["get"]["p50_s"] >= 0

    def test_remote_gets_slower_than_local(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("lat", small_options())
                keys = [f"k{i}".encode() for i in range(200)]
                local = [k for k in keys if db.owner_of(k) == ctx.world_rank]
                remote = [k for k in keys if db.owner_of(k) != ctx.world_rank]
                for k in keys:
                    db.put(k, b"v" * 16)
                db.barrier()
                t_local = LatencyTracker()
                for k in local[:30]:
                    t0 = ctx.clock.now
                    db.get(k)
                    t_local.observe("get", ctx.clock.now - t0)
                t_remote = LatencyTracker()
                for k in remote[:30]:
                    t0 = ctx.clock.now
                    db.get(k)
                    t_remote.observe("get", ctx.clock.now - t0)
                db.close()
                return (t_local.get("get").mean, t_remote.get("get").mean)

        local_mean, remote_mean = spmd_run(2, app)[0]
        assert remote_mean > local_mean


@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=200))
def test_percentiles_bracket_data(values):
    r = LatencyReservoir(capacity=1000)
    for v in values:
        r.observe(v)
    assert min(values) <= r.percentile(50) <= max(values)
    assert r.percentile(0) == min(values)
    assert r.percentile(100) == max(values)
    assert r.max_seen == max(values)
