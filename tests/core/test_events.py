"""Event (papyruskv_event_t) semantics."""

from __future__ import annotations

import pytest

from repro.core.events import Event
from repro.simtime.clock import VirtualClock


class TestEvent:
    def test_wait_advances_clock(self):
        clock = VirtualClock(1.0)
        ev = Event("e").complete_at(5.0)
        assert ev.wait(clock) == 5.0
        assert clock.now == 5.0

    def test_wait_noop_when_already_past(self):
        """If the main timeline already passed the completion point, the
        asynchronous work was fully overlapped and wait costs nothing."""
        clock = VirtualClock(10.0)
        ev = Event("e").complete_at(5.0)
        assert ev.wait(clock) == 10.0

    def test_completed_flag(self):
        ev = Event("e")
        assert not ev.completed
        ev.complete_at(1.0)
        assert ev.completed
        assert ev.done_time == 1.0

    def test_done_time_before_completion_raises(self):
        with pytest.raises(RuntimeError):
            Event("e").done_time

    def test_wait_uncompleted_raises(self):
        with pytest.raises(RuntimeError):
            Event("e").wait(VirtualClock())

    def test_on_wait_callback_runs_once(self):
        calls = []
        ev = Event("e").complete_at(1.0).on_wait(lambda: calls.append(1))
        clock = VirtualClock()
        ev.wait(clock)
        ev.wait(clock)
        assert calls == [1]

    def test_repeated_wait_idempotent(self):
        clock = VirtualClock()
        ev = Event("e").complete_at(2.0)
        ev.wait(clock)
        clock.advance(5.0)
        assert ev.wait(clock) == 7.0  # never moves the clock backwards
