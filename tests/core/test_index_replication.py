"""One-sided index replication: cross-group gets without the handler.

The contract under test: with ``index_replication=True`` a cross-group
get runs the full gate order (quarantine flag, fences, bloom, index)
against *replicated* SSTable metadata and issues a single direct data
read into the owner's shared NVM — zero handler messages at steady
state — while every owner-side mutation (flush, compaction, quarantine,
delete, rank death) makes the replicated view detectably stale rather
than silently wrong.
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro import Papyrus, SSTABLE, spmd_run
from repro.config import Options, SEQUENTIAL
from repro.core import messages as msg
from repro.errors import CorruptionError, KeyNotFoundError
from repro.faults import FaultPlan
from tests.conftest import small_options

FAULT_SEED = int(os.environ.get("PKV_FAULT_SEED", "7"))


def _ix_options(**kw) -> Options:
    """group_size=1 puts every peer in a foreign storage group, so every
    remote get exercises the cross-group path."""
    base = dict(group_size=1, index_replication=True)
    base.update(kw)
    return small_options(**base)


def _keys_of(db, owner: int, n: int = 200, prefix: str = "k"):
    """The first keys (by index) that hash to ``owner``."""
    out = []
    for i in range(10000):
        key = f"{prefix}{i:04d}".encode()
        if db.owner_of(key) == owner:
            out.append(key)
            if len(out) == n:
                break
    return out


class TestSteadyState:
    def test_cross_group_gets_resolve_one_sided(self):
        """After one pull, every cross-group get is a direct read: tier
        ``index_sstable``, hit-rate 100%, zero fallbacks."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ix", _ix_options())
                r = ctx.world_rank
                for i in range(60):
                    db.put(f"k-{r}-{i:02d}".encode(), bytes([65 + r]) * 32)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                served = 0
                for i in range(60):
                    key = f"k-{other}-{i:02d}".encode()
                    if db.owner_of(key) == r:
                        continue  # stay on the cross-rank path only
                    res = db.get_ex(key)
                    assert res.value == bytes([65 + other]) * 32
                    assert res.tier == "index_sstable"
                    served += 1
                st = db.stats
                assert served > 0
                assert st.index_repl_hits == served
                assert st.index_pulls == 1  # one handshake, then silence
                assert st.index_repl_misses == 1
                assert st.index_repl_fallbacks == 0
                # zero handler round trips: no remote/shared tiers at all
                assert "remote" not in st.get_tiers
                assert "shared_sstable" not in st.get_tiers
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_bulk_gets_route_one_sided(self):
        """get_bulk resolves whole owners from replicated metadata."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixb", _ix_options())
                r = ctx.world_rank
                for i in range(60):
                    db.put(f"b-{r}-{i:02d}".encode(), b"w" * 24)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                keys = [
                    f"b-{other}-{i:02d}".encode() for i in range(60)
                    if db.owner_of(f"b-{other}-{i:02d}".encode()) != r
                ]
                values = db.get_bulk(keys)
                assert all(v == b"w" * 24 for v in values)
                st = db.stats
                assert st.index_repl_hits == len(keys)
                assert st.get_tiers.get("index_sstable") == len(keys)
                assert st.index_repl_fallbacks == 0
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_sequential_mode_stays_on_the_handler(self):
        """Sequential consistency promises immediate remote visibility —
        a state only the owner's handler can see — so the one-sided
        path must disable itself."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "ixs", _ix_options(consistency=SEQUENTIAL)
                )
                r = ctx.world_rank
                for i in range(30):
                    db.put(f"s-{r}-{i:02d}".encode(), b"q" * 16)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                for i in range(30):
                    key = f"s-{other}-{i:02d}".encode()
                    if db.owner_of(key) != r:
                        res = db.get_ex(key)
                        assert res.tier == "remote"
                st = db.stats
                assert st.index_repl_hits == 0
                assert st.index_pulls == 0
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestStaleness:
    def test_owner_flush_is_detected_and_repulled(self):
        """A new table at the owner changes its directory listing; the
        requester's next get re-pulls instead of trusting old metadata."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixf", _ix_options())
                r = ctx.world_rank
                for i in range(40):
                    db.put(f"f-{r}-{i:02d}".encode(), b"1" * 24)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                keys = [k for k in
                        (f"f-{other}-{i:02d}".encode() for i in range(40))
                        if db.owner_of(k) != r]
                for key in keys:
                    assert db.get(key) == b"1" * 24  # warm view + bundles
                db.barrier()
                # the owner overwrites everything in a second generation
                for i in range(40):
                    db.put(f"f-{r}-{i:02d}".encode(), b"2" * 24)
                db.barrier(SSTABLE)
                st0 = db.stats.index_repl_stale
                for key in keys:
                    assert db.get(key) == b"2" * 24
                st = db.stats
                assert st.index_repl_stale > st0
                assert st.index_repl_fallbacks == 0  # re-pull, not punt
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_stale_bundle_never_masks_a_newer_tombstone(self):
        """Seeded fault shape from the issue: requester holds warm
        bundles *and* warm data blocks for a key the owner has since
        deleted and flushed.  The newest-ssid handshake must route the
        get to the new tombstone, not the cached older version."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixt", _ix_options())
                r = ctx.world_rank
                for i in range(40):
                    db.put(f"t-{r}-{i:02d}".encode(), b"old" * 8)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                victims = [k for k in
                           (f"t-{other}-{i:02d}".encode() for i in range(40))
                           if db.owner_of(k) != r][:5]
                for key in victims:
                    assert db.get(key) == b"old" * 8  # warm every cache
                db.barrier()
                # the owner deletes its own keys locally and flushes the
                # tombstones into a fresh table
                for i in range(40):
                    db.delete(f"t-{r}-{i:02d}".encode())
                db.barrier(SSTABLE)
                for key in victims:
                    assert db.get_or_none(key) is None
                assert db.stats.index_repl_stale > 0
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_owner_compaction_is_detected(self):
        """Compaction replaces tables under fresh SSIDs; the requester
        re-pulls and keeps reading correct values one-sidedly."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixc", _ix_options(compaction_interval=2))
                r = ctx.world_rank
                other = (r + 1) % ctx.nranks
                for gen in range(4):
                    for i in range(40):
                        db.put(f"c-{r}-{i:02d}".encode(),
                               f"g{gen}".encode() * 8)
                    db.barrier(SSTABLE)
                    for i in range(0, 40, 5):
                        key = f"c-{other}-{i:02d}".encode()
                        if db.owner_of(key) != r:
                            assert db.get(key) == f"g{gen}".encode() * 8
                    db.barrier()
                st = db.stats
                assert st.index_repl_hits > 0
                assert st.index_repl_fallbacks == 0
                db.close()

        spmd_run(2, app)

    def test_owner_quarantine_forces_the_handler_path(self):
        """A quarantined owner cannot be read one-sidedly: the rename to
        ``.quar`` changes the listing, the re-pulled view says
        ``quarantine_free=False``, and the get degrades through the
        handler exactly like the two-sided protocol."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixq", _ix_options())
                r = ctx.world_rank
                for i in range(40):
                    db.put(f"q-{r}-{i:02d}".encode(), b"h" * 48)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                keys = [k for k in
                        (f"q-{other}-{i:02d}".encode() for i in range(40))
                        if db.owner_of(k) != r]
                for key in keys[:5]:
                    assert db.get(key) == b"h" * 48  # warm the view
                db.barrier()
                victim = db.ssids[0]
                path = f"{db.rank_dir}/{victim:010d}.ssd"
                blob = db.store.read(path, db.clock.now)[0]
                mutated = bytearray(blob)
                mutated[min(500, len(blob) - 1)] ^= 0xFF
                db.store.write(path, bytes(mutated), db.clock.now)
                report = db.verify(repair=False)
                assert victim in report["quarantined"]
                db.barrier()
                # every cross-group get now answers via the owner's
                # handler: poisoned ranges degrade loudly, nothing is
                # served from the stale replicated metadata
                hits_before = db.stats.index_repl_hits
                for key in keys[:5]:
                    try:
                        db.get(key)
                    except CorruptionError:
                        pass  # inside the poisoned range: correct refusal
                assert db.stats.index_repl_hits == hits_before
                assert db.stats.index_repl_fallbacks > 0
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_checkpoint_restore_keeps_one_sided_reads_correct(self):
        """A table rewritten in place from a checkpoint (same ssid) must
        not leave any peer serving torn or stale bytes."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixr", _ix_options())
                r = ctx.world_rank
                for i in range(40):
                    db.put(f"r-{r}-{i:02d}".encode(), b"z" * 48)
                db.barrier(SSTABLE)
                db.checkpoint("ixrsnap").wait(ctx.clock)
                db.coll_comm.barrier()
                other = (r + 1) % ctx.nranks
                keys = [k for k in
                        (f"r-{other}-{i:02d}".encode() for i in range(40))
                        if db.owner_of(k) != r]
                for key in keys[:8]:
                    assert db.get(key) == b"z" * 48  # warm bundles+blocks
                db.barrier()
                victim = db.ssids[0]
                path = f"{db.rank_dir}/{victim:010d}.ssd"
                blob = db.store.read(path, db.clock.now)[0]
                mutated = bytearray(blob)
                mutated[min(300, len(blob) - 1)] ^= 0xFF
                db.store.write(path, bytes(mutated), db.clock.now)
                report = db.verify(repair=True)
                assert victim in report["rebuilt"]
                db.barrier()
                for key in keys[:8]:
                    assert db.get(key) == b"z" * 48
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_fence_drops_the_mem_clean_stamp(self):
        """Read-your-writes across the visibility boundary: after my
        fence, my migrated put must be readable even though I hold a
        (now stale) mem-clean view of the owner."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixw", _ix_options())
                r = ctx.world_rank
                for i in range(40):
                    db.put(f"w-{r}-{i:02d}".encode(), b"v0" * 8)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                key = next(k for k in
                           (f"w-{other}-{i:02d}".encode() for i in range(40))
                           if db.owner_of(k) != r)
                assert db.get(key) == b"v0" * 8  # view cached, mem_clean
                db.put(key, b"v1" * 8)  # migrates into the owner's MemTable
                db.fence()
                # the stamp died with the fence: this get must take the
                # handler and see the owner's MemTable
                assert db.get(key) == b"v1" * 8
                assert db.stats.index_repl_fallbacks > 0
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestCacheBounds:
    def test_peer_caches_are_bounded_and_funneled(self):
        """White-box: the peer-reader cache and the bundle cache live
        under cost-budgeted LRUs, and ``_drop_peer_cache`` purges the
        readers, the views, the bundles AND the owner's cached data
        blocks in one call (the historical leak: spans survived and
        served stale bytes until they aged out)."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixd", _ix_options())
                r = ctx.world_rank
                for i in range(40):
                    db.put(f"d-{r}-{i:02d}".encode(), b"p" * 64)
                db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                owner_dir = f"{db.dbdir}/rank{other}"
                keys = [k for k in
                        (f"d-{other}-{i:02d}".encode() for i in range(40))
                        if db.owner_of(k) != r]
                for key in keys:
                    assert db.get(key) == b"p" * 64
                # direct reads warmed data blocks under the OWNER's dir
                other_ssids = [s for d, s in db._index_bundles.keys()
                               if d == owner_dir]
                assert other_ssids
                assert any(
                    db.block_cache.cached_blocks(owner_dir, s) > 0
                    for s in other_ssids
                )
                assert db._index_bundles.cost <= \
                    db.options.index_cache_capacity
                assert len(db._peer_reader_cache) <= 256
                db._drop_peer_cache(other, owner_dir)
                assert other not in db._index_views
                assert not [k for k in db._index_bundles.keys()
                            if k[0] == owner_dir]
                assert not [k for k in db._peer_reader_cache.keys()
                            if k[0] == owner_dir]
                assert all(
                    db.block_cache.cached_blocks(owner_dir, s) == 0
                    for s in other_ssids
                )
                # the next get recovers by itself (re-pull)
                assert db.get(keys[0]) == b"p" * 64
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_tiny_bundle_budget_still_serves_correctly(self):
        """With a budget too small to hold every bundle the path keeps
        falling back (or re-pulling) but never serves wrong data."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "ixe", _ix_options(index_cache_capacity=256)
                )
                r = ctx.world_rank
                for gen in range(3):
                    for i in range(40):
                        db.put(f"e-{r}-{i:02d}".encode(), b"m" * 32)
                    db.barrier(SSTABLE)
                other = (r + 1) % ctx.nranks
                for i in range(40):
                    key = f"e-{other}-{i:02d}".encode()
                    if db.owner_of(key) != r:
                        assert db.get(key) == b"m" * 32
                assert db._index_bundles.cost <= 256
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestEagerPublish:
    def test_owner_pushes_bundles_to_its_replica_group(self):
        """With ``replicas=2`` the owner's flush eagerly publishes fresh
        bundles to its ring successor, which installs the view without
        ever sending a pull."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixp", _ix_options(
                    replicas=2, write_quorum=1, remote_timeout=0.2,
                ))
                r = ctx.world_rank
                other = (r + 1) % ctx.nranks
                for i in range(40):
                    db.put(f"p-{r}-{i:02d}".encode(), b"g" * 24)
                db.barrier(SSTABLE)
                db.tick()  # drain this rank's pending publishes
                # publishes are fire-and-forget and a mid-load rotation
                # may push a dirty intermediate view first: wait
                # (wall-clock) for the handler to install the final,
                # memory-clean one.  Check *before* the next barrier —
                # its fence conservatively re-marks every view dirty
                # for read-your-writes.
                view = None
                for _ in range(500):
                    view = db._index_views.get(other)
                    if view is not None and view.mem_clean:
                        break
                    time.sleep(0.01)
                assert view is not None
                assert view.mem_clean and view.quarantine_free
                assert view.ssids  # the pushed bundles cover real tables
                other_dir = f"{db.dbdir}/rank{other}"
                assert all(
                    (other_dir, s) in db._index_bundles
                    for s in view.ssids
                )
                assert db.stats.index_pulls == 0  # pushed, never pulled
                assert db.stats.index_publishes > 0
                db.barrier()
                # group members answer gets from their own replica copy;
                # the pushed view stays warm for post-failover reads
                for i in range(40):
                    key = f"p-{other}-{i:02d}".encode()
                    assert db.get(key) == b"g" * 24
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_push_disabled_leaves_peers_to_pull(self):
        """``index_push_eager=False`` sends nothing: no view appears
        until a get pulls one."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("ixnp", _ix_options(
                    replicas=2, write_quorum=1, remote_timeout=0.2,
                    index_push_eager=False,
                ))
                r = ctx.world_rank
                other = (r + 1) % ctx.nranks
                for i in range(40):
                    db.put(f"n-{r}-{i:02d}".encode(), b"g" * 24)
                db.barrier(SSTABLE)
                db.tick()
                db.barrier()
                time.sleep(0.05)  # a publish, had one been sent, lands
                assert other not in db._index_views
                assert db.stats.index_publishes == 0
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestRankDeath:
    def test_dead_owner_bundles_are_dropped_and_rejected(self):
        """After a rank death the epoch bumps, ``_drop_peer_cache``
        purges the dead owner's views/bundles/blocks, and the one-sided
        path refuses dead owners — gets fail over to the replica.

        Three ranks, replicas=2: rank 2 is outside rank 0's replica
        group, so its warm gets run one-sided against rank 0 — the rank
        the fault plan kills."""
        sync_all = threading.Barrier(3)
        survivors = threading.Barrier(2)
        shared: dict = {}

        def app(ctx):
            env = Papyrus(ctx)
            db = env.open("ixk", _ix_options(
                replicas=2, write_quorum=1, remote_timeout=0.2,
            ))
            r = ctx.world_rank
            own = _keys_of(db, r, n=30, prefix="x")
            for key in own:
                db.put(key, b"s" * 24)
            # fence-then-flush settles the replica fan-out before the
            # flush, so every owner is memory-clean afterwards (nobody
            # is dead yet, so the collective barrier is safe)
            db.barrier(SSTABLE)
            if r == 2:
                warm = _keys_of(db, 0, n=3, prefix="x")
                shared["warm"] = warm
                for key in warm:
                    # the metadata pull rides the wall-clock
                    # remote_timeout; under a loaded machine it can
                    # time out and fall back to the handler, so retry
                    # until the get lands one-sided (the subject here
                    # is the death-path purge, not pull latency)
                    for _ in range(100):
                        res = db.get_ex(key)
                        if res.tier == "index_sstable":
                            break
                        time.sleep(0.05)
                    assert res.value == b"s" * 24
                    assert res.tier == "index_sstable"
                assert 0 in db._index_views
            sync_all.wait()  # rank 2's view is warm; rank 0 may die now
            if r == 0:
                for _ in range(100):  # burn ops into the kill schedule
                    db.put(own[0], b"t" * 8)
                raise AssertionError("victim survived its kill schedule")
            mv = db.membership
            for _ in range(30000):
                db.tick()
                if mv.is_dead(0) and not mv.pending_rereplication:
                    break
            assert mv.is_dead(0)
            if r == 2:
                # the epoch-bump drop point fired: nothing cached from
                # the dead epoch survives, and the path refuses rank 0
                assert 0 not in db._index_views
                dead_dir = f"{db.dbdir}/rank0"
                assert not [k for k in db._index_bundles.keys()
                            if k[0] == dead_dir]
                assert not db._index_direct_eligible(0)
                hits0 = db.stats.index_repl_hits
                for key in shared["warm"]:
                    assert db.get_or_none(key) is not None  # failover
                assert db.stats.index_repl_hits == hits0
            survivors.wait()
            db.srv_comm.send(msg.StopMsg(), db.rank, tag=0)
            db._handler_thread.join(10)
            db._closed = True
            return "survivor-ok"

        faults = FaultPlan(seed=FAULT_SEED).kill_rank(0, nth=40)
        res = spmd_run(3, app, faults=faults, timeout=240)
        assert res[0] is None  # the kill fired
        assert res[1] == "survivor-ok" and res[2] == "survivor-ok"


class TestRaceDetector:
    def test_one_sided_path_is_race_clean(self):
        """Pulls (main thread) racing eager publishes (handler thread)
        run clean under the dynamic detector with the index-cache lock
        in the canonical order."""
        from repro.analysis import runtime

        saved = runtime.get_detector()
        det = runtime.enable(reset=True)
        try:
            def app(ctx):
                with Papyrus(ctx) as env:
                    db = env.open("ixrace", _ix_options(
                        replicas=2, write_quorum=1, remote_timeout=0.2,
                    ))
                    r = ctx.world_rank
                    other = (r + 1) % ctx.nranks
                    for gen in range(3):
                        for i in range(30):
                            db.put(f"z-{r}-{i:02d}".encode(), b"y" * 16)
                        db.barrier(SSTABLE)
                        db.tick()
                        for i in range(30):
                            key = f"z-{other}-{i:02d}".encode()
                            if db._acting_owner(key) == other:
                                assert db.get(key) == b"y" * 16
                        db.barrier()
                    db.close()

            spmd_run(2, app)
            report = det.report()
            assert report["findings"] == [], report["findings"]
        finally:
            runtime.disable()
            runtime.restore(saved)
