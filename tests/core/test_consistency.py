"""Consistency modes: relaxed staging/migration, sequential sync puts,
fence/barrier semantics, signals, dynamic mode switching."""

from __future__ import annotations

import pytest

from repro import (
    MEMTABLE,
    Options,
    Papyrus,
    RELAXED,
    SEQUENTIAL,
    SSTABLE,
)
from repro.errors import InvalidModeError
from repro.mpi.launcher import spmd_run
from tests.conftest import small_options


class TestRelaxed:
    def test_remote_put_stages_locally(self):
        """A relaxed remote put lands in the remote MemTable first."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=RELAXED))
                if ctx.world_rank == 0:
                    # find a key owned by rank 1
                    key = next(
                        f"k{i}".encode() for i in range(1000)
                        if db.owner_of(f"k{i}".encode()) == 1
                    )
                    db.put(key, b"v")
                    res = db.get_ex(key)
                    assert res.tier in ("remote_mt", "inflight")
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_read_your_own_writes(self):
        """Even before migration, the writer sees its own remote puts."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=RELAXED))
                for i in range(200):
                    k = f"k-{ctx.world_rank}-{i}".encode()
                    db.put(k, b"mine")
                    assert db.get(k) == b"mine"
                db.barrier()
                db.close()

        spmd_run(3, app)

    def test_migration_batches(self):
        """Filling the remote MemTable triggers batched migration."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(
                    "d", small_options(remote_memtable_capacity=256)
                )
                if ctx.world_rank == 0:
                    for i in range(300):
                        db.put(f"k{i:04d}".encode(), b"v" * 16)
                    assert db.stats.migrations > 0
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_barrier_makes_writes_globally_visible(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=RELAXED))
                db.put(f"from-{ctx.world_rank}".encode(), b"data")
                db.barrier(MEMTABLE)
                for rr in range(ctx.nranks):
                    assert db.get(f"from-{rr}".encode()) == b"data"
                db.close()

        spmd_run(4, app)

    def test_fence_flushes_remote_memtable(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                if ctx.world_rank == 0:
                    for i in range(50):
                        db.put(f"k{i}".encode(), b"v")
                    db.fence()
                    assert len(db.remote_mt) == 0
                    assert not db._pending_acks
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_barrier_sstable_level_flushes_everything(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                for i in range(100):
                    db.put(f"k-{ctx.world_rank}-{i}".encode(), b"v" * 16)
                db.barrier(SSTABLE)
                assert len(db.local_mt) == 0
                assert not db.flushing
                db.close()

        spmd_run(3, app)


class TestSequential:
    def test_remote_put_immediately_visible(self):
        """In sequential mode a put completes at the owner before returning,
        so a signal-ordered reader must observe it."""

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=SEQUENTIAL))
                if ctx.world_rank == 0:
                    for i in range(40):
                        db.put(f"k{i}".encode(), b"seq")
                    env.signal_notify(1, [1])
                elif ctx.world_rank == 1:
                    env.signal_wait(1, [0])
                    for i in range(40):
                        assert db.get(f"k{i}".encode()) == b"seq"
                db.barrier()
                db.close()

        spmd_run(2, app)

    def test_sequential_does_not_stage(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=SEQUENTIAL))
                for i in range(100):
                    db.put(f"k-{ctx.world_rank}-{i}".encode(), b"v")
                assert len(db.remote_mt) == 0
                assert db.stats.migrations == 0
                db.barrier()
                db.close()

        spmd_run(3, app)

    def test_sequential_delete(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=SEQUENTIAL))
                if ctx.world_rank == 0:
                    db.put(b"k", b"v")
                    db.delete(b"k")
                    env.signal_notify(2, [1])
                else:
                    env.signal_wait(2, [0])
                    assert db.get_or_none(b"k") is None
                db.barrier()
                db.close()

        spmd_run(2, app)


class TestModeSwitching:
    def test_dynamic_switch(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options(consistency=RELAXED))
                db.put(f"r-{ctx.world_rank}".encode(), b"relaxed")
                db.set_consistency(SEQUENTIAL)
                assert db.consistency == SEQUENTIAL
                # the switch fenced: earlier relaxed writes are visible
                for rr in range(ctx.nranks):
                    assert db.get(f"r-{rr}".encode()) == b"relaxed"
                db.put(f"s-{ctx.world_rank}".encode(), b"seq")
                db.set_consistency(RELAXED)
                assert db.consistency == RELAXED
                db.barrier()
                db.close()

        spmd_run(3, app)

    def test_invalid_mode_rejected(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("d", small_options())
                with pytest.raises(InvalidModeError):
                    db.set_consistency(99)
                db.close()

        spmd_run(1, app)

    def test_mode_in_options_validated(self):
        with pytest.raises(InvalidModeError):
            Options(consistency=7)


class TestSignals:
    def test_signal_pairwise(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                if ctx.world_rank == 0:
                    env.signal_notify(5, [1, 2])
                else:
                    env.signal_wait(5, [0])
                ctx.comm.barrier()

        spmd_run(3, app)

    def test_signal_all_to_one(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                if ctx.world_rank == 0:
                    env.signal_wait(9, [1, 2, 3])
                    return "gathered"
                env.signal_notify(9, [0])

        assert spmd_run(4, app)[0] == "gathered"

    def test_distinct_signums_do_not_cross(self):
        def app(ctx):
            with Papyrus(ctx) as env:
                if ctx.world_rank == 0:
                    env.signal_notify(1, [1])
                    env.signal_notify(2, [1])
                else:
                    env.signal_wait(2, [0])  # out of order by signum
                    env.signal_wait(1, [0])
                ctx.comm.barrier()

        spmd_run(2, app)
