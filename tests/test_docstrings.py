"""Quality gate: every public item in the library carries a docstring."""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, "repro.")
)


@pytest.mark.parametrize("modname", MODULES)
def test_module_has_docstring(modname):
    mod = importlib.import_module(modname)
    assert mod.__doc__ and mod.__doc__.strip(), f"{modname} lacks a docstring"


@pytest.mark.parametrize("modname", MODULES)
def test_public_items_documented(modname):
    mod = importlib.import_module(modname)
    undocumented = []
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue
        if getattr(obj, "__module__", None) != modname:
            continue  # re-export: documented at its definition site
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for mname, member in vars(obj).items():
                if mname.startswith("_") or not callable(member):
                    continue
                if isinstance(member, (staticmethod, classmethod)):
                    member = member.__func__
                if not getattr(member, "__doc__", None):
                    undocumented.append(f"{name}.{mname}")
    assert not undocumented, (
        f"{modname}: undocumented public items: {undocumented}"
    )
