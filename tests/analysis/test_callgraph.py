"""Call-graph construction and resolution (repro.analysis.callgraph)."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import build_call_graph, module_name_for


def _graph(**files):
    trees = []
    for path, src in files.items():
        trees.append((path, ast.parse(textwrap.dedent(src), filename=path)))
    return build_call_graph(trees), {p: t for p, t in trees}


def _resolve(graph, caller_qual, tree):
    caller = graph.functions[caller_qual]
    calls = [n for n in ast.walk(caller.node) if isinstance(n, ast.Call)]
    out = []
    for c in calls:
        out.extend(f.qualname for f in graph.resolve_call(caller, c))
    return out


class TestModuleNames:
    def test_src_layout(self):
        assert module_name_for("src/repro/core/db.py") == "repro.core.db"

    def test_package_init(self):
        assert module_name_for("src/repro/core/__init__.py") == "repro.core"

    def test_fixture_fallback(self):
        assert module_name_for("/tmp/x/helper.py") == "helper"


class TestResolution:
    def test_self_method(self):
        g, trees = _graph(**{"src/repro/core/a.py": """
            class D:
                def outer(self):
                    self.inner()
                def inner(self):
                    pass
        """})
        assert _resolve(g, "repro.core.a:D.outer", None) == [
            "repro.core.a:D.inner"
        ]

    def test_base_class_method(self):
        g, _ = _graph(**{"src/repro/core/a.py": """
            class Base:
                def helper(self):
                    pass
            class D(Base):
                def outer(self):
                    self.helper()
        """})
        assert _resolve(g, "repro.core.a:D.outer", None) == [
            "repro.core.a:Base.helper"
        ]

    def test_module_function(self):
        g, _ = _graph(**{"src/repro/core/a.py": """
            def helper():
                pass
            def outer():
                helper()
        """})
        assert _resolve(g, "repro.core.a:outer", None) == [
            "repro.core.a:helper"
        ]

    def test_from_import_across_modules(self):
        g, _ = _graph(**{
            "src/repro/core/a.py": """
                from repro.core.b import helper
                def outer():
                    helper()
            """,
            "src/repro/core/b.py": """
                def helper():
                    pass
            """,
        })
        assert _resolve(g, "repro.core.a:outer", None) == [
            "repro.core.b:helper"
        ]

    def test_module_alias(self):
        g, _ = _graph(**{
            "src/repro/core/a.py": """
                import repro.core.b as b
                def outer():
                    b.helper()
            """,
            "src/repro/core/b.py": """
                def helper():
                    pass
            """,
        })
        assert _resolve(g, "repro.core.a:outer", None) == [
            "repro.core.b:helper"
        ]

    def test_annotated_param_cross_module(self):
        # the handler.py pattern: def _serve(db: Database) -> db.m()
        g, _ = _graph(**{
            "src/repro/core/db.py": """
                class Database:
                    def _retire(self):
                        pass
            """,
            "src/repro/core/handler.py": """
                from repro.core.db import Database
                def serve(db: Database):
                    db._retire()
            """,
        })
        assert _resolve(g, "repro.core.handler:serve", None) == [
            "repro.core.db:Database._retire"
        ]

    def test_unannotated_receiver_stays_unresolved(self):
        # dynamic dispatch is the documented blind spot: never guess
        g, _ = _graph(**{"src/repro/core/a.py": """
            class D:
                def outer(self, worker):
                    worker.schedule(1)
        """})
        assert _resolve(g, "repro.core.a:D.outer", None) == []

    def test_attr_name_collision_not_resolved_by_name(self):
        # a VirtualClock._lock-style collision: obj.advance() must not
        # resolve just because SOME class defines advance()
        g, _ = _graph(**{"src/repro/core/a.py": """
            class Clock:
                def advance(self):
                    pass
            class D:
                def outer(self):
                    self.clock.advance()
        """})
        assert _resolve(g, "repro.core.a:D.outer", None) == []

    def test_cyclic_bases_terminate(self):
        g, _ = _graph(**{"src/repro/core/a.py": """
            class A(B):
                def outer(self):
                    self.ghost()
            class B(A):
                pass
        """})
        assert _resolve(g, "repro.core.a:A.outer", None) == []
