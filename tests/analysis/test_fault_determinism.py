"""Bit-flip faults land on the same bits with the detector on or off.

Flip positions derive from ``(seed, relpath, ordinal)``, so they must
not depend on the cross-thread order in which writes consume
randomness — an order the detector's instrumentation perturbs.
"""

from __future__ import annotations

from repro import FaultPlan, Papyrus, SSTABLE, spmd_run
from repro.analysis import runtime as rt
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from tests.conftest import small_options


def _run_flips(base_dir):
    machine = Machine(SUMMITDEV, 2, base_dir=str(base_dir))
    # one rule per concrete file: "the nth .ssd write anywhere" would
    # pick its victim by cross-thread write order, which is genuinely
    # schedule-dependent — the guarantee under test is that the flipped
    # *bit within a given file* no longer is
    plan = (
        FaultPlan(seed=7)
        .bit_flip("rank0/0000000001.ssd")
        .bit_flip("rank0/0000000002.ssd")
        .bit_flip("rank1/0000000001.ssd")
    )

    def app(ctx):
        with Papyrus(ctx) as env:
            # compaction disabled: flipped tables are never re-read,
            # so the writer run itself completes cleanly
            db = env.open("det", small_options(compaction_interval=10**6))
            for i in range(120):
                db.put(f"dk{ctx.world_rank}{i:03d}".encode(), b"x" * 64)
            db.barrier(SSTABLE)
            db.close()

    spmd_run(2, app, machine=machine, faults=plan, timeout=120)
    machine.close()
    flips = sorted(f for f in plan.fired if f.startswith("bit_flip"))
    assert len(flips) == 3
    return flips


def test_flips_identical_with_and_without_detector(tmp_path):
    prev = rt.disable()
    try:
        plain = _run_flips(tmp_path / "plain")
        rt.enable(reset=True)
        detected = _run_flips(tmp_path / "detect")
    finally:
        rt.restore(prev)
    assert plain == detected


def test_flips_identical_across_repeated_runs(tmp_path, no_detector):
    assert _run_flips(tmp_path / "a") == _run_flips(tmp_path / "b")
