"""The docs, the allowlist, and the wire-tag table cannot drift."""

from __future__ import annotations

import inspect
from pathlib import Path

import repro.core.messages as messages
from repro.analysis.lock_order import LOCK_ORDER, render_markdown
from repro.analysis.pkvlint import lint_paths

REPO = Path(__file__).resolve().parents[2]

BEGIN = "<!-- lock-order:begin -->"
END = "<!-- lock-order:end -->"


def test_architecture_lock_order_section_is_generated():
    text = (REPO / "docs" / "architecture.md").read_text()
    assert BEGIN in text and END in text
    embedded = text.split(BEGIN, 1)[1].split(END, 1)[0].strip()
    assert embedded == render_markdown().strip()


def test_lock_order_levels_strictly_increase():
    levels = [lc.level for lc in LOCK_ORDER]
    assert levels == sorted(levels)
    assert len(set(levels)) == len(levels)


def test_source_tree_lints_clean():
    findings = lint_paths(
        [str(REPO / "src")], allowlist=str(REPO / ".pkvlint-allow")
    )
    assert findings == [], "\n".join(f.render() for f in findings)


def test_wire_tags_cover_every_message_class():
    classes = {
        name for name, obj in vars(messages).items()
        if inspect.isclass(obj) and obj.__module__ == messages.__name__
        and (name.endswith("Msg") or name.endswith("Reply"))
    }
    assert set(messages.WIRE_TAGS) == classes
    tags = list(messages.WIRE_TAGS.values())
    assert len(set(tags)) == len(tags), "wire tags must be unique"
    assert all(isinstance(t, int) for t in tags)
