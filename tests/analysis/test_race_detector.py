"""Synthetic two-thread programs: each HB edge, triggering and not."""

from __future__ import annotations

import threading
from types import SimpleNamespace

from repro.analysis import runtime as rt
from repro.util.queues import BoundedFIFO


class Shared:
    """A plain object carrying annotated shared state."""


def _run(*targets):
    threads = [threading.Thread(target=t) for t in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return threads


def _races(det):
    return [f for f in det.findings() if f.rule == "RACE"]


class TestLockEdge:
    def test_unsynchronized_writes_race(self, detector):
        obj = Shared()

        def writer():
            rt.annotate_write(obj, "x")

        _run(writer, writer)
        (f,) = _races(detector)
        assert "data race on x" in f.message

    def test_lock_synchronized_writes_clean(self, detector):
        obj = Shared()
        lock = rt.make_lock("db.readers")

        def writer():
            with lock:
                rt.annotate_write(obj, "x")

        _run(writer, writer)
        assert _races(detector) == []

    def test_read_write_race(self, detector):
        obj = Shared()

        def writer():
            rt.annotate_write(obj, "x")

        def reader():
            rt.annotate_read(obj, "x")

        _run(writer, reader)
        assert len(_races(detector)) == 1

    def test_concurrent_reads_clean(self, detector):
        obj = Shared()

        def reader():
            rt.annotate_read(obj, "x")

        _run(reader, reader)
        assert _races(detector) == []

    def test_distinct_locations_independent(self, detector):
        obj = Shared()

        def writer_x():
            rt.annotate_write(obj, "x")

        def writer_y():
            rt.annotate_write(obj, "y")

        _run(writer_x, writer_y)
        assert _races(detector) == []


class TestJoinEdge:
    def test_join_orders_child_before_parent(self, detector):
        obj = Shared()

        def child():
            rt.annotate_write(obj, "x")
            detector.finalize_thread()

        t = threading.Thread(target=child)
        t.start()
        t.join()
        detector.absorb_thread(t)
        rt.annotate_write(obj, "x")
        assert _races(detector) == []

    def test_missing_join_edge_races(self, detector):
        obj = Shared()

        def child():
            rt.annotate_write(obj, "x")
            detector.finalize_thread()

        t = threading.Thread(target=child)
        t.start()
        t.join()
        # no absorb_thread: the physical join is invisible to HB
        rt.annotate_write(obj, "x")
        assert len(_races(detector)) == 1


class TestMessageEdge:
    def test_send_recv_orders_accesses(self, detector):
        obj = Shared()
        env = SimpleNamespace()
        handed = threading.Event()

        def sender():
            rt.annotate_write(obj, "x")
            detector.on_send(env)
            handed.set()

        def receiver():
            handed.wait(5)
            detector.on_recv(env)
            rt.annotate_read(obj, "x")

        _run(sender, receiver)
        assert _races(detector) == []

    def test_without_recv_edge_races(self, detector):
        obj = Shared()
        env = SimpleNamespace()
        handed = threading.Event()

        def sender():
            rt.annotate_write(obj, "x")
            detector.on_send(env)
            handed.set()

        def receiver():
            handed.wait(5)
            rt.annotate_read(obj, "x")

        _run(sender, receiver)
        assert len(_races(detector)) == 1


class TestBarrierEdge:
    def test_barrier_orders_phases(self, detector):
        obj = Shared()
        bar = threading.Barrier(2)
        key = object()

        def writer():
            rt.annotate_write(obj, "x")
            detector.on_barrier_arrive(key)
            bar.wait(5)
            detector.on_barrier_depart(key)

        def reader():
            detector.on_barrier_arrive(key)
            bar.wait(5)
            detector.on_barrier_depart(key)
            rt.annotate_read(obj, "x")

        _run(writer, reader)
        assert _races(detector) == []

    def test_without_barrier_hooks_races(self, detector):
        obj = Shared()
        bar = threading.Barrier(2)

        def writer():
            rt.annotate_write(obj, "x")
            bar.wait(5)

        def reader():
            bar.wait(5)
            rt.annotate_read(obj, "x")

        _run(writer, reader)
        assert len(_races(detector)) == 1


class TestHandoffEdge:
    def test_handoff_clock_orders_item_state(self, detector):
        obj = Shared()
        box = {}
        handed = threading.Event()

        def producer():
            rt.annotate_write(obj, "x")
            box["vc"] = detector.on_handoff_send()
            handed.set()

        def consumer():
            handed.wait(5)
            detector.on_handoff_recv(box["vc"])
            rt.annotate_read(obj, "x")

        _run(producer, consumer)
        assert _races(detector) == []

    def test_bounded_fifo_hand_off_clean(self, detector):
        obj = Shared()
        q = BoundedFIFO(4)

        def producer():
            rt.annotate_write(obj, "x")
            q.put(obj)

        def consumer():
            item = q.get(timeout=5)
            rt.annotate_read(item, "x")

        _run(producer, consumer)
        assert _races(detector) == []
        assert detector.counts["handoffs"] == 1
