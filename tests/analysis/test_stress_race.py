"""The 4-rank stress workload runs clean under the detector."""

from __future__ import annotations

from repro.analysis.stress import run_stress


def test_stress_has_zero_findings_and_real_coverage():
    report = run_stress()
    assert report["version"] == 1
    assert report["findings"] == [], report["findings"]
    s = report["summary"]
    # the run must actually exercise the instrumented machinery —
    # a zero-findings report with zero coverage would prove nothing
    assert s["locations"] > 10
    assert s["reads"] > 100 and s["writes"] > 100
    assert s["acquires"] > 100
    assert s["sends"] > 50 and s["recvs"] > 50
    assert s["barriers"] > 10
