"""Regression: the races this PR fixed stay fixed.

Each test re-installs the *pre-fix* body of a fixed code path and
asserts the detector flags it on the stress workload — proving both
that the fix is load-bearing and that the detector would catch a
reintroduction.
"""

from __future__ import annotations

from repro.analysis.runtime import annotate_read, annotate_write
from repro.analysis.stress import run_stress
from repro.core.db import Database
from repro.sstable.reader import SSTableReader


def _old_unlocked_reader(self, ssid):
    """``Database._reader`` as it was before `db.readers` existed:
    handler and rank-main threads mutate the dict with no common lock."""
    annotate_read(self, "db.readers")
    rd = self._readers.get(ssid)
    if rd is None:
        rd = SSTableReader(self.store, self.rank_dir, ssid)
        annotate_write(self, "db.readers")
        self._readers[ssid] = rd
    return rd


def test_unlocked_reader_cache_is_flagged(monkeypatch):
    monkeypatch.setattr(Database, "_reader", _old_unlocked_reader)
    # FastTrack keeps last-access epochs, not full history, so one
    # scheduling-lucky interleaving can mask the race; a couple of
    # attempts make the verdict about the code, not the scheduler
    report = None
    for _attempt in range(3):
        report = run_stress()
        races = [f for f in report["findings"]
                 if f["rule"] == "RACE" and "db.readers" in f["message"]]
        if races:
            return
    raise AssertionError(f"unlocked reader cache never flagged: {report}")
