"""Shared fixtures: isolate the process-wide detector per test."""

from __future__ import annotations

import pytest

from repro.analysis import runtime as rt


@pytest.fixture
def detector():
    """A fresh enabled detector; the previous one is restored after."""
    prev = rt.get_detector()
    det = rt.enable(reset=True)
    yield det
    rt.restore(prev)


@pytest.fixture
def no_detector():
    """Force detection off for the test; restore the prior state after."""
    prev = rt.disable()
    yield
    rt.restore(prev)
