"""Fixture programs triggering (and not triggering) each pkvlint rule."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.findings import findings_to_json
from repro.analysis.pkvlint import lint_file, lint_paths


def _lint(src: str, path: str = "x.py"):
    return lint_file(path, src=textwrap.dedent(src))


def _rules(findings):
    return [f.rule for f in findings]


class TestR001CommUnderLock:
    def test_send_under_db_lock_flags(self):
        fs = _lint("""
            def migrate(self):
                with self._lock:
                    self.srv_comm.send(chunk, owner)
        """)
        assert _rules(fs) == ["R001"]
        assert fs[0].line == 4
        assert "migrate" in fs[0].function

    def test_recv_under_queue_condition_flags(self):
        fs = _lint("""
            def drain(self):
                with self._not_empty:
                    self.comm.recv()
        """)
        assert _rules(fs) == ["R001"]

    def test_send_outside_lock_clean(self):
        fs = _lint("""
            def migrate(self):
                with self._lock:
                    chunk = self._swap()
                self.srv_comm.send(chunk, owner)
        """)
        assert fs == []

    def test_nested_def_resets_lock_scope(self):
        # a deferred job body does NOT run under the enclosing with
        fs = _lint("""
            def enqueue(self):
                with self._lock:
                    def job(start):
                        self.srv_comm.send(x, 1)
                        return start
                    self.worker.schedule(job)
        """)
        assert fs == []

    def test_non_comm_receiver_clean(self):
        fs = _lint("""
            def f(self):
                with self._lock:
                    self.mailer.send(x, 1)
        """)
        assert fs == []


class TestR002RenameWithoutFsync:
    def test_os_replace_without_fsync_flags(self):
        fs = _lint("""
            import os
            def publish(tmp, final):
                os.replace(tmp, final)
        """)
        assert _rules(fs) == ["R002"]

    def test_fsync_before_rename_clean(self):
        fs = _lint("""
            import os
            def publish(fd, tmp, final):
                os.fsync(fd)
                os.replace(tmp, final)
        """)
        assert fs == []

    def test_helper_fsync_name_counts(self):
        fs = _lint("""
            import os
            def publish(tmp, final, d):
                _fsync_dir(d)
                os.rename(tmp, final)
        """)
        assert fs == []

    def test_str_replace_not_flagged(self):
        fs = _lint("""
            def slug(name):
                return name.replace(".", "_")
        """)
        assert fs == []


class TestR004LockOrder:
    def test_inverted_nesting_flags(self):
        fs = _lint("""
            def f(self):
                with self._not_full:
                    with self._lock:
                        pass
        """)
        assert _rules(fs) == ["R004"]

    def test_canonical_nesting_clean(self):
        fs = _lint("""
            def f(self):
                with self._lock:
                    with self._readers_lock:
                        pass
        """)
        assert fs == []

    def test_unregistered_attr_ignored(self):
        fs = _lint("""
            def f(self):
                with self._not_full:
                    with self._my_private_lock:
                        pass
        """)
        assert fs == []


class TestR005ExceptionHygiene:
    def test_bare_except_flags(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        assert _rules(fs) == ["R005"]

    def test_swallowed_corruption_flags(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except CorruptionError:
                    pass
        """)
        assert _rules(fs) == ["R005"]

    def test_handled_corruption_clean(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except CorruptionError:
                    quarantine()
                    raise
        """)
        assert fs == []

    def test_module_level_bare_except_flags(self):
        fs = _lint("""
            try:
                import fast_impl
            except:
                fast_impl = None
        """)
        assert _rules(fs) == ["R005"]


class TestR003WireTags:
    def _write(self, tmp_path, messages_src, handler_src="x = GetMsg\n"):
        (tmp_path / "messages.py").write_text(textwrap.dedent(messages_src))
        (tmp_path / "handler.py").write_text(textwrap.dedent(handler_src))
        return str(tmp_path / "messages.py")

    def test_missing_wire_tags_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
        """)
        assert "R003" in _rules(lint_file(path))

    def test_missing_entry_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class PutMsg:
                pass
            WIRE_TAGS = {"GetMsg": 1}
        """, handler_src="x = (GetMsg, PutMsg)\n")
        fs = lint_file(path)
        assert any(f.rule == "R003" and "PutMsg" in f.message for f in fs)

    def test_duplicate_tag_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class PutMsg:
                pass
            WIRE_TAGS = {"GetMsg": 1, "PutMsg": 1}
        """, handler_src="x = (GetMsg, PutMsg)\n")
        fs = lint_file(path)
        assert any(f.rule == "R003" and "unique" in f.message for f in fs)

    def test_unreferenced_msg_class_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class LostMsg:
                pass
            WIRE_TAGS = {"GetMsg": 1, "LostMsg": 2}
        """)
        fs = lint_file(path)
        assert any(f.rule == "R003" and "LostMsg" in f.message for f in fs)

    def test_constant_references_resolve(self, tmp_path):
        path = self._write(tmp_path, """
            GET = 3
            class GetMsg:
                pass
            WIRE_TAGS = {"GetMsg": GET}
        """)
        assert lint_file(path) == []

    def test_orphan_reply_class_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class GhostReply:
                pass
            WIRE_TAGS = {"GetMsg": 1, "GhostReply": 2}
        """)
        fs = lint_file(path)
        assert any(f.rule == "R003" and "GhostReply" in f.message for f in fs)

    def test_reply_referenced_by_db_is_clean(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class GetReply:
                pass
            WIRE_TAGS = {"GetMsg": 1, "GetReply": 2}
        """)
        (tmp_path / "db.py").write_text("x = GetReply\n")
        assert lint_file(path) == []

    def test_reply_referenced_by_handler_is_clean(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class GetReply:
                pass
            WIRE_TAGS = {"GetMsg": 1, "GetReply": 2}
        """, handler_src="x = (GetMsg, GetReply)\n")
        assert lint_file(path) == []

    def test_index_replication_message_family_is_clean(self, tmp_path):
        """The one-sided index-replication wire family lints clean: both
        request classes are dispatched by the handler, the pull reply is
        awaited by db.py, and every tag resolves through a constant."""
        path = self._write(tmp_path, """
            INDEX_PULL = 12
            INDEX_PUBLISH = 13
            class IndexPullMsg:
                pass
            class IndexPublishMsg:
                pass
            class IndexPullReply:
                pass
            WIRE_TAGS = {
                "IndexPullMsg": INDEX_PULL,
                "IndexPublishMsg": INDEX_PUBLISH,
                "IndexPullReply": 105,
            }
        """, handler_src="x = (IndexPullMsg, IndexPublishMsg)\n")
        (tmp_path / "db.py").write_text("x = IndexPullReply\n")
        assert lint_file(path) == []

    def test_index_publish_without_handler_arm_flags(self, tmp_path):
        """A fire-and-forget publish class that the handler never
        dispatches is dead wire surface and gets flagged."""
        path = self._write(tmp_path, """
            class IndexPullMsg:
                pass
            class IndexPublishMsg:
                pass
            WIRE_TAGS = {"IndexPullMsg": 12, "IndexPublishMsg": 13}
        """, handler_src="x = IndexPullMsg\n")
        fs = lint_file(path)
        assert any(
            f.rule == "R003" and "IndexPublishMsg" in f.message for f in fs
        )


class TestSuppressionAndOutput:
    def test_inline_suppression(self):
        fs = _lint("""
            import os
            def publish(tmp, final):
                os.replace(tmp, final)  # pkvlint: disable=R002
        """)
        assert fs == []

    def test_inline_suppression_wrong_rule_keeps_finding(self):
        fs = _lint("""
            import os
            def publish(tmp, final):
                os.replace(tmp, final)  # pkvlint: disable=R001
        """)
        assert _rules(fs) == ["R002"]

    def test_allowlist(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\ndef f(a, b):\n    os.replace(a, b)\n")
        allow = tmp_path / "allow"
        allow.write_text("R002 bad.py::f\n")
        assert lint_paths([str(bad)], allowlist=str(allow)) == []
        # a non-matching entry does not suppress
        allow.write_text("R002 other.py::g\n")
        assert len(lint_paths([str(bad)], allowlist=str(allow))) == 1

    def test_json_schema(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        doc = json.loads(findings_to_json(fs))
        assert doc["version"] == 1
        (f,) = doc["findings"]
        assert set(f) == {"tool", "rule", "message", "path", "line",
                          "function", "details"}
        assert f["rule"] == "R005"

    def test_syntax_error_reported_not_raised(self):
        fs = _lint("def f(:\n")
        assert _rules(fs) == ["SYNTAX"]
