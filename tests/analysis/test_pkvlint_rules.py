"""Fixture programs triggering (and not triggering) each pkvlint rule."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.findings import findings_to_json
from repro.analysis.pkvlint import lint_file, lint_paths


def _lint(src: str, path: str = "x.py"):
    return lint_file(path, src=textwrap.dedent(src))


def _rules(findings):
    return [f.rule for f in findings]


class TestR001CommUnderLock:
    def test_send_under_db_lock_flags(self):
        fs = _lint("""
            def migrate(self):
                with self._lock:
                    self.srv_comm.send(chunk, owner)
        """)
        assert _rules(fs) == ["R001"]
        assert fs[0].line == 4
        assert "migrate" in fs[0].function

    def test_recv_under_queue_condition_flags(self):
        fs = _lint("""
            def drain(self):
                with self._not_empty:
                    self.comm.recv()
        """)
        assert _rules(fs) == ["R001"]

    def test_send_outside_lock_clean(self):
        fs = _lint("""
            def migrate(self):
                with self._lock:
                    chunk = self._swap()
                self.srv_comm.send(chunk, owner)
        """)
        assert fs == []

    def test_nested_def_resets_lock_scope(self):
        # a deferred job body does NOT run under the enclosing with
        fs = _lint("""
            def enqueue(self):
                with self._lock:
                    def job(start):
                        self.srv_comm.send(x, 1)
                        return start
                    self.worker.schedule(job)
        """)
        assert fs == []

    def test_non_comm_receiver_clean(self):
        fs = _lint("""
            def f(self):
                with self._lock:
                    self.mailer.send(x, 1)
        """)
        assert fs == []


class TestR002RenameWithoutFsync:
    def test_os_replace_without_fsync_flags(self):
        fs = _lint("""
            import os
            def publish(tmp, final):
                os.replace(tmp, final)
        """)
        assert _rules(fs) == ["R002"]

    def test_fsync_before_rename_clean(self):
        fs = _lint("""
            import os
            def publish(fd, tmp, final):
                os.fsync(fd)
                os.replace(tmp, final)
        """)
        assert fs == []

    def test_helper_fsync_name_counts(self):
        fs = _lint("""
            import os
            def publish(tmp, final, d):
                _fsync_dir(d)
                os.rename(tmp, final)
        """)
        assert fs == []

    def test_str_replace_not_flagged(self):
        fs = _lint("""
            def slug(name):
                return name.replace(".", "_")
        """)
        assert fs == []


class TestR004LockOrder:
    def test_inverted_nesting_flags(self):
        fs = _lint("""
            def f(self):
                with self._not_full:
                    with self._lock:
                        pass
        """)
        assert _rules(fs) == ["R004"]

    def test_canonical_nesting_clean(self):
        fs = _lint("""
            def f(self):
                with self._lock:
                    with self._readers_lock:
                        pass
        """)
        assert fs == []

    def test_unregistered_attr_ignored(self):
        fs = _lint("""
            def f(self):
                with self._not_full:
                    with self._my_private_lock:
                        pass
        """)
        assert fs == []


class TestR005ExceptionHygiene:
    def test_bare_except_flags(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        assert _rules(fs) == ["R005"]

    def test_swallowed_corruption_flags(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except CorruptionError:
                    pass
        """)
        assert _rules(fs) == ["R005"]

    def test_handled_corruption_clean(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except CorruptionError:
                    quarantine()
                    raise
        """)
        assert fs == []

    def test_module_level_bare_except_flags(self):
        fs = _lint("""
            try:
                import fast_impl
            except:
                fast_impl = None
        """)
        assert _rules(fs) == ["R005"]


class TestR003WireTags:
    def _write(self, tmp_path, messages_src, handler_src="x = GetMsg\n"):
        (tmp_path / "messages.py").write_text(textwrap.dedent(messages_src))
        (tmp_path / "handler.py").write_text(textwrap.dedent(handler_src))
        return str(tmp_path / "messages.py")

    def test_missing_wire_tags_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
        """)
        assert "R003" in _rules(lint_file(path))

    def test_missing_entry_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class PutMsg:
                pass
            WIRE_TAGS = {"GetMsg": 1}
        """, handler_src="x = (GetMsg, PutMsg)\n")
        fs = lint_file(path)
        assert any(f.rule == "R003" and "PutMsg" in f.message for f in fs)

    def test_duplicate_tag_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class PutMsg:
                pass
            WIRE_TAGS = {"GetMsg": 1, "PutMsg": 1}
        """, handler_src="x = (GetMsg, PutMsg)\n")
        fs = lint_file(path)
        assert any(f.rule == "R003" and "unique" in f.message for f in fs)

    def test_unreferenced_msg_class_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class LostMsg:
                pass
            WIRE_TAGS = {"GetMsg": 1, "LostMsg": 2}
        """)
        fs = lint_file(path)
        assert any(f.rule == "R003" and "LostMsg" in f.message for f in fs)

    def test_constant_references_resolve(self, tmp_path):
        path = self._write(tmp_path, """
            GET = 3
            class GetMsg:
                pass
            WIRE_TAGS = {"GetMsg": GET}
        """)
        assert lint_file(path) == []

    def test_orphan_reply_class_flags(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class GhostReply:
                pass
            WIRE_TAGS = {"GetMsg": 1, "GhostReply": 2}
        """)
        fs = lint_file(path)
        assert any(f.rule == "R003" and "GhostReply" in f.message for f in fs)

    def test_reply_referenced_by_db_is_clean(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class GetReply:
                pass
            WIRE_TAGS = {"GetMsg": 1, "GetReply": 2}
        """)
        (tmp_path / "db.py").write_text("x = GetReply\n")
        assert lint_file(path) == []

    def test_reply_referenced_by_handler_is_clean(self, tmp_path):
        path = self._write(tmp_path, """
            class GetMsg:
                pass
            class GetReply:
                pass
            WIRE_TAGS = {"GetMsg": 1, "GetReply": 2}
        """, handler_src="x = (GetMsg, GetReply)\n")
        assert lint_file(path) == []

    def test_index_replication_message_family_is_clean(self, tmp_path):
        """The one-sided index-replication wire family lints clean: both
        request classes are dispatched by the handler, the pull reply is
        awaited by db.py, and every tag resolves through a constant."""
        path = self._write(tmp_path, """
            INDEX_PULL = 12
            INDEX_PUBLISH = 13
            class IndexPullMsg:
                pass
            class IndexPublishMsg:
                pass
            class IndexPullReply:
                pass
            WIRE_TAGS = {
                "IndexPullMsg": INDEX_PULL,
                "IndexPublishMsg": INDEX_PUBLISH,
                "IndexPullReply": 105,
            }
        """, handler_src="x = (IndexPullMsg, IndexPublishMsg)\n")
        (tmp_path / "db.py").write_text("x = IndexPullReply\n")
        assert lint_file(path) == []

    def test_index_publish_without_handler_arm_flags(self, tmp_path):
        """A fire-and-forget publish class that the handler never
        dispatches is dead wire surface and gets flagged."""
        path = self._write(tmp_path, """
            class IndexPullMsg:
                pass
            class IndexPublishMsg:
                pass
            WIRE_TAGS = {"IndexPullMsg": 12, "IndexPublishMsg": 13}
        """, handler_src="x = IndexPullMsg\n")
        fs = lint_file(path)
        assert any(
            f.rule == "R003" and "IndexPublishMsg" in f.message for f in fs
        )


class TestInterproceduralR001:
    """The lexical escape that motivated v2: a helper that does the
    blocking comm while its *caller* holds the registered lock."""

    FIXTURE = """
        class Dispatcher:
            def flush_window(self):
                with self._lock:
                    self._fan_out_batch()

            def _fan_out_batch(self):
                self.srv_comm.fanout(self._batch, self._peers)
    """

    def test_old_lexical_mode_misses_helper_chain(self):
        fs = lint_file("x.py", src=textwrap.dedent(self.FIXTURE),
                       interprocedural=False)
        assert fs == []  # exactly the PR-4 blind spot

    def test_callgraph_mode_catches_helper_chain(self):
        fs = _lint(self.FIXTURE)
        assert _rules(fs) == ["R001"]
        (f,) = fs
        assert f.function == "Dispatcher.flush_window"
        assert "_lock" in f.message
        # the finding carries the full call path to the comm site
        assert any("_fan_out_batch" in hop for hop in f.call_path)
        assert any("fanout" in hop for hop in f.call_path)

    def test_two_hop_chain_flags(self):
        fs = _lint("""
            class D:
                def outer(self):
                    with self._mv_lock:
                        self.middle()
                def middle(self):
                    self.inner()
                def inner(self):
                    self.comm.recv()
        """)
        assert "R001" in _rules(fs)
        (f,) = [f for f in fs if f.rule == "R001"]
        assert len(f.call_path) == 3  # middle -> inner -> recv site

    def test_helper_comm_outside_callers_lock_clean(self):
        fs = _lint("""
            class D:
                def outer(self):
                    with self._lock:
                        x = self.prep()
                    self.helper()
                def prep(self):
                    return 1
                def helper(self):
                    self.comm.send(1, 2)
        """)
        assert fs == []

    def test_module_level_helper_resolves(self):
        fs = _lint("""
            def fan(comm, batch):
                comm.fanout(batch, ())

            class D:
                def go(self):
                    with self._lock:
                        fan(self.comm, self.batch)
        """)
        assert _rules(fs) == ["R001"]

    def test_annotated_param_receiver_resolves(self):
        fs = _lint("""
            class Database:
                def _drain(self):
                    self.ack_comm.recv()

            def serve(db: Database):
                with db._lock:
                    db._drain()
        """)
        assert _rules(fs) == ["R001"]
        assert fs[0].function == "serve"


class TestInterproceduralR004:
    def test_helper_acquiring_lower_lock_flags(self):
        fs = _lint("""
            class D:
                def outer(self):
                    with self._not_full:
                        self.helper()
                def helper(self):
                    with self._lock:
                        pass
        """)
        assert _rules(fs) == ["R004"]
        (f,) = fs
        assert "helper" in " ".join(f.call_path)

    def test_helper_acquiring_higher_lock_clean(self):
        fs = _lint("""
            class D:
                def outer(self):
                    with self._lock:
                        self.helper()
                def helper(self):
                    with self._readers_lock:
                        pass
        """)
        assert fs == []

    def test_rlock_reentry_through_helper_clean(self):
        # db.state is an RLock: re-entering it via a helper is not an
        # inversion
        fs = _lint("""
            class D:
                def outer(self):
                    with self._lock:
                        self.helper()
                def helper(self):
                    with self._lock:
                        pass
        """)
        assert fs == []


class TestR002Reachability:
    def test_unsynced_write_in_persistence_module_flags(self):
        fs = lint_file("src/repro/nvm/store.py", src=textwrap.dedent("""
            class Store:
                def append(self, p, data):
                    with open(p, "ab") as f:
                        f.write(data)
        """))
        assert _rules(fs) == ["R002"]
        assert "fsync" in fs[0].message

    def test_write_then_fsync_clean(self):
        fs = lint_file("src/repro/nvm/store.py", src=textwrap.dedent("""
            import os
            class Store:
                def put(self, p, data):
                    with open(p, "wb") as f:
                        f.write(data)
                        os.fsync(f.fileno())
        """))
        assert fs == []

    def test_branch_missing_fsync_flags(self):
        # must reach durability on ALL paths, not just one branch
        fs = lint_file("src/repro/nvm/store.py", src=textwrap.dedent("""
            import os
            class Store:
                def put(self, p, data, sync):
                    with open(p, "wb") as f:
                        f.write(data)
                        if sync:
                            os.fsync(f.fileno())
        """))
        assert _rules(fs) == ["R002"]

    def test_helper_write_with_caller_fsync_clean(self):
        # the write escapes the helper but the call-graph root syncs it
        fs = lint_file("src/repro/nvm/store.py", src=textwrap.dedent("""
            import os
            class Store:
                def put(self, p, data):
                    fd = self._raw_write(p, data)
                    os.fsync(fd)
                def _raw_write(self, p, data):
                    with open(p, "wb") as f:
                        f.write(data)
                    return 0
        """))
        assert fs == []

    def test_non_persistence_module_not_checked(self):
        fs = lint_file("src/repro/tools/export.py", src=textwrap.dedent("""
            def dump(p, data):
                with open(p, "w") as f:
                    f.write(data)
        """))
        assert fs == []

    def test_helper_fsync_counts_for_rename(self):
        fs = _lint("""
            import os
            class Store:
                def publish(self, tmp, final):
                    self._sync_meta(tmp)
                    os.replace(tmp, final)
                def _sync_meta(self, p):
                    os.fsync(p)
        """)
        assert fs == []


class TestR007WallClockTaint:
    def test_direct_flow_flags(self):
        fs = _lint("""
            import time
            class D:
                def tick(self):
                    self.clock.advance_to(time.time())
        """)
        assert _rules(fs) == ["R007"]

    def test_flow_through_variable_flags(self):
        fs = _lint("""
            import time
            class D:
                def tick(self):
                    now = time.time()
                    self.clock.advance(now)
        """)
        assert _rules(fs) == ["R007"]

    def test_flow_through_helper_return_flags(self):
        fs = _lint("""
            import time
            class D:
                def _wall(self):
                    return time.monotonic()
                def tick(self):
                    self.clock.advance_to(self._wall())
        """)
        assert _rules(fs) == ["R007"]
        (f,) = fs
        assert any("_wall" in hop for hop in f.call_path)

    def test_send_at_sink_flags(self):
        fs = _lint("""
            from time import monotonic
            class D:
                def go(self):
                    t = monotonic()
                    self.comm.send_at(self.m, 1, t)
        """)
        assert _rules(fs) == ["R007"]

    def test_virtual_time_clean(self):
        fs = _lint("""
            class D:
                def tick(self):
                    self.clock.advance_to(self.clock.now + 0.5)
                    self.comm.send_at(self.m, 1, self.clock.now)
        """)
        assert fs == []

    def test_reassignment_clears_taint(self):
        fs = _lint("""
            import time
            class D:
                def tick(self):
                    t = time.time()
                    t = self.clock.now
                    self.clock.advance_to(t)
        """)
        assert fs == []

    def test_wallclock_for_logging_clean(self):
        fs = _lint("""
            import time
            class D:
                def log(self):
                    self.last_report = time.time()
        """)
        assert fs == []


class TestSuppressionAndOutput:
    def test_inline_suppression(self):
        fs = _lint("""
            import os
            def publish(tmp, final):
                os.replace(tmp, final)  # pkvlint: disable=R002
        """)
        assert fs == []

    def test_inline_suppression_wrong_rule_keeps_finding(self):
        fs = _lint("""
            import os
            def publish(tmp, final):
                os.replace(tmp, final)  # pkvlint: disable=R001
        """)
        assert _rules(fs) == ["R002"]

    def test_allowlist(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import os\ndef f(a, b):\n    os.replace(a, b)\n")
        allow = tmp_path / "allow"
        allow.write_text("R002 bad.py::f\n")
        assert lint_paths([str(bad)], allowlist=str(allow)) == []
        # a non-matching entry does not suppress
        allow.write_text("R002 other.py::g\n")
        assert len(lint_paths([str(bad)], allowlist=str(allow))) == 1

    def test_json_schema(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        doc = json.loads(findings_to_json(fs))
        assert doc["version"] == 2
        (f,) = doc["findings"]
        assert set(f) == {"tool", "rule", "message", "path", "line",
                          "function", "call_path", "details"}
        assert f["rule"] == "R005"

    def test_json_schema_v1_downgrade(self):
        fs = _lint("""
            def f():
                try:
                    g()
                except:
                    pass
        """)
        doc = json.loads(findings_to_json(fs, version=1))
        assert doc["version"] == 1
        (f,) = doc["findings"]
        assert set(f) == {"tool", "rule", "message", "path", "line",
                          "function", "details"}

    def test_syntax_error_reported_not_raised(self):
        fs = _lint("def f(:\n")
        assert _rules(fs) == ["SYNTAX"]
