"""Lock-order and lock-graph deadlock findings on synthetic programs."""

from __future__ import annotations

from repro.analysis import runtime as rt
from repro.analysis.deadlock import LockGraph


def _rules(det):
    return [f.rule for f in det.findings()]


class TestLockOrderCheck:
    def test_inverted_acquisition_flags(self, detector):
        low = rt.make_rlock("db.state")      # level 10
        high = rt.make_lock("queue.fifo")    # level 60
        with high:
            with low:
                pass
        fs = [f for f in detector.findings() if f.rule == "LOCK_ORDER"]
        (f,) = fs
        assert "db.state" in f.message and "queue.fifo" in f.message

    def test_canonical_acquisition_clean(self, detector):
        low = rt.make_rlock("db.state")
        high = rt.make_lock("queue.fifo")
        with low:
            with high:
                pass
        assert "LOCK_ORDER" not in _rules(detector)
        assert "DEADLOCK" not in _rules(detector)

    def test_reentrant_rlock_not_flagged(self, detector):
        lock = rt.make_rlock("db.state")
        with lock:
            with lock:
                pass
        assert detector.findings() == []


class TestDeadlockCycles:
    def test_abba_same_class_flags(self, detector):
        # two queue.fifo instances: equal level, so no LOCK_ORDER noise,
        # but the per-instance graph still sees the ABBA cycle
        a = rt.make_lock("queue.fifo")
        b = rt.make_lock("queue.fifo")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        fs = [f for f in detector.findings() if f.rule == "DEADLOCK"]
        assert len(fs) == 1
        assert a.label in fs[0].message and b.label in fs[0].message
        # both acquisition stacks are attached for debugging
        assert len(fs[0].details) >= 2

    def test_consistent_order_clean(self, detector):
        a = rt.make_lock("queue.fifo")
        b = rt.make_lock("queue.fifo")
        for _ in range(2):
            with a:
                with b:
                    pass
        assert "DEADLOCK" not in _rules(detector)

    def test_three_way_cycle(self):
        g = LockGraph()
        g.add_edge("a", "b", "sa", "sb")
        g.add_edge("b", "c", "sb", "sc")
        g.add_edge("c", "a", "sc", "sa")
        (cycle,) = g.find_cycles()
        assert set(cycle) == {"a", "b", "c"}

    def test_cycle_reported_once(self):
        g = LockGraph()
        g.add_edge("a", "b", "s1", "s2")
        g.add_edge("b", "a", "s3", "s4")
        g.add_edge("a", "b", "s5", "s6")  # duplicate edge, first site wins
        assert len(g.find_cycles()) == 1
        assert len(g.deadlock_findings()) == 1
