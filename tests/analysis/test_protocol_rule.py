"""R006 — wire-protocol state-machine verification fixtures.

Each fixture writes a ``messages.py`` / ``handler.py`` /
``protocol.py`` triple into a tmp directory and runs
:func:`check_protocol` over it, mirroring how ``lint_paths`` invokes
the rule on ``src/repro/core``.
"""

from __future__ import annotations

import ast
import os
import textwrap

from repro.analysis.protocol import check_protocol

MESSAGES_OK = """
    WIRE_TAGS = {"PutSyncMsg": 1, "AckMsg": 2, "ReplicaPutBatchMsg": 3,
                 "ReplicaAckMsg": 4, "IndexPublishMsg": 5}

    class PutSyncMsg:
        key: bytes
        seq: int

    class AckMsg:
        status: int

    class ReplicaPutBatchMsg:
        items: tuple
        seq: int
        epoch: int
        dead: tuple

    class ReplicaAckMsg:
        epoch: int
        dead: tuple

    class IndexPublishMsg:
        entries: tuple
        epoch: int
        dead: tuple
"""

HANDLER_OK = """
    def _serve_put(db, m):
        if db._already_applied(m.seq):
            db.rsp_comm.send(AckMsg(0))
            return
        db.rsp_comm.send(AckMsg(0))

    def handle(db, m):
        if isinstance(m, PutSyncMsg):
            _serve_put(db, m)
        elif isinstance(m, ReplicaPutBatchMsg):
            if db._already_applied(m.seq):
                return
            db.ack_comm.send(ReplicaAckMsg(0, ()))
        elif isinstance(m, IndexPublishMsg):
            db.index.merge(m.entries)
"""

SPEC_OK = """
    REQUEST_COMM = "srv_comm"
    MESSAGE_SPECS = {
        "PutSyncMsg": {"kind": "request", "retryable": True,
                       "reply": "AckMsg"},
        "AckMsg": {"kind": "reply"},
        "ReplicaPutBatchMsg": {"kind": "request", "retryable": True,
                               "epoch_stamped": True,
                               "reply": "ReplicaAckMsg"},
        "ReplicaAckMsg": {"kind": "reply", "epoch_stamped": True},
        "IndexPublishMsg": {"kind": "request", "epoch_stamped": True,
                            "reply": None},
    }
"""


def _run(tmp_path, messages=MESSAGES_OK, handler=HANDLER_OK, spec=SPEC_OK):
    mpath = str(tmp_path / "messages.py")
    src = textwrap.dedent(messages)
    with open(mpath, "w") as f:
        f.write(src)
    if handler is not None:
        with open(tmp_path / "handler.py", "w") as f:
            f.write(textwrap.dedent(handler))
    if spec is not None:
        with open(tmp_path / "protocol.py", "w") as f:
            f.write(textwrap.dedent(spec))
    return check_protocol(mpath, ast.parse(src, filename=mpath))


class TestGating:
    def test_no_spec_file_no_findings(self, tmp_path):
        # protocol verification is opt-in via a checked-in spec
        assert _run(tmp_path, spec=None) == []

    def test_clean_triple(self, tmp_path):
        assert _run(tmp_path) == []

    def test_malformed_spec_is_a_finding(self, tmp_path):
        fs = _run(tmp_path, spec="MESSAGE_SPECS = build_specs()\n")
        assert any("MESSAGE_SPECS" in f.message for f in fs)


class TestCoverage:
    def test_wire_tag_without_spec_entry(self, tmp_path):
        spec = SPEC_OK.replace(
            '"AckMsg": {"kind": "reply"},\n', "")
        fs = _run(tmp_path, spec=spec)
        assert any("`AckMsg` has no protocol spec entry" in f.message
                   for f in fs)

    def test_spec_entry_without_wire_tag(self, tmp_path):
        spec = SPEC_OK.replace(
            '"AckMsg": {"kind": "reply"},',
            '"AckMsg": {"kind": "reply"},\n'
            '        "GhostMsg": {"kind": "request", "reply": None},')
        fs = _run(tmp_path, spec=spec)
        assert any("`GhostMsg` has no WIRE_TAGS entry" in f.message
                   for f in fs)

    def test_real_tree_covers_every_wire_tag(self):
        # acceptance: R006 covers 100% of WIRE_TAGS with no allowlisting
        path = "src/repro/core/messages.py"
        with open(path) as f:
            tree = ast.parse(f.read(), filename=path)
        assert os.path.exists("src/repro/core/protocol.py")
        assert check_protocol(path, tree) == []


class TestRetryable:
    def test_retryable_without_seq_field(self, tmp_path):
        messages = MESSAGES_OK.replace(
            "    class PutSyncMsg:\n        key: bytes\n        seq: int",
            "    class PutSyncMsg:\n        key: bytes")
        fs = _run(tmp_path, messages=messages)
        assert any("no `seq` field" in f.message and f.function == "PutSyncMsg"
                   for f in fs)

    def test_retryable_arm_without_dedup_gate(self, tmp_path):
        handler = HANDLER_OK.replace(
            "        if db._already_applied(m.seq):\n"
            "            db.rsp_comm.send(AckMsg(0))\n"
            "            return\n", "")
        fs = _run(tmp_path, handler=handler)
        assert any("_already_applied" in f.message
                   and f.function == "PutSyncMsg" for f in fs)

    def test_dedup_gate_via_serve_helper_counts(self, tmp_path):
        # the gate lives in _serve_put, reached through the arm's call
        assert _run(tmp_path) == []


class TestEpochStamping:
    def test_replica_class_must_be_declared_stamped(self, tmp_path):
        spec = SPEC_OK.replace(
            '"ReplicaAckMsg": {"kind": "reply", "epoch_stamped": True},',
            '"ReplicaAckMsg": {"kind": "reply"},')
        fs = _run(tmp_path, spec=spec)
        assert any("does not declare it epoch_stamped" in f.message
                   for f in fs)

    def test_stamped_class_missing_fields(self, tmp_path):
        # the PR-8 IndexPublishMsg surface: declared stamped, fields gone
        messages = MESSAGES_OK.replace(
            "    class IndexPublishMsg:\n"
            "        entries: tuple\n"
            "        epoch: int\n"
            "        dead: tuple",
            "    class IndexPublishMsg:\n        entries: tuple")
        fs = _run(tmp_path, messages=messages)
        assert any("lacks field(s) ['dead', 'epoch']" in f.message
                   and f.function == "IndexPublishMsg" for f in fs)

    def test_replica_batch_missing_epoch_only(self, tmp_path):
        # the PR-6/7 ReplicaPutBatchMsg surface
        messages = MESSAGES_OK.replace(
            "    class ReplicaPutBatchMsg:\n"
            "        items: tuple\n"
            "        seq: int\n"
            "        epoch: int\n"
            "        dead: tuple",
            "    class ReplicaPutBatchMsg:\n"
            "        items: tuple\n"
            "        seq: int\n"
            "        dead: tuple")
        fs = _run(tmp_path, messages=messages)
        assert any("lacks field(s) ['epoch']" in f.message
                   and f.function == "ReplicaPutBatchMsg" for f in fs)


class TestRequestReply:
    def test_missing_dispatch_arm(self, tmp_path):
        handler = HANDLER_OK.replace(
            "        elif isinstance(m, IndexPublishMsg):\n"
            "            db.index.merge(m.entries)\n", "")
        fs = _run(tmp_path, handler=handler)
        assert any("no isinstance dispatch arm" in f.message
                   and f.function == "IndexPublishMsg" for f in fs)

    def test_reply_never_constructed(self, tmp_path):
        handler = HANDLER_OK.replace(
            "            db.ack_comm.send(ReplicaAckMsg(0, ()))",
            "            pass")
        fs = _run(tmp_path, handler=handler)
        assert any("never constructs its declared reply `ReplicaAckMsg`"
                   in f.message for f in fs)

    def test_declared_reply_not_on_wire(self, tmp_path):
        spec = SPEC_OK.replace('"reply": "AckMsg"', '"reply": "NackMsg"')
        fs = _run(tmp_path, spec=spec)
        assert any("declares reply `NackMsg`" in f.message for f in fs)

    def test_handler_arm_for_untagged_class(self, tmp_path):
        handler = HANDLER_OK + (
            "\n    def extra(db, m):\n"
            "        if isinstance(m, PhantomMsg):\n"
            "            pass\n")
        fs = _run(tmp_path, handler=handler)
        assert any("dispatches `PhantomMsg`" in f.message for f in fs)


class TestRequestCommDirection:
    def test_handler_send_on_request_comm_flags(self, tmp_path):
        # the synthetic satellite fixture: a handler answering on the
        # request comm can rendezvous-deadlock two peers
        handler = HANDLER_OK.replace(
            "            db.ack_comm.send(ReplicaAckMsg(0, ()))",
            "            db.srv_comm.send(ReplicaAckMsg(0, ()))")
        fs = _run(tmp_path, handler=handler)
        assert any("sends on the request comm" in f.message
                   and "srv_comm.send" in f.message for f in fs)

    def test_recv_on_request_comm_is_fine(self, tmp_path):
        handler = HANDLER_OK + (
            "\n    def pump(db):\n"
            "        return db.srv_comm.recv()\n")
        assert _run(tmp_path, handler=handler) == []
