"""Findings schema v1/v2 migration, round-trips, and SARIF output."""

from __future__ import annotations

import json

import pytest

from repro.analysis.findings import (
    SCHEMA_VERSION,
    Finding,
    downgrade_doc,
    finding_from_dict,
    findings_to_json,
    load_doc,
    migrate_doc,
)
from repro.analysis.sarif import findings_to_sarif

F_LOCAL = Finding(
    tool="pkvlint", rule="R005", message="bare except",
    path="src/repro/core/db.py", line=42, function="flush",
)
F_CHAIN = Finding(
    tool="pkvlint", rule="R001", message="blocking comm under _lock",
    path="src/repro/core/db.py", line=7, function="flush_window",
    call_path=("repro.core.db:Database._fan_out", "self.srv_comm.fanout"),
    details=("held: _lock",),
)


class TestSerialization:
    def test_default_version_is_2(self):
        doc = json.loads(findings_to_json([F_CHAIN]))
        assert doc["version"] == SCHEMA_VERSION == 2
        assert doc["findings"][0]["call_path"] == list(F_CHAIN.call_path)

    def test_v1_output_matches_pr4_schema(self):
        doc = json.loads(findings_to_json([F_CHAIN], version=1))
        assert doc["version"] == 1
        keys = set(doc["findings"][0])
        assert "call_path" not in keys
        assert keys == {"tool", "rule", "message", "path", "line",
                        "function", "details"}

    def test_unknown_version_rejected(self):
        with pytest.raises(ValueError):
            findings_to_json([F_LOCAL], version=3)


class TestMigration:
    def test_v1_to_v2_adds_empty_call_path(self):
        v1 = json.loads(findings_to_json([F_LOCAL], version=1))
        v2 = migrate_doc(v1)
        assert v2["version"] == 2
        assert v2["findings"][0]["call_path"] == []

    def test_migrate_is_idempotent(self):
        v2 = json.loads(findings_to_json([F_CHAIN]))
        assert migrate_doc(v2) is v2

    def test_downgrade_folds_chain_into_details(self):
        v2 = json.loads(findings_to_json([F_CHAIN]))
        v1 = downgrade_doc(v2)
        assert v1["version"] == 1
        (f,) = v1["findings"]
        assert "call_path" not in f
        assert f["details"][-1] == (
            "via: repro.core.db:Database._fan_out -> self.srv_comm.fanout"
        )

    def test_downgrade_is_idempotent(self):
        v1 = json.loads(findings_to_json([F_LOCAL], version=1))
        assert downgrade_doc(v1) is v1

    def test_unknown_versions_raise(self):
        with pytest.raises(ValueError):
            migrate_doc({"version": 3, "findings": []})
        with pytest.raises(ValueError):
            downgrade_doc({"version": 3, "findings": []})


class TestRoundTrip:
    def test_v2_round_trip_preserves_findings(self):
        text = findings_to_json([F_LOCAL, F_CHAIN])
        assert load_doc(text) == [F_LOCAL, F_CHAIN]

    def test_v1_round_trip_drops_only_call_path(self):
        # a v2 finding pushed through a v1 consumer and reloaded keeps
        # everything except the chain (which lands in details)
        text = findings_to_json([F_CHAIN], version=1)
        (back,) = load_doc(text)
        assert back.call_path == ()
        assert (back.tool, back.rule, back.message, back.path, back.line,
                back.function) == (
            F_CHAIN.tool, F_CHAIN.rule, F_CHAIN.message, F_CHAIN.path,
            F_CHAIN.line, F_CHAIN.function)

    def test_downgrade_then_migrate_keeps_chain_in_details(self):
        v2 = json.loads(findings_to_json([F_CHAIN]))
        again = migrate_doc(downgrade_doc(v2))
        (back,) = [finding_from_dict(f) for f in again["findings"]]
        assert back.call_path == ()
        assert any(d.startswith("via: ") for d in back.details)

    def test_load_doc_accepts_dict(self):
        doc = json.loads(findings_to_json([F_LOCAL], version=1))
        assert load_doc(doc) == [F_LOCAL]


class TestSarif:
    def test_structure(self):
        doc = json.loads(findings_to_sarif([F_CHAIN, F_LOCAL]))
        assert doc["version"] == "2.1.0"
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "pkvlint"
        # the rule table covers exactly the rules present in the log
        rules = {r["id"] for r in run["tool"]["driver"]["rules"]}
        assert rules == {"R001", "R005"}
        assert len(run["results"]) == 2

    def test_results_reference_rule_table(self):
        doc = json.loads(findings_to_sarif([F_CHAIN]))
        run = doc["runs"][0]
        (res,) = run["results"]
        assert res["ruleId"] == "R001"
        rules = run["tool"]["driver"]["rules"]
        assert rules[res["ruleIndex"]]["id"] == "R001"
        loc = res["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == F_CHAIN.path
        assert loc["region"]["startLine"] == F_CHAIN.line

    def test_call_path_rendered_in_message(self):
        doc = json.loads(findings_to_sarif([F_CHAIN]))
        text = doc["runs"][0]["results"][0]["message"]["text"]
        assert "via" in text and "_fan_out" in text

    def test_syntax_findings_are_errors(self):
        bad = Finding(tool="pkvlint", rule="SYNTAX", message="boom",
                      path="x.py", line=0)
        doc = json.loads(findings_to_sarif([bad, F_LOCAL]))
        levels = {r["ruleId"]: r["level"]
                  for r in doc["runs"][0]["results"]}
        assert levels == {"SYNTAX": "error", "R005": "warning"}

    def test_zero_line_clamped_to_one(self):
        bad = Finding(tool="pkvlint", rule="SYNTAX", message="boom",
                      path="x.py", line=0)
        doc = json.loads(findings_to_sarif([bad]))
        loc = doc["runs"][0]["results"][0]["locations"][0]
        assert loc["physicalLocation"]["region"]["startLine"] == 1
