"""Failure injection: storage corruption, protocol violations, aborts.

A production KVS must fail loudly and precisely, not silently return
wrong data.  These tests damage on-disk state and runtime invariants
and assert the failure surfaces as the right exception.
"""

from __future__ import annotations

import os

import pytest

from repro import FaultPlan, Papyrus, SSTABLE, spmd_run
from repro.errors import CorruptionError, RemoteTimeoutError, StorageError
from repro.faults import RankCrashError
from repro.mpi.launcher import RankFailure
from repro.nvm.posixfs import PosixStore
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import write_sstable
from repro.sstable.format import Record
from repro.simtime.resources import TimedResource
from tests.conftest import small_options

#: CI's fault matrix re-runs this module under several seeds
FAULT_SEED = int(os.environ.get("PKV_FAULT_SEED", "7"))


@pytest.fixture()
def store(tmp_path):
    return PosixStore(str(tmp_path), TimedResource("d", 0.0, 1e9))


class TestStorageCorruption:
    def _write_table(self, store):
        recs = [Record(f"k{i:02d}".encode(), b"v" * 8) for i in range(20)]
        write_sstable(store, "t", 1, recs, 0.0)
        return recs

    def test_missing_data_file(self, store):
        self._write_table(store)
        os.remove(store.path("t/0000000001.ssd"))
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(StorageError):
            rd.get(b"k00", 0.0)

    def test_missing_index_file_binary_search(self, store):
        self._write_table(store)
        os.remove(store.path("t/0000000001.ssi"))
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(StorageError):
            rd.get(b"k00", 0.0)

    def test_truncated_bloom(self, store):
        self._write_table(store)
        p = store.path("t/0000000001.bf")
        blob = open(p, "rb").read()
        with open(p, "wb") as f:
            f.write(blob[:10])
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(ValueError):
            rd.get(b"k00", 0.0)

    def test_corrupt_index_magic(self, store):
        self._write_table(store)
        p = store.path("t/0000000001.ssi")
        with open(p, "r+b") as f:
            f.write(b"\x00\x00\x00\x00")
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(ValueError):
            rd.get(b"k00", 0.0)

    def test_db_get_survives_foreign_junk_files(self, tmp_path):
        """Unrelated files in the rank directory are ignored."""
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("junk", small_options())
                db.put(b"k", b"v")
                db.barrier(SSTABLE)
                # drop junk into the rank dir
                db.store.write(f"{db.rank_dir}/notes.txt", b"junk", 0.0)
                db.store.write(f"{db.rank_dir}/12345.ssd", b"junk", 0.0)
                db.close()
                db2 = env.open("junk", small_options())
                assert db2.get(b"k") == b"v"
                db2.close()

        spmd_run(1, app, machine=machine)
        machine.close()


class TestRankFailures:
    def test_exception_in_one_rank_reported_precisely(self):
        class AppError(RuntimeError):
            pass

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("fail", small_options())
                db.put(b"k", b"v")
                if ctx.world_rank == 1:
                    raise AppError("injected")
                db.barrier()
                db.close()

        with pytest.raises(RankFailure) as ei:
            spmd_run(3, app, timeout=60)
        kinds = {type(e).__name__ for _, e in ei.value.failures}
        assert "AppError" in kinds

    def test_failure_before_collective_open(self):
        def app(ctx):
            if ctx.world_rank == 0:
                raise ValueError("early death")
            with Papyrus(ctx) as env:
                env.open("never", small_options())

        with pytest.raises(RankFailure):
            spmd_run(2, app, timeout=60)

    def test_timeout_reported(self):
        import threading

        def app(ctx):
            if ctx.world_rank == 0:
                # simulate a wedged rank (never participates again)
                threading.Event().wait(20)
            ctx.comm.barrier()

        with pytest.raises((TimeoutError, RankFailure)):
            spmd_run(2, app, timeout=3)


class TestHandlerCrash:
    def test_handler_crash_aborts_run_loudly(self):
        """A poisoned request that kills a handler must fail the whole
        run instead of hanging the requesters."""
        from repro.core import messages as msg

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("crash", small_options())
                db.coll_comm.barrier()
                if ctx.world_rank == 0:
                    # protocol violation: an object the handler rejects
                    db.srv_comm.send(object(), 1, tag=0)
                    # now try a real request against the dead handler
                    db.put(b"k", b"v")
                    key = next(
                        f"k{i}".encode() for i in range(200)
                        if db.owner_of(f"k{i}".encode()) == 1
                    )
                    db.set_consistency(2)  # keep relaxed
                    db._put_sync(1, key, b"v", False)  # would hang
                db.barrier()
                db.close()

        with pytest.raises(RankFailure):
            spmd_run(2, app, timeout=60)


class TestPersistentReservation:
    def test_cori_zero_copy_across_jobs(self, tmp_path):
        """§4.1: with a persistent burst-buffer reservation (no trim),
        a database created in one job is reopened zero-copy by the next."""
        from repro.simtime.profiles import CORI

        machine = Machine(CORI, 2, base_dir=str(tmp_path))

        def job1(ctx):
            with Papyrus(ctx) as env:
                db = env.open("reserved", small_options())
                for i in range(40):
                    db.put(f"k{i}".encode(), b"v" * 16)
                db.barrier()
                db.close()

        def job2(ctx):
            with Papyrus(ctx) as env:
                db = env.open("reserved", small_options())
                for i in range(40):
                    assert db.get(f"k{i}".encode()) == b"v" * 16
                db.close()

        spmd_run(2, job1, system=CORI, machine=machine)
        # NO trim_nvm(): the reservation persists across jobs
        spmd_run(2, job2, system=CORI, machine=machine)
        machine.close()


class TestSnapshotDamage:
    def test_restart_with_deleted_snapshot_rank_dir(self, tmp_path):
        machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

        def create(ctx):
            with Papyrus(ctx) as env:
                db = env.open("snapdmg", small_options())
                for i in range(30):
                    db.put(f"k{i}".encode(), b"v" * 16)
                db.barrier()
                db.checkpoint("dmg").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)

        spmd_run(2, create, machine=machine)
        # damage: remove one rank's snapshot directory entirely
        lustre_root = machine.lustre_store().root
        import shutil

        shutil.rmtree(
            os.path.join(lustre_root, "ckpt/dmg/db_snapdmg/gen1/rank1"),
            ignore_errors=True,
        )

        def restart(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("dmg", "snapdmg", small_options())
                ev.wait(ctx.clock)
                db.coll_comm.barrier()
                # rank 1's shard is gone; rank 0's survives
                present = sum(
                    1 for i in range(30)
                    if db.get_or_none(f"k{i}".encode()) is not None
                )
                db.close()
                return present

        res = spmd_run(2, restart, machine=machine, timeout=120)
        assert 0 < res[0] < 30  # partial recovery, no crash, no wrong data
        machine.close()

    def test_restart_missing_manifest(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))

        def app(ctx):
            with Papyrus(ctx) as env:
                with pytest.raises(StorageError):
                    env.restart("never-existed", "nodb", small_options())

        spmd_run(1, app, machine=machine)
        machine.close()


class TestFaultPlanStorage:
    """Silent storage damage must surface as typed errors, never as a
    wrong value, and the recovery ladder must win it back."""

    def _write_db(self, machine, faults=None, name="flt", n=300, nranks=1):
        # big enough to flush several SSTables through a 4 KB memtable,
        # so quarantine poisons a *range*, not the whole keyspace
        model = {
            f"fk{i:03d}".encode(): f"fv{i:03d}".encode() * 12
            for i in range(n)
        }

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open(name, small_options())
                for k, v in sorted(model.items()):
                    db.put(k, v)
                db.barrier(SSTABLE)
                db.close()

        spmd_run(nranks, app, machine=machine, faults=faults, timeout=120)
        return model

    def test_missing_sidecars_rebuilt_on_reopen(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))
        model = self._write_db(machine)

        def damage_and_read(ctx):
            with Papyrus(ctx) as env:
                db = env.open("flt", small_options())
                victim = next(
                    f for f in db.store.listdir(db.rank_dir)
                    if f.endswith(".ssi")
                )
                base = victim[:-4]
                db.close()
                os.remove(db.store.path(f"{db.rank_dir}/{base}.ssi"))
                os.remove(db.store.path(f"{db.rank_dir}/{base}.bf"))
                db2 = env.open("flt", small_options())
                assert db2.stats.tables_rebuilt >= 1
                for k, v in model.items():
                    assert db2.get(k) == v
                db2.close()

        spmd_run(1, damage_and_read, machine=machine)
        machine.close()

    def test_bit_flip_never_returns_wrong_value(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))
        plan = FaultPlan(seed=FAULT_SEED).bit_flip(".ssd", nth=1)
        # single-table workload: the damaged table is never re-read (by
        # compaction) inside the writer run itself
        model = self._write_db(machine, faults=plan, n=80)
        assert any("bit_flip" in f for f in plan.fired)

        def read(ctx):
            with Papyrus(ctx) as env:
                db = env.open("flt", small_options())
                detected = 0
                for k, v in model.items():
                    try:
                        got = db.get_or_none(k)
                    except CorruptionError:
                        detected += 1
                        continue
                    assert got is None or got == v, "silent wrong value!"
                db._closed = True  # skip collective close bookkeeping
                return detected

        res = spmd_run(1, read, machine=machine)
        assert res[0] >= 1  # the damaged block was detected, not served
        machine.close()

    def test_verify_quarantines_then_degrades_precisely(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))
        model = self._write_db(machine)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("flt", small_options())
                # flip one byte of the newest table's data file on disk
                victim = sorted(
                    f for f in db.store.listdir(db.rank_dir)
                    if f.endswith(".ssd")
                )[-1]
                p = db.store.path(f"{db.rank_dir}/{victim}")
                blob = bytearray(open(p, "rb").read())
                blob[len(blob) // 2] ^= 0x10
                with open(p, "wb") as f:
                    f.write(bytes(blob))
                report = db.verify()  # no checkpoint: quarantine rung
                assert report["quarantined"], report
                assert db.stats.corruptions_detected >= 1
                assert db.stats.tables_quarantined >= 1
                hits = degraded = 0
                for k, v in model.items():
                    try:
                        got = db.get_or_none(k)
                    except CorruptionError:
                        degraded += 1
                        continue
                    if got is not None:
                        assert got == v
                        hits += 1
                # keys outside the damaged table still serve; keys that
                # would have reached it degrade loudly
                assert degraded > 0
                assert hits > 0
                # quarantined files are renamed, not deleted
                assert any(
                    f.endswith(".quar") for f in db.store.listdir(db.rank_dir)
                )
                db._closed = True

        spmd_run(1, app, machine=machine)
        machine.close()

    def test_verify_restores_from_checkpoint(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))

        def app(ctx):
            model = {
                f"ck{i:03d}".encode(): f"cv{i:03d}".encode() * 4
                for i in range(60)
            }
            with Papyrus(ctx) as env:
                db = env.open("flt", small_options())
                for k, v in sorted(model.items()):
                    db.put(k, v)
                db.barrier(SSTABLE)
                db.checkpoint("fixit").wait(ctx.clock)
                db.coll_comm.barrier()
                victim = sorted(
                    f for f in db.store.listdir(db.rank_dir)
                    if f.endswith(".ssd")
                )[-1]
                p = db.store.path(f"{db.rank_dir}/{victim}")
                blob = bytearray(open(p, "rb").read())
                blob[len(blob) // 3] ^= 0x20
                with open(p, "wb") as f:
                    f.write(bytes(blob))
                report = db.verify()  # ladder ends at the checkpoint rung
                assert report["rebuilt"], report
                assert not report["quarantined"]
                assert db.stats.tables_rebuilt >= 1
                for k, v in model.items():
                    assert db.get(k) == v
                db.close()

        spmd_run(1, app, machine=machine, timeout=120)
        machine.close()

    def test_transient_read_error_heals_on_retry(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))
        model = self._write_db(machine)
        # exactly one read of a data file fails, then the device recovers
        plan = FaultPlan(seed=FAULT_SEED).io_error(".ssd", op="read", count=1)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("flt", small_options())
                report = db.verify()
                assert not report["quarantined"], report
                for k, v in model.items():
                    assert db.get(k) == v
                db.close()

        spmd_run(1, app, machine=machine, faults=plan)
        machine.close()


class TestFaultPlanMessages:
    """Lost, duplicated, and delayed runtime messages."""

    def _pick_remote_key(self, db, owner):
        return next(
            f"mk{i}".encode() for i in range(500)
            if db.owner_of(f"mk{i}".encode()) == owner
        )

    def test_dropped_reply_is_retried(self):
        plan = FaultPlan(seed=FAULT_SEED).drop("GetReply", nth=1)
        opts = small_options(remote_timeout=0.2, remote_retries=2)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("msg", opts)
                key = self._pick_remote_key(db, owner=1)
                if ctx.world_rank == 1:
                    db.put(key, b"remote-value")
                db.barrier()
                retries = 0
                if ctx.world_rank == 0:
                    assert db.get(key) == b"remote-value"
                    retries = db.stats.remote_retries
                    assert db.stats.remote_timeouts >= 1
                db.barrier()
                db.close()
                return retries

        res = spmd_run(2, app, faults=plan, timeout=120)
        assert res[0] >= 1

    def test_dropped_reply_zero_retries_raises(self):
        plan = FaultPlan(seed=FAULT_SEED).drop("GetReply", nth=1, count=99)
        opts = small_options(remote_timeout=0.2, remote_retries=0)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("msg", opts)
                key = self._pick_remote_key(db, owner=1)
                if ctx.world_rank == 1:
                    db.put(key, b"v")
                db.barrier()
                if ctx.world_rank == 0:
                    db.get(key)  # reply always dropped: must time out
                db.barrier()
                db.close()

        with pytest.raises(RankFailure) as ei:
            spmd_run(2, app, faults=plan, timeout=120)
        kinds = {type(e).__name__ for _, e in ei.value.failures}
        assert "RemoteTimeoutError" in kinds

    def test_dropped_ack_retransmits_idempotently(self):
        plan = FaultPlan(seed=FAULT_SEED).drop("AckMsg", nth=1)
        opts = small_options(remote_timeout=0.2, remote_retries=2)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("msg", opts)
                keys = [
                    f"ak{i}".encode() for i in range(200)
                    if db.owner_of(f"ak{i}".encode()) != ctx.world_rank
                ][:30]
                for k in keys:
                    db.put(k, b"migrated")
                db.fence()  # blocks on acks; the dropped one retransmits
                db.barrier()
                for k in keys:
                    assert db.get(k) == b"migrated"
                db.barrier()
                db.close()
                return db.stats.remote_retries

        res = spmd_run(2, app, faults=plan, timeout=120)
        assert sum(res) >= 1

    def test_duplicate_migrate_applied_once(self):
        plan = FaultPlan(seed=FAULT_SEED).duplicate("MigrateMsg", nth=1)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("msg", small_options())
                keys = [
                    f"dk{i}".encode() for i in range(200)
                    if db.owner_of(f"dk{i}".encode()) != ctx.world_rank
                ][:20]
                for k in keys:
                    db.put(k, b"once")
                db.fence()
                db.barrier()
                for k in keys:
                    assert db.get(k) == b"once"
                db.barrier()
                db.close()

        spmd_run(2, app, faults=plan, timeout=120)
        assert any("duplicate" in f for f in plan.fired)

    def test_delayed_message_still_delivered(self):
        plan = FaultPlan(seed=FAULT_SEED).delay("MigrateMsg", 0.005, nth=1)

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("msg", small_options())
                key = self._pick_remote_key(db, owner=1)
                if ctx.world_rank == 0:
                    db.put(key, b"late")
                db.barrier()
                assert db.get(key) == b"late"
                db.barrier()
                db.close()

        spmd_run(2, app, faults=plan, timeout=120)


class TestCrashPointProperty:
    """Kill a rank at every durable-write site; after restart the store
    must equal a prefix-consistent model: absent or correct, never wrong."""

    def test_crash_at_every_write_site_recovers(self, tmp_path):
        model = {
            f"cp{i:03d}".encode(): f"pv{i:03d}".encode() * 3
            for i in range(50)
        }

        def workload(ctx):
            with Papyrus(ctx) as env:
                db = env.open("crashdb", small_options())
                for k, v in sorted(model.items()):
                    db.put(k, v)
                db.barrier(SSTABLE)
                db.close()

        # 1. recording run: enumerate rank 1's durable-write sites
        recorder = FaultPlan(seed=FAULT_SEED, record_sites=True)
        m0 = Machine(SUMMITDEV, 2, base_dir=str(tmp_path / "record"))
        spmd_run(2, workload, machine=m0, faults=recorder, timeout=120)
        m0.close()
        sites = [s for s in recorder.sites_seen if "rank1/" in s]
        assert sites, "no rank-1 write sites recorded"
        sites = sites[:8]  # keep the matrix affordable

        def recover(ctx):
            with Papyrus(ctx) as env:
                db = env.open("crashdb", small_options())
                db.coll_comm.barrier()
                wrong = []
                if ctx.world_rank == 0:
                    for k, v in model.items():
                        try:
                            got = db.get_or_none(k)
                        except CorruptionError:
                            continue  # loud degradation is acceptable
                        if got is not None and got != v:
                            wrong.append((k, got))
                db.barrier()
                db.close()
                return wrong

        # 2. for each site: crash rank 1 there, then restart and audit
        for i, site in enumerate(sites):
            machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path / f"s{i}"))
            plan = FaultPlan(seed=FAULT_SEED).crash(site, rank=1)
            with pytest.raises(RankFailure) as ei:
                spmd_run(2, workload, machine=machine, faults=plan,
                         timeout=120)
            kinds = {type(e).__name__ for _, e in ei.value.failures}
            assert "RankCrashError" in kinds, (site, kinds)
            res = spmd_run(2, recover, machine=machine, timeout=120)
            assert res[0] == [], f"wrong values after crash at {site}"
            machine.close()


class TestSeqWindow:
    def test_dedup_window(self):
        from repro.core.db import _SeqWindow

        w = _SeqWindow()
        assert w.check_and_add(5) is False
        assert w.check_and_add(5) is True
        assert w.check_and_add(9) is False
        assert w.check_and_add(5) is True

    def test_window_is_bounded(self):
        from repro.core.db import _SeqWindow

        w = _SeqWindow()
        for i in range(_SeqWindow.CAPACITY + 100):
            w.check_and_add(i)
        assert len(w._seen) <= _SeqWindow.CAPACITY
