"""Failure injection: storage corruption, protocol violations, aborts.

A production KVS must fail loudly and precisely, not silently return
wrong data.  These tests damage on-disk state and runtime invariants
and assert the failure surfaces as the right exception.
"""

from __future__ import annotations

import os

import pytest

from repro import Papyrus, SSTABLE, spmd_run
from repro.errors import StorageError
from repro.mpi.launcher import RankFailure
from repro.nvm.posixfs import PosixStore
from repro.nvm.storage import Machine
from repro.simtime.profiles import SUMMITDEV
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import write_sstable
from repro.sstable.format import Record
from repro.simtime.resources import TimedResource
from tests.conftest import small_options


@pytest.fixture()
def store(tmp_path):
    return PosixStore(str(tmp_path), TimedResource("d", 0.0, 1e9))


class TestStorageCorruption:
    def _write_table(self, store):
        recs = [Record(f"k{i:02d}".encode(), b"v" * 8) for i in range(20)]
        write_sstable(store, "t", 1, recs, 0.0)
        return recs

    def test_missing_data_file(self, store):
        self._write_table(store)
        os.remove(store.path("t/0000000001.ssd"))
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(StorageError):
            rd.get(b"k00", 0.0)

    def test_missing_index_file_binary_search(self, store):
        self._write_table(store)
        os.remove(store.path("t/0000000001.ssi"))
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(StorageError):
            rd.get(b"k00", 0.0)

    def test_truncated_bloom(self, store):
        self._write_table(store)
        p = store.path("t/0000000001.bf")
        blob = open(p, "rb").read()
        with open(p, "wb") as f:
            f.write(blob[:10])
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(ValueError):
            rd.get(b"k00", 0.0)

    def test_corrupt_index_magic(self, store):
        self._write_table(store)
        p = store.path("t/0000000001.ssi")
        with open(p, "r+b") as f:
            f.write(b"\x00\x00\x00\x00")
        rd = SSTableReader(store, "t", 1)
        with pytest.raises(ValueError):
            rd.get(b"k00", 0.0)

    def test_db_get_survives_foreign_junk_files(self, tmp_path):
        """Unrelated files in the rank directory are ignored."""
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("junk", small_options())
                db.put(b"k", b"v")
                db.barrier(SSTABLE)
                # drop junk into the rank dir
                db.store.write(f"{db.rank_dir}/notes.txt", b"junk", 0.0)
                db.store.write(f"{db.rank_dir}/12345.ssd", b"junk", 0.0)
                db.close()
                db2 = env.open("junk", small_options())
                assert db2.get(b"k") == b"v"
                db2.close()

        spmd_run(1, app, machine=machine)
        machine.close()


class TestRankFailures:
    def test_exception_in_one_rank_reported_precisely(self):
        class AppError(RuntimeError):
            pass

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("fail", small_options())
                db.put(b"k", b"v")
                if ctx.world_rank == 1:
                    raise AppError("injected")
                db.barrier()
                db.close()

        with pytest.raises(RankFailure) as ei:
            spmd_run(3, app, timeout=60)
        kinds = {type(e).__name__ for _, e in ei.value.failures}
        assert "AppError" in kinds

    def test_failure_before_collective_open(self):
        def app(ctx):
            if ctx.world_rank == 0:
                raise ValueError("early death")
            with Papyrus(ctx) as env:
                env.open("never", small_options())

        with pytest.raises(RankFailure):
            spmd_run(2, app, timeout=60)

    def test_timeout_reported(self):
        import threading

        def app(ctx):
            if ctx.world_rank == 0:
                # simulate a wedged rank (never participates again)
                threading.Event().wait(20)
            ctx.comm.barrier()

        with pytest.raises((TimeoutError, RankFailure)):
            spmd_run(2, app, timeout=3)


class TestHandlerCrash:
    def test_handler_crash_aborts_run_loudly(self):
        """A poisoned request that kills a handler must fail the whole
        run instead of hanging the requesters."""
        from repro.core import messages as msg

        def app(ctx):
            with Papyrus(ctx) as env:
                db = env.open("crash", small_options())
                db.coll_comm.barrier()
                if ctx.world_rank == 0:
                    # protocol violation: an object the handler rejects
                    db.srv_comm.send(object(), 1, tag=0)
                    # now try a real request against the dead handler
                    db.put(b"k", b"v")
                    key = next(
                        f"k{i}".encode() for i in range(200)
                        if db.owner_of(f"k{i}".encode()) == 1
                    )
                    db.set_consistency(2)  # keep relaxed
                    db._put_sync(1, key, b"v", False)  # would hang
                db.barrier()
                db.close()

        with pytest.raises(RankFailure):
            spmd_run(2, app, timeout=60)


class TestPersistentReservation:
    def test_cori_zero_copy_across_jobs(self, tmp_path):
        """§4.1: with a persistent burst-buffer reservation (no trim),
        a database created in one job is reopened zero-copy by the next."""
        from repro.simtime.profiles import CORI

        machine = Machine(CORI, 2, base_dir=str(tmp_path))

        def job1(ctx):
            with Papyrus(ctx) as env:
                db = env.open("reserved", small_options())
                for i in range(40):
                    db.put(f"k{i}".encode(), b"v" * 16)
                db.barrier()
                db.close()

        def job2(ctx):
            with Papyrus(ctx) as env:
                db = env.open("reserved", small_options())
                for i in range(40):
                    assert db.get(f"k{i}".encode()) == b"v" * 16
                db.close()

        spmd_run(2, job1, system=CORI, machine=machine)
        # NO trim_nvm(): the reservation persists across jobs
        spmd_run(2, job2, system=CORI, machine=machine)
        machine.close()


class TestSnapshotDamage:
    def test_restart_with_deleted_snapshot_rank_dir(self, tmp_path):
        machine = Machine(SUMMITDEV, 2, base_dir=str(tmp_path))

        def create(ctx):
            with Papyrus(ctx) as env:
                db = env.open("snapdmg", small_options())
                for i in range(30):
                    db.put(f"k{i}".encode(), b"v" * 16)
                db.barrier()
                db.checkpoint("dmg").wait(ctx.clock)
                db.coll_comm.barrier()
                db.destroy().wait(ctx.clock)

        spmd_run(2, create, machine=machine)
        # damage: remove one rank's snapshot directory entirely
        lustre_root = machine.lustre_store().root
        import shutil

        shutil.rmtree(
            os.path.join(lustre_root, "ckpt/dmg/db_snapdmg/rank1"),
            ignore_errors=True,
        )

        def restart(ctx):
            with Papyrus(ctx) as env:
                db, ev = env.restart("dmg", "snapdmg", small_options())
                ev.wait(ctx.clock)
                db.coll_comm.barrier()
                # rank 1's shard is gone; rank 0's survives
                present = sum(
                    1 for i in range(30)
                    if db.get_or_none(f"k{i}".encode()) is not None
                )
                db.close()
                return present

        res = spmd_run(2, restart, machine=machine, timeout=120)
        assert 0 < res[0] < 30  # partial recovery, no crash, no wrong data
        machine.close()

    def test_restart_missing_manifest(self, tmp_path):
        machine = Machine(SUMMITDEV, 1, base_dir=str(tmp_path))

        def app(ctx):
            with Papyrus(ctx) as env:
                with pytest.raises(StorageError):
                    env.restart("never-existed", "nodb", small_options())

        spmd_run(1, app, machine=machine)
        machine.close()
