"""Repository inspection: decode what PapyrusKV left on "NVM".

The on-disk layout is real files, so a repository can be audited
offline (the analogue of LevelDB's ``ldb`` tool)::

    <root>/db_<name>/meta.json
    <root>/db_<name>/rank<r>/<ssid>.ssd|.ssi|.bf

:func:`inspect_repository` summarizes every database;
:func:`dump_sstable` decodes one table's records.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.sstable.format import (
    BLOOM_SUFFIX,
    DATA_SUFFIX,
    INDEX_SUFFIX,
    QUARANTINE_SUFFIX,
    Record,
    data_block_crcs,
    decode_bloom_file,
    decode_records,
    parse_index,
)
from repro.util.checksum import crc32c

_DB_RE = re.compile(r"^db_(.+)$")
_RANK_RE = re.compile(r"^rank(\d+)$")
_SSID_RE = re.compile(r"^(\d{10})" + re.escape(DATA_SUFFIX) + "$")


@dataclass
class SSTableSummary:
    """Counts and sizes of one SSTable."""

    ssid: int
    records: int
    tombstones: int
    data_bytes: int
    index_bytes: int
    bloom_bytes: int
    min_key: Optional[bytes] = None
    max_key: Optional[bytes] = None

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.index_bytes + self.bloom_bytes


@dataclass
class DatabaseSummary:
    """Per-database inventory of a repository."""

    name: str
    nranks: Optional[int]
    ranks: Dict[int, List[SSTableSummary]] = field(default_factory=dict)

    @property
    def total_records(self) -> int:
        return sum(t.records for ts in self.ranks.values() for t in ts)

    @property
    def total_bytes(self) -> int:
        return sum(t.total_bytes for ts in self.ranks.values() for t in ts)

    @property
    def total_sstables(self) -> int:
        return sum(len(ts) for ts in self.ranks.values())


def _summarize_table(rank_dir: str, ssid: int) -> SSTableSummary:
    base = os.path.join(rank_dir, f"{ssid:010d}")
    data_path = base + DATA_SUFFIX
    index_path = base + INDEX_SUFFIX
    bloom_path = base + BLOOM_SUFFIX
    with open(data_path, "rb") as f:
        blob = f.read()
    records = tombstones = 0
    min_key = max_key = None
    for rec in decode_records(blob):
        records += 1
        tombstones += rec.tombstone
        if min_key is None:
            min_key = rec.key
        max_key = rec.key
    return SSTableSummary(
        ssid=ssid,
        records=records,
        tombstones=tombstones,
        data_bytes=len(blob),
        index_bytes=os.path.getsize(index_path)
        if os.path.exists(index_path) else 0,
        bloom_bytes=os.path.getsize(bloom_path)
        if os.path.exists(bloom_path) else 0,
        min_key=min_key,
        max_key=max_key,
    )


def inspect_repository(root: str) -> List[DatabaseSummary]:
    """Summarize every database under a repository root directory."""
    if not os.path.isdir(root):
        raise FileNotFoundError(f"no repository at {root}")
    out: List[DatabaseSummary] = []
    for entry in sorted(os.listdir(root)):
        m = _DB_RE.match(entry)
        if not m:
            continue
        db_dir = os.path.join(root, entry)
        nranks = None
        meta_path = os.path.join(db_dir, "meta.json")
        if os.path.exists(meta_path):
            with open(meta_path) as f:
                nranks = json.load(f).get("nranks")
        summary = DatabaseSummary(name=m.group(1), nranks=nranks)
        for sub in sorted(os.listdir(db_dir)):
            rm = _RANK_RE.match(sub)
            if not rm:
                continue
            rank = int(rm.group(1))
            rank_dir = os.path.join(db_dir, sub)
            tables = []
            for fname in sorted(os.listdir(rank_dir)):
                sm = _SSID_RE.match(fname)
                if sm:
                    tables.append(_summarize_table(rank_dir, int(sm.group(1))))
            summary.ranks[rank] = tables
        out.append(summary)
    return out


def dump_sstable(rank_dir: str, ssid: int,
                 limit: Optional[int] = None) -> Iterator[Record]:
    """Yield the records of one SSTable (optionally the first ``limit``)."""
    with open(os.path.join(rank_dir, f"{ssid:010d}{DATA_SUFFIX}"), "rb") as f:
        blob = f.read()
    for i, rec in enumerate(decode_records(blob)):
        if limit is not None and i >= limit:
            return
        yield rec


def verify_sstable(rank_dir: str, ssid: int) -> List[str]:
    """Cross-check one SSTable's three files; returns found problems.

    Understands both on-disk formats: v2 tables are additionally
    checked against their footer (data length, per-block CRC32C, bloom
    checksum); v1 tables get the structural checks only.
    """
    problems: List[str] = []
    base = os.path.join(rank_dir, f"{ssid:010d}")
    try:
        with open(base + DATA_SUFFIX, "rb") as f:
            data = f.read()
        records = list(decode_records(data))
    except (OSError, ValueError) as exc:
        return [f"SSData unreadable: {exc}"]
    keys = [r.key for r in records]
    if keys != sorted(set(keys)):
        problems.append("SSData keys not strictly sorted")
    bloom_blob = None
    try:
        with open(base + BLOOM_SUFFIX, "rb") as f:
            bloom_blob = f.read()
    except OSError as exc:
        problems.append(f"bloom filter unreadable: {exc}")
    footer = None
    try:
        with open(base + INDEX_SUFFIX, "rb") as f:
            entries, footer = parse_index(f.read())
        if len(entries) != len(records):
            problems.append(
                f"SSIndex count {len(entries)} != record count {len(records)}"
            )
        for entry, rec in zip(entries, records):
            got = data[entry.key_offset:entry.key_offset + entry.keylen]
            if got != rec.key:
                problems.append(f"SSIndex offset mismatch at key {rec.key!r}")
                break
    except (OSError, ValueError) as exc:
        problems.append(f"SSIndex unreadable: {exc}")
    if footer is not None:  # format v2: checksum everything
        if len(data) != footer.data_len:
            problems.append(
                f"SSData length {len(data)} != footer {footer.data_len} "
                f"(torn write)"
            )
        elif tuple(data_block_crcs(data, footer.block_size)) != \
                tuple(footer.block_crcs):
            problems.append("SSData block checksum mismatch (corruption)")
        if bloom_blob is not None:
            if len(bloom_blob) != footer.bloom_len:
                problems.append(
                    f"bloom length {len(bloom_blob)} != footer "
                    f"{footer.bloom_len} (torn write)"
                )
            elif crc32c(bloom_blob) != footer.bloom_crc:
                problems.append("bloom file checksum mismatch (corruption)")
    if bloom_blob is not None:
        try:
            bloom = decode_bloom_file(bloom_blob)
            missing = [k for k in keys if k not in bloom]
            if missing:
                problems.append(
                    f"bloom filter false negatives: {len(missing)} keys"
                )
        except ValueError as exc:
            problems.append(f"bloom filter unreadable: {exc}")
    return problems


def fsck_repository(root: str) -> Dict[str, List[str]]:
    """Verify every SSTable of every database under a repository root.

    Returns ``{"<db>/rank<r>/<ssid>": [problems...]}`` for each damaged
    table; quarantined files are reported under their table's key.  An
    empty dict means the repository is clean.
    """
    if not os.path.isdir(root):
        raise FileNotFoundError(f"no repository at {root}")
    report: Dict[str, List[str]] = {}
    for entry in sorted(os.listdir(root)):
        m = _DB_RE.match(entry)
        if not m:
            continue
        db_dir = os.path.join(root, entry)
        for sub in sorted(os.listdir(db_dir)):
            rm = _RANK_RE.match(sub)
            if not rm:
                continue
            rank_dir = os.path.join(db_dir, sub)
            for fname in sorted(os.listdir(rank_dir)):
                key = f"{m.group(1)}/{sub}/{fname}"
                if fname.endswith(QUARANTINE_SUFFIX):
                    report.setdefault(key, []).append(
                        "quarantined (moved out of the search order)"
                    )
                    continue
                sm = _SSID_RE.match(fname)
                if not sm:
                    continue
                ssid = int(sm.group(1))
                problems = verify_sstable(rank_dir, ssid)
                if problems:
                    report[f"{m.group(1)}/{sub}/{ssid}"] = problems
    return report
