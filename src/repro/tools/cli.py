"""Command-line interface.

::

    python -m repro.tools.cli inspect <repository-root>
    python -m repro.tools.cli dump <rank-dir> <ssid> [--limit N]
    python -m repro.tools.cli verify <rank-dir> <ssid>
    python -m repro.tools.cli fsck <repository-root>
    python -m repro.tools.cli demo [--ranks N] [--system NAME] [--stats]
    python -m repro.tools.cli systems
    python -m repro.tools.cli lint <paths...> [--format text|json|sarif]
                                   [--lexical] [--allowlist F] [--output F]
    python -m repro.tools.cli race-report [--ranks N] [--ops N] [--json]
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_inspect(args) -> int:
    from repro.tools.dump import inspect_repository

    summaries = inspect_repository(args.root)
    if not summaries:
        print(f"no databases under {args.root}")
        return 1
    for db in summaries:
        print(f"database {db.name!r}  (created with nranks={db.nranks})")
        print(
            f"  totals: {db.total_sstables} SSTables, "
            f"{db.total_records} records, {db.total_bytes} bytes"
        )
        for rank in sorted(db.ranks):
            for t in db.ranks[rank]:
                print(
                    f"  rank {rank:3d}  ssid {t.ssid:6d}  "
                    f"{t.records:6d} recs ({t.tombstones} tombstones)  "
                    f"{t.total_bytes:9d} B  "
                    f"[{t.min_key!r} .. {t.max_key!r}]"
                )
    return 0


def _cmd_dump(args) -> int:
    from repro.tools.dump import dump_sstable

    for rec in dump_sstable(args.rank_dir, args.ssid, args.limit):
        marker = " (tombstone)" if rec.tombstone else ""
        print(f"{rec.key!r} -> {rec.value!r}{marker}")
    return 0


def _cmd_verify(args) -> int:
    from repro.tools.dump import verify_sstable

    problems = verify_sstable(args.rank_dir, args.ssid)
    if problems:
        for p in problems:
            print(f"PROBLEM: {p}")
        return 1
    print(f"sstable {args.ssid} in {args.rank_dir}: OK")
    return 0


def _cmd_fsck(args) -> int:
    """Offline integrity check of every SSTable in a repository."""
    from repro.tools.dump import fsck_repository

    report = fsck_repository(args.root)
    if not report:
        print(f"repository {args.root}: all tables verify clean")
        return 0
    for table, problems in sorted(report.items()):
        for p in problems:
            print(f"{table}: {p}")
    print(f"{len(report)} damaged table(s)")
    return 1


def _cmd_demo(args) -> int:
    from repro import Options, Papyrus, spmd_run, system_by_name
    from repro.metrics import database_metrics, format_report

    system = system_by_name(args.system)
    want_stats = getattr(args, "stats", False)

    def app(ctx):
        with Papyrus(ctx) as env:
            db = env.open("demo", Options())
            for i in range(50):
                db.put(f"r{ctx.world_rank}k{i}".encode(), b"demo-value")
            db.barrier()
            hits = sum(
                1 for r in range(ctx.nranks) for i in range(0, 50, 5)
                if db.get_or_none(f"r{r}k{i}".encode()) is not None
            )
            t = ctx.clock.now
            report = format_report(database_metrics(db)) if want_stats else None
            db.close()
            return hits, t, report

    results = spmd_run(args.ranks, app, system=system)
    for rank, (hits, t, report) in enumerate(results):
        print(f"rank {rank}: verified {hits} cross-rank reads, "
              f"virtual time {t * 1e3:.3f} ms")
        if report is not None:
            print(report)
    return 0


_FIGURES = {
    "table2": "bench_table2_systems.py",
    "fig6": "bench_fig6_basic_ops.py",
    "fig7": "bench_fig7_consistency.py",
    "fig8": "bench_fig8_get_opts.py",
    "fig9": "bench_fig9_workloads.py",
    "fig10": "bench_fig10_checkpoint.py",
    "fig11": "bench_fig11_mdhim.py",
    "fig13": "bench_fig13_meraculous.py",
    "ablations": "bench_ablation_design.py",
    "ycsb": "bench_ycsb.py",
    "portability": "bench_portability.py",
    "stability": "bench_stability.py",
}


def _bench_dir() -> str:
    import os

    # repo layout: <root>/src/repro/tools/cli.py and <root>/benchmarks
    here = os.path.dirname(os.path.abspath(__file__))
    root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
    return os.path.join(root, "benchmarks")


def _cmd_figure(args) -> int:
    """Regenerate one (or all) of the paper's figures via pytest."""
    import os

    import pytest as _pytest

    targets = (
        list(_FIGURES) if args.name == "all" else [args.name]
    )
    bad = [t for t in targets if t not in _FIGURES]
    if bad:
        print(f"unknown figure(s) {bad}; available: {sorted(_FIGURES)} "
              f"or 'all'")
        return 2
    paths = [os.path.join(_bench_dir(), _FIGURES[t]) for t in targets]
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        print(f"benchmark files not found: {missing} (source checkout "
              f"required)")
        return 2
    return _pytest.main(paths + ["--benchmark-only", "-q"])


def _cmd_report(args) -> int:
    """Print every saved benchmark result table."""
    import os

    results = os.path.join(_bench_dir(), "results")
    if not os.path.isdir(results):
        print(f"no results directory at {results}; run 'figure all' first")
        return 1
    for fname in sorted(os.listdir(results)):
        if fname.endswith(".txt"):
            with open(os.path.join(results, fname)) as f:
                print(f.read())
    return 0


def _cmd_systems(args) -> int:
    from repro.simtime.profiles import all_systems

    for name, s in sorted(all_systems().items()):
        print(f"{name:10s} {s.site:6s} {s.nvm_arch:9s} "
              f"{s.ranks_per_node:3d} ranks/node  {s.nvm.name}")
    return 0


def _cmd_lint(args) -> int:
    import os

    from repro.analysis import findings_to_json, findings_to_sarif, lint_paths

    allowlist = args.allowlist
    if allowlist is None and os.path.exists(".pkvlint-allow"):
        allowlist = ".pkvlint-allow"
    findings = lint_paths(
        args.paths, allowlist=allowlist,
        interprocedural=not args.lexical,
    )
    fmt = "json" if args.json else args.format
    if fmt == "json":
        text = findings_to_json(findings, version=args.schema_version)
    elif fmt == "sarif":
        text = findings_to_sarif(findings)
    else:
        lines = [f.render() for f in findings]
        lines.append(f"pkvlint: {len(findings)} finding(s)")
        text = "\n".join(lines)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)
    return 1 if findings else 0


def _cmd_race_report(args) -> int:
    import json

    from repro.analysis.stress import run_stress

    report = run_stress(nranks=args.ranks, ops_per_rank=args.ops,
                        seed=args.seed)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        s = report["summary"]
        print(
            f"race-report: {s['reads']} reads, {s['writes']} writes, "
            f"{s['acquires']} lock acquires, {s['sends']} sends, "
            f"{s['barriers']} barriers over {s['locations']} locations"
        )
        for f in report["findings"]:
            print(f"  {f['rule']}: {f['message']}")
            for d in f["details"]:
                print(f"      {d}")
        print(f"race-report: {len(report['findings'])} finding(s)")
    return 1 if report["findings"] else 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro.tools.cli",
        description="PapyrusKV reproduction tools",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("inspect", help="summarize a repository directory")
    p.add_argument("root")
    p.set_defaults(fn=_cmd_inspect)

    p = sub.add_parser("dump", help="decode one SSTable's records")
    p.add_argument("rank_dir")
    p.add_argument("ssid", type=int)
    p.add_argument("--limit", type=int, default=None)
    p.set_defaults(fn=_cmd_dump)

    p = sub.add_parser("verify", help="cross-check one SSTable's files")
    p.add_argument("rank_dir")
    p.add_argument("ssid", type=int)
    p.set_defaults(fn=_cmd_verify)

    p = sub.add_parser(
        "fsck", help="verify every SSTable under a repository root"
    )
    p.add_argument("root")
    p.set_defaults(fn=_cmd_fsck)

    p = sub.add_parser("demo", help="run a small SPMD demo")
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--system", default="summitdev")
    p.add_argument("--stats", action="store_true",
                   help="print per-rank operation/cache/read-path counters")
    p.set_defaults(fn=_cmd_demo)

    p = sub.add_parser("systems", help="list modelled platforms")
    p.set_defaults(fn=_cmd_systems)

    p = sub.add_parser(
        "figure", help="regenerate a paper figure (or 'all')"
    )
    p.add_argument("name", help="table2, fig6..fig13, ablations, ycsb, "
                                "portability, or all")
    p.set_defaults(fn=_cmd_figure)

    p = sub.add_parser("report", help="print saved benchmark tables")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser(
        "lint", help="run pkvlint (project-specific static rules)"
    )
    p.add_argument("paths", nargs="+", help="files or directories")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text",
                   help="output format (json = findings schema, sarif = "
                        "SARIF 2.1.0 for CI annotations)")
    p.add_argument("--json", action="store_true",
                   help="alias for --format json (back-compat)")
    p.add_argument("--schema-version", type=int, choices=(1, 2), default=2,
                   help="findings JSON schema version (v1 drops call_path)")
    p.add_argument("--output", default=None,
                   help="write the report to a file instead of stdout")
    p.add_argument("--lexical", action="store_true",
                   help="PR-4 per-function rules only: no call graph, no "
                        "interprocedural propagation (diagnostic mode)")
    p.add_argument("--allowlist", default=None,
                   help="allowlist file (default: .pkvlint-allow if present)")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "race-report",
        help="run the detector stress workload and report races",
    )
    p.add_argument("--ranks", type=int, default=4)
    p.add_argument("--ops", type=int, default=80,
                   help="operations per rank")
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--json", action="store_true",
                   help="machine-readable report (schema v1)")
    p.set_defaults(fn=_cmd_race_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
