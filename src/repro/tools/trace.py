"""Virtual-time tracing with Chrome-trace export.

A :class:`Tracer` records operation spans on every rank's virtual
timeline; :func:`export_chrome_trace` writes the standard Trace Event
JSON that ``chrome://tracing`` / Perfetto render, with one row per rank
(and one per background worker), so the overlap between application
time, flushing, migration, and checkpoint transfers is *visible*.

Attach a tracer through the database::

    tracer = Tracer()
    db = env.open("mydb", Options())
    db.attach_tracer(tracer)
    ...
    export_chrome_trace(tracer.merged(others), "run.json")
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass
from typing import Iterable, List, Optional


@dataclass(frozen=True)
class Span:
    """One traced operation: [t_start, t_end) on a named timeline."""

    name: str
    rank: int
    lane: str  # "main" | "compaction" | "dispatcher" | "handler"
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


class Tracer:
    """Thread-safe span collector for one rank (or a whole run)."""

    def __init__(self, capacity: int = 100_000) -> None:
        self.capacity = capacity
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self.dropped = 0

    def record(self, name: str, rank: int, lane: str,
               t_start: float, t_end: float) -> None:
        """Append one span (drops once the capacity bound is hit)."""
        if t_end < t_start:
            raise ValueError("span ends before it starts")
        with self._lock:
            if len(self._spans) >= self.capacity:
                self.dropped += 1
                return
            self._spans.append(Span(name, rank, lane, t_start, t_end))

    def spans(self) -> List[Span]:
        """Snapshot of the recorded spans."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def merged(self, others: Iterable["Tracer"]) -> List[Span]:
        """This tracer's spans plus every other tracer's, time-sorted."""
        out = self.spans()
        for o in others:
            out.extend(o.spans())
        out.sort(key=lambda s: s.t_start)
        return out


def export_chrome_trace(spans: Iterable[Span], path: str) -> int:
    """Write spans as Chrome Trace Event JSON; returns the event count.

    Lanes map to thread ids within each rank's "process", so the
    tracing UI shows main/compaction/dispatcher/handler rows per rank.
    """
    lanes = {"main": 0, "handler": 1, "compaction": 2, "dispatcher": 3}
    events = []
    for s in spans:
        events.append({
            "name": s.name,
            "ph": "X",  # complete event
            "ts": s.t_start * 1e6,       # trace format wants microseconds
            "dur": max(0.001, s.duration * 1e6),
            "pid": s.rank,
            "tid": lanes.get(s.lane, 9),
            "args": {"lane": s.lane},
        })
    meta = [
        {"name": "process_name", "ph": "M", "pid": pid,
         "args": {"name": f"rank {pid}"}}
        for pid in sorted({s.rank for s in spans})
    ]
    with open(path, "w") as f:
        json.dump({"traceEvents": meta + events,
                   "displayTimeUnit": "ms"}, f)
    return len(events)


def summarize(spans: Iterable[Span]) -> dict:
    """Aggregate span durations by (lane, name)."""
    agg: dict = {}
    for s in spans:
        key = (s.lane, s.name)
        cur = agg.setdefault(key, {"count": 0, "total_s": 0.0})
        cur["count"] += 1
        cur["total_s"] += s.duration
    return {f"{lane}:{name}": v for (lane, name), v in sorted(agg.items())}
