"""Operator tooling: repository inspection and the command-line interface."""

from repro.tools.dump import (
    DatabaseSummary,
    SSTableSummary,
    dump_sstable,
    inspect_repository,
)
from repro.tools.trace import Span, Tracer, export_chrome_trace, summarize

__all__ = [
    "DatabaseSummary",
    "SSTableSummary",
    "Span",
    "Tracer",
    "dump_sstable",
    "export_chrome_trace",
    "inspect_repository",
    "summarize",
]
