"""Distributed stencil driver: halo exchange through PapyrusKV.

Per time step each rank publishes its slab's edge cells under
``halo/<step>/<rank>/<side>`` (sequential consistency makes the put
globally visible on return), signals its neighbours, waits for theirs,
and reads their edges.  Old halos are deleted every few steps —
tombstone churn through the same LSM machinery as any delete.

Optionally the field itself is checkpointed mid-run
(``field/<rank>/<i>`` records), and :func:`resume_stencil` restarts
from the snapshot — on any rank count — and continues to the same
final answer.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro import config
from repro.config import Options
from repro.core.env import Papyrus
from repro.mpi.launcher import RankContext
from repro.apps.stencil.solver import initial_field, split_domain, step

_F = struct.Struct("<d")


def _pack(x: float) -> bytes:
    return _F.pack(float(x))


def _unpack(b: bytes) -> float:
    return _F.unpack(b)[0]


@dataclass
class StencilResult:
    """Per-rank outcome of a stencil run."""

    rank: int
    start: int
    stop: int
    field: np.ndarray  # this rank's interior slab after the final step
    steps_done: int
    halo_puts: int
    halo_gets: int
    virtual_time: float


def _halo_key(step_no: int, rank: int, side: str) -> bytes:
    return f"halo/{step_no:06d}/{rank}/{side}".encode()


def run_stencil(
    ctx: RankContext,
    ncells: int = 256,
    steps: int = 20,
    alpha: float = 0.2,
    seed: int = 0,
    checkpoint_at: Optional[int] = None,
    snapshot: str = "stencil-ckpt",
    options: Optional[Options] = None,
    db_name: str = "stencil",
) -> StencilResult:
    """One rank of the distributed solver."""
    options = (options or Options()).with_(consistency=config.SEQUENTIAL)
    env = Papyrus(ctx)
    db = env.open(db_name, options)
    me, n = ctx.world_rank, ctx.nranks
    slabs = split_domain(ncells, n)
    start, stop = slabs[me]

    full0 = initial_field(ncells, seed)
    u = full0[start:stop].copy()
    left_boundary = full0[0]
    right_boundary = full0[-1]

    halo_puts = halo_gets = 0
    t0 = ctx.clock.now
    for s in range(steps):
        # publish my edges (empty slabs publish nothing)
        if len(u):
            db.put(_halo_key(s, me, "L"), _pack(u[0]))
            db.put(_halo_key(s, me, "R"), _pack(u[-1]))
            halo_puts += 2
        # sequential consistency: the puts are already at their owners;
        # signals order us against the neighbours' reads
        if me > 0:
            env.signal_notify(1, [me - 1])
        if me < n - 1:
            env.signal_notify(2, [me + 1])
        if me < n - 1:
            env.signal_wait(1, [me + 1])
        if me > 0:
            env.signal_wait(2, [me - 1])

        left = left_boundary if me == 0 else _unpack(
            db.get(_halo_key(s, me - 1, "R"))
        )
        right = right_boundary if me == n - 1 else _unpack(
            db.get(_halo_key(s, me + 1, "L"))
        )
        halo_gets += int(me > 0) + int(me < n - 1)
        if len(u):
            u = step(u, left, right, alpha)

        if s % 4 == 3:  # retire old halos (tombstone churn)
            for old in range(max(0, s - 3), s):
                db.delete(_halo_key(old, me, "L"))
                db.delete(_halo_key(old, me, "R"))

        if checkpoint_at is not None and s == checkpoint_at:
            for i, x in enumerate(u):
                db.put(f"field/{me}/{start + i:06d}".encode(), _pack(x))
            db.put(f"fieldmeta/{me}".encode(),
                   struct.pack("<iiq", start, stop, s))
            db.barrier()
            db.checkpoint(snapshot).wait(ctx.clock)
            db.coll_comm.barrier()

    result = StencilResult(
        rank=me, start=start, stop=stop, field=u, steps_done=steps,
        halo_puts=halo_puts, halo_gets=halo_gets,
        virtual_time=ctx.clock.now - t0,
    )
    db.barrier()
    db.close()
    env.finalize()
    return result


def resume_stencil(
    ctx: RankContext,
    snapshot: str,
    ncells: int,
    total_steps: int,
    checkpointed_at: int,
    source_nranks: int,
    alpha: float = 0.2,
    seed: int = 0,
    options: Optional[Options] = None,
    db_name: str = "stencil",
) -> StencilResult:
    """Restart from a snapshot and run the remaining steps.

    Works with any current rank count: the checkpointed field cells are
    keyed by global index, so after (re)distribution every rank can
    read the cells of its *new* slab.
    """
    options = (options or Options()).with_(consistency=config.SEQUENTIAL)
    env = Papyrus(ctx)
    db, ev = env.restart(snapshot, db_name, options,
                         force_redistribute=ctx.nranks != source_nranks)
    ev.wait(ctx.clock)
    db.barrier()

    me, n = ctx.world_rank, ctx.nranks
    slabs = split_domain(ncells, n)
    start, stop = slabs[me]
    # field cells were written as field/<source rank>/<global index>;
    # locate each of my cells regardless of who wrote it
    cells = []
    src_slabs = split_domain(ncells, source_nranks)
    for i in range(start, stop):
        writer = next(
            r for r, (a, b) in enumerate(src_slabs) if a <= i < b
        )
        cells.append(_unpack(db.get(f"field/{writer}/{i:06d}".encode())))
    u = np.array(cells)

    full0 = initial_field(ncells, seed)
    left_boundary, right_boundary = full0[0], full0[-1]

    halo_puts = halo_gets = 0
    t0 = ctx.clock.now
    for s in range(checkpointed_at + 1, total_steps):
        if len(u):
            db.put(_halo_key(s, me, "L"), _pack(u[0]))
            db.put(_halo_key(s, me, "R"), _pack(u[-1]))
            halo_puts += 2
        if me > 0:
            env.signal_notify(1, [me - 1])
        if me < n - 1:
            env.signal_notify(2, [me + 1])
        if me < n - 1:
            env.signal_wait(1, [me + 1])
        if me > 0:
            env.signal_wait(2, [me - 1])
        left = left_boundary if me == 0 else _unpack(
            db.get(_halo_key(s, me - 1, "R"))
        )
        right = right_boundary if me == n - 1 else _unpack(
            db.get(_halo_key(s, me + 1, "L"))
        )
        halo_gets += int(me > 0) + int(me < n - 1)
        if len(u):
            u = step(u, left, right, alpha)

    result = StencilResult(
        rank=me, start=start, stop=stop, field=u,
        steps_done=total_steps - checkpointed_at - 1,
        halo_puts=halo_puts, halo_gets=halo_gets,
        virtual_time=ctx.clock.now - t0,
    )
    db.barrier()
    db.close()
    env.finalize()
    return result
