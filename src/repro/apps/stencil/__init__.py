"""A checkpointed distributed stencil solver on PapyrusKV.

The paper's introduction motivates KVS use in HPC for "coupling
applications or storing intermediate results"; this application is the
minimal honest instance: a 1-D heat-diffusion solver whose ranks
exchange halo cells *through the key-value store* (sequential
consistency + signals give neighbour ordering without MPI point-to-
point), checkpoint the field mid-run, and restart bit-exactly — even on
a different rank count, courtesy of restart-with-redistribution.
"""

from repro.apps.stencil.solver import serial_solve, split_domain
from repro.apps.stencil.driver import StencilResult, run_stencil

__all__ = ["StencilResult", "run_stencil", "serial_solve", "split_domain"]
