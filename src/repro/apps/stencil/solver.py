"""Numerics for the 1-D heat equation (explicit Euler).

``u_t = alpha * u_xx`` on a fixed-boundary grid; the serial solver is
the ground truth the distributed run must match bit-for-bit (identical
operation order per cell makes float equality achievable).
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np


def initial_field(ncells: int, seed: int = 0) -> np.ndarray:
    """A deterministic initial condition: a hot bump plus noise."""
    rng = np.random.default_rng(seed)
    x = np.linspace(0.0, 1.0, ncells)
    field = np.exp(-((x - 0.5) ** 2) / 0.02) + 0.01 * rng.random(ncells)
    field[0] = field[-1] = 0.0  # Dirichlet boundaries
    return field


def step(u: np.ndarray, left: float, right: float, alpha: float) -> np.ndarray:
    """One explicit Euler step of a local slab with halo values."""
    padded = np.empty(len(u) + 2, dtype=u.dtype)
    padded[0] = left
    padded[1:-1] = u
    padded[-1] = right
    return u + alpha * (padded[:-2] - 2.0 * u + padded[2:])


def serial_solve(ncells: int, steps: int, alpha: float = 0.2,
                 seed: int = 0) -> np.ndarray:
    """Reference solution on one rank."""
    u = initial_field(ncells, seed)
    for _ in range(steps):
        interior = step(u[1:-1], u[0], u[-1], alpha)
        u = np.concatenate(([u[0]], interior, [u[-1]]))
    return u


def split_domain(ncells: int, nranks: int) -> List[Tuple[int, int]]:
    """Contiguous (start, stop) slabs of the interior cells per rank.

    The two Dirichlet boundary cells stay global; the interior
    ``ncells - 2`` cells are split as evenly as possible.
    """
    interior = ncells - 2
    base = interior // nranks
    extra = interior % nranks
    out: List[Tuple[int, int]] = []
    start = 1
    for r in range(nranks):
        size = base + (1 if r < extra else 0)
        out.append((start, start + size))
        start += size
    return out
