"""Applications built on PapyrusKV (paper §5.2, "A real HPC application")."""
