"""K-mer utilities: extraction, encoding, and the shared hash function.

"A hash function is used to define the affinities between UPC threads
and hash table entries ... The PapyrusKV runtime calls the same hash
function in the UPC application" (paper §5.2) — :func:`kmer_hash` is
that shared function, passed to PapyrusKV as the custom hash.
"""

from __future__ import annotations

from typing import Iterator, List

ALPHABET = b"ACGT"
#: extension codes: a concrete base, or F (fork / multiple extensions),
#: or X (no extension / sequence boundary) — following Meraculous' UFX
FORK = ord("F")
TERM = ord("X")

_CODE = {65: 0, 67: 1, 71: 2, 84: 3}  # A C G T


def is_valid_base(b: int) -> bool:
    """True for the byte values of A, C, G, T."""
    return b in _CODE


def kmers_of(seq: bytes, k: int) -> Iterator[bytes]:
    """All overlapping k-mers of ``seq`` in order."""
    if k <= 0:
        raise ValueError("k must be positive")
    for i in range(len(seq) - k + 1):
        yield seq[i:i + k]


def encode_kmer(kmer: bytes) -> int:
    """2-bit pack a k-mer into an integer (canonical storage form)."""
    v = 0
    for b in kmer:
        try:
            v = (v << 2) | _CODE[b]
        except KeyError:
            raise ValueError(f"invalid base {chr(b)!r} in k-mer") from None
    return v


def decode_kmer(v: int, k: int) -> bytes:
    """Inverse of :func:`encode_kmer` for a known k."""
    out = bytearray(k)
    for i in range(k - 1, -1, -1):
        out[i] = ALPHABET[v & 3]
        v >>= 2
    return bytes(out)


def kmer_hash(kmer: bytes) -> int:
    """The hash shared between the UPC code and PapyrusKV (FNV over the
    2-bit encoding, mixed).  Deterministic and platform-independent."""
    h = 0xCBF29CE484222325
    for b in kmer:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    # final avalanche (splitmix-style) for better low-bit behaviour
    h ^= h >> 31
    h = (h * 0x7FB5D329728EA185) & 0xFFFFFFFFFFFFFFFF
    h ^= h >> 27
    return h


def extension_code(left: int, right: int) -> bytes:
    """The two-letter [ACGT|F|X][ACGT|F|X] UFX value."""
    return bytes([left, right])


def split_extension(code: bytes) -> tuple:
    """Unpack a two-letter UFX code into (left, right) byte values."""
    if len(code) != 2:
        raise ValueError(f"bad extension code {code!r}")
    return code[0], code[1]
