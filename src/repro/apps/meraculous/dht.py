"""Distributed hash-table backends for the de Bruijn graph.

Figure 12 shows the same k-mer table implemented twice: over UPC's
one-sided shared memory and over a PapyrusKV database with the UPC hash
function installed as the custom hash.  Both backends expose the same
minimal interface (put/get/barrier/close) the graph code uses.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro import config
from repro.apps.meraculous.kmer import kmer_hash
from repro.config import Options
from repro.core.env import Papyrus
from repro.mpi.launcher import RankContext


class PapyrusDHT:
    """The k-mer table as a PapyrusKV database.

    Uses relaxed consistency during construction (remote puts stage in
    the remote MemTable and migrate in batches — the asynchronous
    migration the paper credits for PapyrusKV's competitive
    construction phase), and plain gets during traversal.
    """

    def __init__(self, ctx: RankContext, options: Optional[Options] = None,
                 name: str = "kmers") -> None:
        self.ctx = ctx
        options = options or Options()
        # install the application's hash for thread-data affinity; the
        # consistency mode is the caller's (default RELAXED — pass a
        # SEQUENTIAL option set to ablate the asynchronous migration)
        options = options.with_(hash_fn=kmer_hash)
        self._env = Papyrus(ctx)
        self._db = self._env.open(name, options)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert a k-mer record (relaxed staging + batched migration)."""
        self._db.put(key, value)

    def put_bulk(self, items) -> None:
        """Insert many k-mer records through the bulk pipeline.

        The construction phase loads a whole UFX share at once, so the
        per-owner coalescing (one migration chunk per owner instead of
        one staged put per k-mer) applies to the entire share.
        """
        if isinstance(items, dict):
            items = items.items()
        with self._db.batch() as b:
            for key, value in items:
                b.put(key, value)

    def get(self, key: bytes) -> Optional[bytes]:
        """Fetch a k-mer record; None when absent."""
        return self._db.get_or_none(key)

    def get_bulk(self, keys) -> List[Optional[bytes]]:
        """Fetch many k-mer records; values align with ``keys``."""
        return self._db.get_bulk(keys)

    def barrier(self) -> None:
        """Collective: migrate staged puts and synchronize all ranks."""
        self._db.barrier(config.MEMTABLE)

    def protect_readonly(self, enable: bool) -> None:
        """Optional: mark the graph read-only for traversal (§3.2)."""
        self._db.protect(config.RDONLY if enable else config.RDWR)

    def owner_of(self, key: bytes) -> int:
        """Rank owning this k-mer under the shared hash function."""
        return self._db.owner_of(key)

    def scan(self, start: Optional[bytes] = None,
             end: Optional[bytes] = None):
        """Lazy sorted (kmer, record) pairs of this rank's graph shard.

        A streamed range scan over the underlying database — the
        traversal uses it to enumerate its seed k-mers straight off the
        store (no second in-memory copy of the UFX share) after the
        construction barrier has migrated everything to its owner.
        """
        return self._db.scan(start, end)

    @property
    def stats(self):
        return self._db.stats

    def close(self) -> None:
        """Collective teardown of the database and environment."""
        self._db.close()
        self._env.finalize()


class _UpcShared:
    """The shared-heap state of the UPC table: one bucket dict per thread."""

    def __init__(self, nranks: int) -> None:
        self.tables: List[Dict[bytes, bytes]] = [{} for _ in range(nranks)]
        self.locks: List[threading.Lock] = [
            threading.Lock() for _ in range(nranks)
        ]


class UpcDHT:
    """A UPC-style DSM hash table with one-sided remote access.

    Remote puts/gets cost one RDMA round (NIC latency + transfer) and do
    **not** involve the owner's CPU — the "RDMA capability and built-in
    remote atomic operations" advantage the paper gives UPC during
    traversal.  Collective constructor.
    """

    def __init__(self, ctx: RankContext) -> None:
        self.ctx = ctx
        self.rank = ctx.world_rank
        self.nranks = ctx.nranks
        self._coll = ctx.comm.dup()
        shared = _UpcShared(self.nranks) if self.rank == 0 else None
        self._shared: _UpcShared = self._coll.bcast(shared, root=0)
        cpu = ctx.system.cpu
        self._local_cost = cpu.kv_op_s + cpu.dram_latency_s
        self._memcpy_Bps = cpu.memcpy_Bps
        net = ctx.system.network
        self._rdma_latency = net.rdma_latency_s
        self._net_Bps = net.bandwidth_Bps
        self.remote_ops = 0
        self.local_ops = 0

    def owner_of(self, key: bytes) -> int:
        """Owning UPC thread under the shared hash function."""
        return kmer_hash(key) % self.nranks

    def _charge(self, owner: int, nbytes: int) -> None:
        clock = self.ctx.clock
        if owner == self.rank:
            self.local_ops += 1
            clock.advance(self._local_cost + nbytes / self._memcpy_Bps)
        else:
            self.remote_ops += 1
            clock.advance(self._rdma_latency + nbytes / self._net_Bps)

    def put(self, key: bytes, value: bytes) -> None:
        """One-sided store into the owner's bucket (RDMA-cost remote)."""
        owner = self.owner_of(key)
        self._charge(owner, len(key) + len(value))
        with self._shared.locks[owner]:
            self._shared.tables[owner][bytes(key)] = bytes(value)

    def get(self, key: bytes) -> Optional[bytes]:
        """One-sided load from the owner's bucket; None when absent."""
        owner = self.owner_of(key)
        with self._shared.locks[owner]:
            value = self._shared.tables[owner].get(bytes(key))
        self._charge(owner, len(key) + (len(value) if value else 0))
        return value

    def barrier(self) -> None:
        """Collective barrier (upc_barrier)."""
        self._coll.barrier()

    def close(self) -> None:
        """Collective teardown (the shared heap is GC'd with the run)."""
        self._coll.barrier()
