"""Meraculous benchmark driver (Figure 13).

Runs graph construction + traversal over a chosen DHT backend and
verifies the assembled contigs against the serial reference, so a
benchmark number is only reported for a *correct* assembly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.apps.meraculous.debruijn import build_graph, contigs_from_ufx, traverse
from repro.apps.meraculous.dht import PapyrusDHT, UpcDHT
from repro.apps.meraculous.genome import (
    synthesize_genome,
    ufx_from_genome,
    ufx_partition,
)
from repro.config import Options
from repro.mpi.launcher import RankContext


@dataclass
class MeraculousResult:
    """Per-rank outcome of one assembly run."""

    rank: int
    backend: str
    k: int
    n_kmers_inserted: int
    n_contigs: int
    construction_time: float
    traversal_time: float
    verified: Optional[bool]  # rank 0 only; None elsewhere

    @property
    def total_time(self) -> float:
        return self.construction_time + self.traversal_time


def run_meraculous(
    ctx: RankContext,
    backend: str = "papyrus",
    genome_length: int = 20_000,
    k: int = 21,
    seed: int = 7,
    options: Optional[Options] = None,
    verify: bool = True,
    protect_readonly: bool = False,
) -> MeraculousResult:
    """One rank of the Meraculous run.

    Every rank synthesizes the same genome deterministically (standing
    in for reading the shared UFX file), inserts its round-robin share,
    then traverses the contigs seeded at k-mers it owns.
    """
    genome = synthesize_genome(genome_length, seed)
    ufx = ufx_from_genome(genome, k)
    my_share = ufx_partition(ufx, ctx.world_rank, ctx.nranks)

    if backend == "papyrus":
        dht = PapyrusDHT(ctx, options)
    elif backend == "upc":
        dht = UpcDHT(ctx)
    else:
        raise ValueError(f"unknown backend {backend!r}")

    try:
        t0 = ctx.clock.now
        inserted = build_graph(dht, my_share)
        construction_time = ctx.clock.now - t0

        if protect_readonly and isinstance(dht, PapyrusDHT):
            dht.protect_readonly(True)

        # seeds: the entries whose start k-mer this rank owns.  The
        # PapyrusKV backend enumerates them straight off the store with
        # a streamed range scan (construction's barrier has migrated
        # every k-mer to its owner, so the local shard IS the owned
        # set); the UPC baseline has no scan surface and filters the
        # full UFX table by ownership instead.
        if isinstance(dht, PapyrusDHT):
            owned = list(dht.scan())
        else:
            owned = [
                (km, code) for km, code in sorted(ufx.items())
                if dht.owner_of(km) == ctx.world_rank
            ]
        t0 = ctx.clock.now
        contigs = traverse(dht, owned, ctx.world_rank, ctx.nranks)
        dht.barrier()
        traversal_time = ctx.clock.now - t0

        if protect_readonly and isinstance(dht, PapyrusDHT):
            dht.protect_readonly(False)

        verified: Optional[bool] = None
        if verify:
            all_contigs = ctx.comm.gather(contigs, root=0)
            if ctx.world_rank == 0:
                assembled = sorted(
                    c for chunk in all_contigs for c in chunk
                )
                verified = assembled == contigs_from_ufx(ufx, k)
    finally:
        dht.close()

    return MeraculousResult(
        rank=ctx.world_rank,
        backend=backend,
        k=k,
        n_kmers_inserted=inserted,
        n_contigs=len(contigs),
        construction_time=construction_time,
        traversal_time=traversal_time,
        verified=verified,
    )
