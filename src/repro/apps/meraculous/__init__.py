"""Meraculous: parallel de novo genome assembly (Figure 13).

Meraculous' core is a de Bruijn graph "implemented as a distributed
hash table with an overlapping substring of length k (a k-mer) as key
and a two-letter code [ACGT][ACGT] as value" (paper Figure 12).  This
package reimplements the graph construction and traversal phases over a
generic distributed-hash-table interface with two backends:

* :class:`~repro.apps.meraculous.dht.PapyrusDHT` — PapyrusKV, using the
  same custom hash function for thread-data affinity as the UPC code;
* :class:`~repro.apps.meraculous.dht.UpcDHT` — a UPC-like DSM baseline
  with one-sided (RDMA-cost) remote access and no handler involvement.

The human chr14 dataset is unavailable offline; :mod:`.genome`
synthesizes a genome and its UFX (k-mer + extensions) set with the same
structure, and the traversal's contigs are checked to reassemble the
genome exactly, so correctness is verified end to end.
"""

from repro.apps.meraculous.debruijn import build_graph, traverse
from repro.apps.meraculous.dht import PapyrusDHT, UpcDHT
from repro.apps.meraculous.driver import MeraculousResult, run_meraculous
from repro.apps.meraculous.genome import synthesize_genome, ufx_from_genome
from repro.apps.meraculous.kmer import kmer_hash, kmers_of

__all__ = [
    "MeraculousResult",
    "PapyrusDHT",
    "UpcDHT",
    "build_graph",
    "kmer_hash",
    "kmers_of",
    "run_meraculous",
    "synthesize_genome",
    "traverse",
    "ufx_from_genome",
]
