"""Synthetic genome and UFX generation.

The paper's evaluation uses the human chr14 UFX dataset, which is not
available offline.  We synthesize a random genome and derive its UFX
set — the (k-mer → left/right extension) table that is the input to
Meraculous' graph construction — preserving the structural properties
the benchmark exercises: unique-extension k-mers form linear chains
(contigs), repeated k-mers become forks, and traversal must reassemble
the genome's inter-fork segments exactly.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.apps.meraculous.kmer import ALPHABET, FORK, TERM, kmers_of

#: kmer -> (left extension, right extension); FORK when ambiguous,
#: TERM at sequence boundaries
UFX = Dict[bytes, bytes]


def synthesize_genome(length: int, seed: int = 42,
                      repeat_fraction: float = 0.02,
                      repeat_length: int = 64) -> bytes:
    """A random DNA sequence with a controlled amount of exact repeats.

    Repeats create fork k-mers, which break contigs just as real
    genomic repeats do — without them the de Bruijn graph would be one
    trivial chain and traversal would not exercise the random-access
    pattern Figure 13 measures.
    """
    if length <= 0:
        raise ValueError("length must be positive")
    rng = random.Random(seed)
    seq = bytearray(rng.choice(ALPHABET) for _ in range(length))
    n_repeats = int(length * repeat_fraction / max(1, repeat_length))
    for _ in range(n_repeats):
        if length <= 2 * repeat_length:
            break
        src = rng.randrange(0, length - repeat_length)
        dst = rng.randrange(0, length - repeat_length)
        seq[dst:dst + repeat_length] = seq[src:src + repeat_length]
    return bytes(seq)


def ufx_from_genome(genome: bytes, k: int) -> UFX:
    """Derive the UFX table: each k-mer's unique extensions or forks.

    For every occurrence of a k-mer, record the preceding and following
    base; a k-mer seen with more than one distinct left (right)
    neighbour gets the FORK code on that side; boundary occurrences get
    TERM.  This matches the role of Meraculous' UFX filter output.
    """
    if k <= 0 or k > len(genome):
        raise ValueError("bad k for genome length")
    lefts: Dict[bytes, set] = {}
    rights: Dict[bytes, set] = {}
    n = len(genome)
    for i in range(n - k + 1):
        km = genome[i:i + k]
        lefts.setdefault(km, set()).add(genome[i - 1] if i > 0 else TERM)
        rights.setdefault(km, set()).add(
            genome[i + k] if i + k < n else TERM
        )

    def fold(exts: set) -> int:
        if len(exts) == 1:
            return next(iter(exts))
        return FORK

    return {
        km: bytes([fold(lefts[km]), fold(rights[km])]) for km in lefts
    }


def ufx_partition(ufx: UFX, rank: int, nranks: int) -> List[Tuple[bytes, bytes]]:
    """The rank's share of UFX entries (round-robin over sorted k-mers).

    Sorting makes the partition deterministic across ranks regardless of
    dict iteration order.
    """
    items = sorted(ufx.items())
    return items[rank::nranks]


def expected_contigs(genome: bytes, k: int) -> List[bytes]:
    """Reference contigs for verification.

    A contig is a maximal chain of k-mers each having unique left and
    right extensions; it starts after a boundary or a fork.  Computed
    directly from the genome, independent of any KVS, so the distributed
    traversal can be checked against it.
    """
    ufx = ufx_from_genome(genome, k)
    from repro.apps.meraculous.debruijn import contigs_from_ufx

    return contigs_from_ufx(ufx, k)
