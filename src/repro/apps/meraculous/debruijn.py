"""De Bruijn graph construction and traversal (Meraculous §5.2).

Construction inserts each rank's UFX share into the distributed hash
table.  Traversal finds contig-start k-mers among the ones this rank
owns and walks right through unique extensions, one remote get per
step — "the requisite random access pattern in the global de Bruijn
graph".

A k-mer is *UU* (unique-extension) when neither side is a fork ``F``;
sequence-boundary terminators ``X`` count as unique, so a repeat-free
genome reassembles as exactly one contig.  Contigs are maximal
consistent chains of UU k-mers; a UU k-mer starts a contig when its
predecessor does not chain into it (absent, forked, or inconsistent
extension).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.meraculous.kmer import ALPHABET, FORK, TERM

Ufx = Dict[bytes, bytes]
_BASES = frozenset(ALPHABET)


def is_uu(code: bytes) -> bool:
    """Neither extension is a fork (terminators count as unique)."""
    return code[0] != FORK and code[1] != FORK


def _chains_from(pred_code: Optional[bytes], pred_last: int,
                 kmer_first: int) -> bool:
    """Does the predecessor k-mer chain into this one?"""
    if pred_code is None or not is_uu(pred_code):
        return False
    return pred_code[1] == pred_last


def is_contig_start(kmer: bytes, code: bytes, lookup) -> bool:
    """Decide whether ``kmer`` begins a contig.

    ``lookup(kmer) -> code or None`` abstracts the table (local dict or
    distributed KVS).
    """
    if not is_uu(code):
        return False
    left = code[0]
    if left not in _BASES:  # sequence boundary: nothing precedes us
        return True
    pred = bytes([left]) + kmer[:-1]
    pred_code = lookup(pred)
    if pred_code is None or not is_uu(pred_code):
        return True
    # predecessor is UU: it chains into us only if its right extension
    # reproduces our last base AND our left extension reproduces its
    # first base (mutual consistency)
    if pred_code[1] != kmer[-1]:
        return True
    return False


def walk_contig(start: bytes, code: bytes, lookup,
                max_steps: int = 10_000_000) -> bytes:
    """Extend ``start`` rightward through unique extensions."""
    contig = bytearray(start)
    kmer = start
    right = code[1]
    steps = 0
    while right in _BASES:
        steps += 1
        if steps > max_steps:
            raise RuntimeError("contig walk exceeded max_steps (cycle?)")
        nxt = kmer[1:] + bytes([right])
        nxt_code = lookup(nxt)
        if nxt_code is None or not is_uu(nxt_code):
            break
        if nxt_code[0] != kmer[0]:
            break  # inconsistent back-pointer: treat as contig boundary
        contig.append(right)
        kmer = nxt
        right = nxt_code[1]
    return bytes(contig)


def contigs_from_ufx(ufx: Ufx, k: int) -> List[bytes]:
    """Serial reference traversal over an in-memory UFX table."""
    lookup = ufx.get
    contigs = []
    for kmer in sorted(ufx):
        code = ufx[kmer]
        if is_contig_start(kmer, code, lookup):
            contigs.append(walk_contig(kmer, code, lookup))
    return sorted(contigs)


# --------------------------------------------------------------- distributed
def build_graph(dht, my_entries: Sequence[Tuple[bytes, bytes]]) -> int:
    """Construction phase: insert this rank's UFX share; returns count.

    Backends exposing a bulk pipeline (``put_bulk``) load the whole
    share in one batched call — per-owner message coalescing instead of
    one staged put per k-mer; others fall back to the per-key loop.
    """
    put_bulk = getattr(dht, "put_bulk", None)
    if put_bulk is not None:
        put_bulk(list(my_entries))
    else:
        for kmer, code in my_entries:
            dht.put(kmer, code)
    dht.barrier()
    return len(my_entries)


def traverse(dht, my_entries: Sequence[Tuple[bytes, bytes]],
             rank: int, nranks: int) -> List[bytes]:
    """Traversal phase: generate the contigs seeded by owned k-mers.

    Seed ownership: a contig belongs to the rank that *owns* its start
    k-mer in the table's distribution (so every contig is produced
    exactly once, with no atomics — unlike UPC's claim-based scheme the
    partition is deterministic).  ``my_entries`` is only used as the
    candidate enumeration; ownership is re-checked against the DHT's
    hash so backends agree.
    """
    lookup = dht.get
    contigs: List[bytes] = []
    for kmer, code in my_entries:
        if not is_uu(code):
            continue
        if dht.owner_of(kmer) != rank:
            # candidate enumeration may differ from table affinity
            continue
        if is_contig_start(kmer, code, lookup):
            contigs.append(walk_contig(kmer, code, lookup))
    return contigs
