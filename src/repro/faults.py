"""Deterministic fault injection for the simulated store and network.

A :class:`FaultPlan` is a seedable, thread-safe schedule of faults that
the storage layer (:class:`repro.nvm.posixfs.PosixStore`) and the
message layer (:class:`repro.mpi.comm.Comm`) consult at well-defined
hook points.  Faults default to **off**: a store or world whose
``faults`` attribute is ``None`` pays exactly one attribute check on
the hot path and nothing else.

Supported faults
----------------

* ``torn_write(match, at_byte=N)`` — the nth write of a file whose
  relative path contains ``match`` persists only its first ``N`` bytes
  (default: half).  The write *appears to succeed*; detection is the
  reader's job (size/CRC mismatch -> ``TornWriteError``).
* ``bit_flip(match)`` — one deterministic bit of the written payload is
  inverted before it hits the disk.  Again silent at write time.
* ``io_error(match, op="write"|"read", count=k)`` — the matching
  operation raises :class:`~repro.errors.StorageError` ``k`` times,
  modelling a transient device fault.
* ``crash(site, rank=r)`` — raise :class:`RankCrashError` when rank
  ``r`` reaches the named crash site (sites are emitted by the store
  around every durable write: ``posix.write:<path>``,
  ``posix.rename:<path>``, ``posix.synced:<path>``).
* ``drop/delay/duplicate(message_type)`` — the nth sent message whose
  class name matches is dropped, delivered late (virtual time), or
  delivered twice.
* ``kill_rank(rank, nth=N)`` — rank ``r`` dies at the start of its nth
  database operation: the op raises :class:`RankKilledError`, the rank's
  mailboxes go dead (its handler thread exits), and its sends are
  suppressed — but the world does **not** abort, so surviving ranks can
  detect the death and re-replicate.  Deliberately *not* an ``at_site``
  crash site, so crash-point enumeration tests stay unpolluted.

Every rule fires on the ``nth`` matching event (1-based) and then for
``count`` consecutive matches.  With ``record_sites=True`` the plan
additionally records the ordered set of crash sites it passes, so a
test can enumerate "every write site" from a clean recording run and
then replay the workload crashing at each site in turn.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import StorageError

__all__ = ["FaultPlan", "RankCrashError", "RankKilledError"]


class RankCrashError(RuntimeError):
    """Injected rank crash; propagates out of the rank's main function
    and surfaces through :class:`repro.mpi.launcher.RankFailure`."""


class RankKilledError(RankCrashError):
    """Injected *rank kill*: unlike a plain crash, a killed rank takes
    its whole simulated process down (handler thread included, via the
    world's dead-rank plumbing) while the surviving ranks keep running —
    the launcher records the death without aborting the world, so
    replication-level recovery can be exercised end to end."""


@dataclass
class _Rule:
    kind: str
    match: str
    nth: int = 1
    count: int = 1
    rank: Optional[int] = None
    op: str = "write"
    at_byte: Optional[int] = None
    delay_s: float = 0.0
    seen: int = 0
    fired: int = 0
    log: List[str] = field(default_factory=list)

    def applies(self, text: str, rank: Optional[int]) -> bool:
        """Advance this rule's match counter; True if it fires now."""
        if self.rank is not None and rank != self.rank:
            return False
        if self.match != "*" and self.match not in text:
            return False
        self.seen += 1
        if self.seen < self.nth or self.fired >= self.count:
            return False
        self.fired += 1
        return True


class FaultPlan:
    """A deterministic, seedable schedule of injected faults."""

    def __init__(self, seed: int = 0, record_sites: bool = False):
        self.seed = seed
        self.record_sites = record_sites
        self.sites_seen: List[str] = []
        self.fired: List[str] = []
        self._site_set: set = set()
        #: bit_flip fire counts per relpath — flip positions are derived
        #: from (seed, relpath, ordinal) so they do not depend on the
        #: cross-thread order in which writes consume randomness (the
        #: race detector's instrumentation perturbs that order)
        self._flip_counts: Dict[str, int] = {}
        self._rules: List[_Rule] = []
        self._lock = threading.Lock()

    # -- arming --------------------------------------------------------

    def torn_write(self, match: str, at_byte: Optional[int] = None,
                   nth: int = 1, rank: Optional[int] = None) -> "FaultPlan":
        """Persist only the first ``at_byte`` bytes of the matching write."""
        self._rules.append(_Rule("torn_write", match, nth=nth, rank=rank,
                                 at_byte=at_byte))
        return self

    def bit_flip(self, match: str, nth: int = 1,
                 rank: Optional[int] = None) -> "FaultPlan":
        """Invert one deterministic bit of the matching write's payload."""
        self._rules.append(_Rule("bit_flip", match, nth=nth, rank=rank))
        return self

    def io_error(self, match: str, op: str = "write", nth: int = 1,
                 count: int = 1, rank: Optional[int] = None) -> "FaultPlan":
        """Raise ``StorageError`` from the matching read/write ``count`` times."""
        if op not in ("read", "write"):
            raise ValueError(f"io_error op must be read|write, got {op!r}")
        self._rules.append(_Rule("io_error", match, nth=nth, count=count,
                                 rank=rank, op=op))
        return self

    def crash(self, site: str, nth: int = 1,
              rank: Optional[int] = None) -> "FaultPlan":
        """Raise :class:`RankCrashError` at the named crash site."""
        self._rules.append(_Rule("crash", site, nth=nth, rank=rank))
        return self

    def drop(self, message_type: str, nth: int = 1,
             count: int = 1) -> "FaultPlan":
        """Silently drop the nth sent message of the given class name."""
        self._rules.append(_Rule("drop", message_type, nth=nth, count=count))
        return self

    def delay(self, message_type: str, delay_s: float, nth: int = 1,
              count: int = 1) -> "FaultPlan":
        """Deliver the matching message ``delay_s`` virtual seconds late."""
        self._rules.append(_Rule("delay", message_type, nth=nth, count=count,
                                 delay_s=delay_s))
        return self

    def duplicate(self, message_type: str, nth: int = 1,
                  count: int = 1) -> "FaultPlan":
        """Deliver the matching message twice."""
        self._rules.append(_Rule("duplicate", message_type, nth=nth,
                                 count=count))
        return self

    def kill_rank(self, rank: int, nth: int = 1) -> "FaultPlan":
        """Kill rank ``rank`` at the start of its ``nth`` database op."""
        self._rules.append(_Rule("kill_rank", "*", nth=nth, rank=rank))
        return self

    # -- hook points ---------------------------------------------------

    @staticmethod
    def _current_rank() -> Optional[int]:
        # Late import: faults.py sits below the MPI layer.
        from repro.mpi.launcher import current_rank_context

        try:
            return current_rank_context().world_rank
        except Exception:
            return None  # outside any simulated rank (e.g. offline fsck)

    def at_site(self, site: str) -> None:
        """Crash-site hook; called by the store around durable writes."""
        rank = self._current_rank()
        with self._lock:
            if self.record_sites and site not in self._site_set:
                self._site_set.add(site)
                self.sites_seen.append(site)
            for rule in self._rules:
                if rule.kind == "crash" and rule.applies(site, rank):
                    self.fired.append(f"crash@{site} rank={rank}")
                    raise RankCrashError(site)

    def filter_write(self, relpath: str, data: bytes) -> bytes:
        """Write hook; may mutate the payload or raise ``StorageError``."""
        rank = self._current_rank()
        with self._lock:
            for rule in self._rules:
                if rule.kind == "io_error" and rule.op == "write" \
                        and rule.applies(relpath, rank):
                    self.fired.append(f"io_error:write {relpath}")
                    raise StorageError(f"injected I/O error writing {relpath}")
                if rule.kind == "torn_write" and rule.applies(relpath, rank):
                    cut = rule.at_byte if rule.at_byte is not None \
                        else len(data) // 2
                    cut = max(0, min(cut, len(data)))
                    self.fired.append(f"torn_write {relpath} at {cut}")
                    data = data[:cut]
                elif rule.kind == "bit_flip" and rule.applies(relpath, rank):
                    if data:
                        ordinal = self._flip_counts.get(relpath, 0)
                        self._flip_counts[relpath] = ordinal + 1
                        rng = random.Random(
                            f"{self.seed}:{relpath}:{ordinal}"
                        )
                        pos = rng.randrange(len(data) * 8)
                        buf = bytearray(data)
                        buf[pos // 8] ^= 1 << (pos % 8)
                        data = bytes(buf)
                        self.fired.append(f"bit_flip {relpath} bit {pos}")
        return data

    def check_kill(self, rank: int) -> bool:
        """Kill hook; called by the database at the top of each op.

        True means rank ``rank`` dies *now* — the caller is expected to
        mark itself dead in the world and raise
        :class:`RankKilledError`.  The ``nth`` counter counts only the
        victim's own ops, so a schedule is deterministic regardless of
        how the other ranks interleave.
        """
        with self._lock:
            for rule in self._rules:
                if rule.kind == "kill_rank" and rule.applies("op", rank):
                    self.fired.append(f"kill_rank rank={rank}")
                    return True
        return False

    def check_read(self, relpath: str) -> None:
        """Read hook; may raise ``StorageError``."""
        rank = self._current_rank()
        with self._lock:
            for rule in self._rules:
                if rule.kind == "io_error" and rule.op == "read" \
                        and rule.applies(relpath, rank):
                    self.fired.append(f"io_error:read {relpath}")
                    raise StorageError(f"injected I/O error reading {relpath}")

    def on_message(self, obj, src: int, dst: int) \
            -> Union[None, str, Tuple[str, float]]:
        """Message-send hook; returns ``None`` (deliver normally),
        ``"drop"``, ``"duplicate"``, or ``("delay", seconds)``."""
        name = type(obj).__name__
        with self._lock:
            for rule in self._rules:
                if rule.kind not in ("drop", "delay", "duplicate"):
                    continue
                if rule.applies(name, None):
                    self.fired.append(f"{rule.kind} {name} {src}->{dst}")
                    if rule.kind == "delay":
                        return ("delay", rule.delay_s)
                    return rule.kind
        return None
