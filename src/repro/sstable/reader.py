"""SSTable reader: bloom-gated lookups with binary or sequential search.

A get "opens the bloom filter file first to determine whether the
SSTable can be skipped"; on a possible hit it "loads the SSIndex in
memory and searches SSData with the given key" (paper §2.6).  With
binary search enabled each probe is a small random read of just the key
bytes at an indexed offset — cheap on NVM, which is the point of the
optimization.  With it disabled the reader scans SSData from the front
(the ``Default`` configuration in Figure 8).
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from repro.errors import StorageError
from repro.nvm.posixfs import PosixStore
from repro.sstable.format import (
    BLOOM_SUFFIX,
    DATA_SUFFIX,
    INDEX_SUFFIX,
    RECORD_HEADER_LEN,
    IndexEntry,
    Record,
    decode_index,
    decode_record_at,
    sstable_filenames,
)
from repro.util.bloom import BloomFilter

_SSID_RE = re.compile(r"^(\d{10})" + re.escape(DATA_SUFFIX) + "$")

#: speculative key bytes fetched with each record header during scans
_SPEC_KEY = 64


def list_ssids(store: PosixStore, directory: str) -> List[int]:
    """All SSIDs present under ``directory``, ascending."""
    ssids = []
    for name in store.listdir(directory):
        m = _SSID_RE.match(name)
        if m:
            ssids.append(int(m.group(1)))
    return sorted(ssids)


class SSTableReader:
    """Handle to one immutable SSTable.

    The parsed bloom filter and index are cached after first use (the OS
    page cache analogue); the device is still charged for the initial
    loads and for every SSData probe.
    """

    def __init__(self, store: PosixStore, directory: str, ssid: int) -> None:
        self.store = store
        self.directory = directory
        self.ssid = ssid
        d, i, b = sstable_filenames(ssid)
        self._data_path = f"{directory}/{d}"
        self._index_path = f"{directory}/{i}"
        self._bloom_path = f"{directory}/{b}"
        self._bloom: Optional[BloomFilter] = None
        self._index: Optional[List[IndexEntry]] = None

    # ----------------------------------------------------------------- loads
    def load_bloom(self, t: float) -> Tuple[BloomFilter, float]:
        """Load (once) and return the bloom filter."""
        if self._bloom is None:
            blob, t = self.store.read(self._bloom_path, t)
            self._bloom = BloomFilter.from_bytes(blob)
        return self._bloom, t

    def load_index(self, t: float) -> Tuple[List[IndexEntry], float]:
        """Load (once) and return the SSIndex entries."""
        if self._index is None:
            blob, t = self.store.read(self._index_path, t)
            self._index = decode_index(blob)
        return self._index, t

    def may_contain(self, key: bytes, t: float) -> Tuple[bool, float]:
        """Bloom membership test; False means definitely absent."""
        bloom, t = self.load_bloom(t)
        return key in bloom, t

    # ---------------------------------------------------------------- lookup
    def get(self, key: bytes, t: float,
            binary_search: bool = True,
            use_bloom: bool = True) -> Tuple[Optional[Record], float]:
        """Look up ``key``; returns (record-or-None, completion time).

        A returned tombstone record means "definitely deleted at this
        SSID" — callers must stop searching older SSTables.
        ``use_bloom=False`` skips the membership test (ablation mode):
        every SSTable pays a full search even for absent keys.
        """
        if use_bloom:
            hit, t = self.may_contain(key, t)
            if not hit:
                return None, t
        if binary_search:
            return self._binary_get(key, t)
        return self._sequential_get(key, t)

    def _binary_get(self, key: bytes, t: float) -> Tuple[Optional[Record], float]:
        index, t = self.load_index(t)
        lo, hi = 0, len(index) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            entry = index[mid]
            probe, t = self.store.read(
                self._data_path, t, entry.key_offset, entry.keylen
            )
            if probe == key:
                value, t = self.store.read(
                    self._data_path, t, entry.value_offset, entry.vallen
                )
                return Record(key, value, entry.tombstone), t
            if probe < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None, t

    def _sequential_get(self, key: bytes, t: float) -> Tuple[Optional[Record], float]:
        """Record-by-record scan of SSData front to back.

        This is the "Default" configuration of Figure 8: each record
        costs one small read (header + key) before the scan can jump to
        the next offset — O(n) device operations against binary search's
        O(log n), which is exactly the gap the optimization closes.
        """
        import struct as _struct

        size = self.store.size(self._data_path)
        offset = 0
        while offset < size:
            # speculative read: header plus enough bytes for typical keys
            probe, t = self.store.read(
                self._data_path, t, offset, RECORD_HEADER_LEN + _SPEC_KEY
            )
            keylen, vallen, flags = _struct.unpack_from("<IIB", probe, 0)
            kend = RECORD_HEADER_LEN + keylen
            if keylen <= _SPEC_KEY:
                rkey = probe[RECORD_HEADER_LEN:kend]
            else:  # long key: one more read
                rkey, t = self.store.read(
                    self._data_path, t, offset + RECORD_HEADER_LEN, keylen
                )
            if rkey == key:
                value, t = self.store.read(
                    self._data_path, t, offset + kend, vallen
                )
                return Record(bytes(rkey), value, bool(flags & 1)), t
            if rkey > key:
                return None, t  # sorted: key cannot appear later
            offset += kend + vallen
        return None, t

    # --------------------------------------------------------------- full I/O
    def read_all(self, t: float) -> Tuple[List[Record], float]:
        """Sequential read of the whole table (compaction, redistribution)."""
        blob, t = self.store.read(self._data_path, t)
        from repro.sstable.format import decode_records

        return list(decode_records(blob)), t

    def nbytes(self) -> int:
        """Total on-disk size of the three files."""
        total = 0
        for p in (self._data_path, self._index_path, self._bloom_path):
            try:
                total += self.store.size(p)
            except StorageError:
                pass
        return total

    def file_paths(self) -> Tuple[str, str, str]:
        """Store-relative paths of (SSData, SSIndex, bloom)."""
        return self._data_path, self._index_path, self._bloom_path

    def delete(self, t: float) -> float:
        """Remove all three files; returns the completion time."""
        for p in self.file_paths():
            t = self.store.delete(p, t)
        return t
