"""SSTable reader: bloom-gated lookups with binary or sequential search.

A get "opens the bloom filter file first to determine whether the
SSTable can be skipped"; on a possible hit it "loads the SSIndex in
memory and searches SSData with the given key" (paper §2.6).  With
binary search enabled each probe is a small random read of just the key
bytes at an indexed offset — cheap on NVM, which is the point of the
optimization.  With it disabled the reader scans SSData from the front
(the ``Default`` configuration in Figure 8).

Verification (format v2) is lazy: the bloom and index files check their
own CRCs when first loaded, and SSData blocks are checked the first
time a probe touches them, against the footer committed in the SSIndex.
A mismatch raises :class:`repro.errors.CorruptionError` (or
:class:`repro.errors.TornWriteError` when the file is short) — the
reader never returns bytes that failed their checksum.  v1 tables have
no checksums and are served with structural validation only.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import CorruptionError, StorageError, TornWriteError
from repro.nvm.posixfs import PosixStore
from repro.sstable.block_cache import BlockCache
from repro.sstable.format import (
    BLOOM_SUFFIX,
    DATA_SUFFIX,
    INDEX_SUFFIX,
    RECORD_HEADER_LEN,
    IndexEntry,
    Record,
    TableFooter,
    decode_bloom_file,
    decode_record_at,
    decode_records,
    parse_index,
    sstable_filenames,
)
from repro.util.bloom import BloomFilter
from repro.util.checksum import crc32c

_SSID_RE = re.compile(r"^(\d{10})" + re.escape(DATA_SUFFIX) + "$")

#: speculative key bytes fetched with each record header during scans
_SPEC_KEY = 64


def list_ssids(store: PosixStore, directory: str) -> List[int]:
    """All SSIDs present under ``directory``, ascending."""
    ssids = []
    for name in store.listdir(directory):
        m = _SSID_RE.match(name)
        if m:
            ssids.append(int(m.group(1)))
    return sorted(ssids)


class SSTableReader:
    """Handle to one immutable SSTable.

    The parsed bloom filter and index are cached after first use (the OS
    page cache analogue); the device is still charged for the initial
    loads and for every SSData probe.

    With a shared :class:`~repro.sstable.block_cache.BlockCache`
    attached, SSData probes read through 64KB block spans: a cached
    block costs no device time and needs no re-verification (its CRC
    was checked at fill), a miss reads and verifies the block once and
    caches it for every other reader of the same directory.
    ``cache_priority="low"`` (compaction, whole-table scans) inserts at
    the cold end of the LRU and never promotes, so streaming reads
    cannot evict the point-get working set.  v1 tables (no footer, no
    block CRCs) bypass the cache entirely.
    """

    def __init__(self, store: PosixStore, directory: str, ssid: int,
                 block_cache: Optional[BlockCache] = None,
                 cache_priority: str = "normal") -> None:
        self.store = store
        self.directory = directory
        self.ssid = ssid
        d, i, b = sstable_filenames(ssid)
        self._data_path = f"{directory}/{d}"
        self._index_path = f"{directory}/{i}"
        self._bloom_path = f"{directory}/{b}"
        self._bloom: Optional[BloomFilter] = None
        self._index: Optional[List[IndexEntry]] = None
        self._footer: Optional[TableFooter] = None
        self._verified_blocks: Set[int] = set()
        self._size_checked = False
        self._cache = block_cache
        self._cache_promote = cache_priority == "normal"

    @classmethod
    def from_bundle(cls, store: PosixStore, directory: str, ssid: int,
                    index_blob: bytes, bloom_blob: bytes,
                    block_cache: Optional[BlockCache] = None,
                    cache_priority: str = "normal") -> "SSTableReader":
        """Build a reader from a replicated metadata bundle.

        The bloom filter, index entries, and v2 footer are parsed from
        the shipped blobs instead of the sidecar files, so the metadata
        side of the gate order (fences → bloom → index) costs no device
        time on the owner's NVM — only data-block probes touch
        ``directory``.  Requires a v2 index (the footer's block CRCs are
        what make one-sided data reads verifiable); raises
        :class:`CorruptionError` if either blob fails its checksum or
        the index has no footer.
        """
        reader = cls(store, directory, ssid, block_cache=block_cache,
                     cache_priority=cache_priority)
        try:
            reader._bloom = decode_bloom_file(bloom_blob)
            reader._index, reader._footer = parse_index(index_blob)
        except CorruptionError as exc:
            raise reader._corrupt(f"metadata bundle: {exc}") from exc
        if reader._footer is None:
            raise reader._corrupt(
                "metadata bundle carries a v1 index (no footer); "
                "one-sided reads need v2 block CRCs"
            )
        return reader

    def _corrupt(self, detail: str) -> CorruptionError:
        return CorruptionError(f"sstable {self.ssid} ({self.directory}): {detail}")

    # ----------------------------------------------------------------- loads
    def load_bloom(self, t: float) -> Tuple[BloomFilter, float]:
        """Load (once), verify, and return the bloom filter."""
        if self._bloom is None:
            blob, t = self.store.read(self._bloom_path, t)
            try:
                self._bloom = decode_bloom_file(blob)
            except CorruptionError as exc:
                raise self._corrupt(str(exc)) from exc
        return self._bloom, t

    def load_index(self, t: float) -> Tuple[List[IndexEntry], float]:
        """Load (once), verify, and return the SSIndex entries."""
        if self._index is None:
            blob, t = self.store.read(self._index_path, t)
            try:
                self._index, self._footer = parse_index(blob)
            except CorruptionError as exc:
                raise self._corrupt(str(exc)) from exc
        return self._index, t

    def footer(self, t: float) -> Tuple[Optional[TableFooter], float]:
        """The v2 footer, loading the index if needed (None for v1)."""
        _, t = self.load_index(t)
        return self._footer, t

    def may_contain(self, key: bytes, t: float) -> Tuple[bool, float]:
        """Bloom membership test; False means definitely absent."""
        bloom, t = self.load_bloom(t)
        return key in bloom, t

    def key_range(self, t: float) -> Tuple[Optional[Tuple[bytes, bytes]], float]:
        """The CRC-protected ``[min_key, max_key]`` fences, or None.

        v1 tables have no footer and return ``None`` (callers fall back
        to bloom-only gating).  An *empty* v2 table has fences
        ``(b"", b"")`` — since valid keys are non-empty, every lookup
        prunes it.  Cheap after the first index load.
        """
        footer, t = self.footer(t)
        if footer is None:
            return None, t
        return (footer.min_key, footer.max_key), t

    # -------------------------------------------------------- data integrity
    def _check_data_size(self) -> None:
        """First-touch check that SSData matches its committed length."""
        if self._size_checked or self._footer is None:
            return
        size = self.store.size(self._data_path)
        if size != self._footer.data_len:
            raise TornWriteError(
                f"sstable {self.ssid} ({self.directory}): SSData is "
                f"{size} bytes, footer committed {self._footer.data_len}"
            )
        self._size_checked = True

    def _verify_span(self, lo: int, hi: int, t: float) -> float:
        """Verify (once) every data block overlapping ``[lo, hi)``."""
        footer = self._footer
        if footer is None:
            return t  # v1: no checksums on disk
        self._check_data_size()
        bs = footer.block_size
        for blk in range(lo // bs, (max(hi, lo + 1) - 1) // bs + 1):
            if blk in self._verified_blocks:
                continue
            if blk >= len(footer.block_crcs):
                raise self._corrupt(f"index entry points past block {blk}")
            blob, t = self.store.read(self._data_path, t, blk * bs, bs)
            if crc32c(blob) != footer.block_crcs[blk]:
                raise self._corrupt(f"SSData block {blk} checksum mismatch")
            self._verified_blocks.add(blk)
        return t

    def _entry_bounds_ok(self, entry: IndexEntry) -> bool:
        footer = self._footer
        if footer is None:
            return True
        return entry.offset + entry.record_len <= footer.data_len

    # ------------------------------------------------------------ cached I/O
    def _cache_active(self) -> bool:
        """Block-cached reads need a cache and v2 block CRCs to verify
        fills against; v1 tables always take the direct path."""
        return self._cache is not None and self._footer is not None

    def _read_at(self, offset: int, length: int, t: float,
                 low_priority: bool = False) -> Tuple[bytes, float]:
        """Read ``[offset, offset+length)`` through the block cache.

        Cached blocks cost no device time (they were verified at fill);
        the missing blocks of the span are fetched as one vectored read
        and CRC-checked before insertion, so the cache only ever holds
        verified bytes.  Only callable when :meth:`_cache_active`.
        ``low_priority=True`` (scan cursors) makes this one call behave
        like a ``cache_priority="low"`` reader: hits do not promote and
        fills land at the cold end, whatever the reader's own priority.
        """
        footer, cache = self._footer, self._cache
        assert footer is not None and cache is not None
        self._check_data_size()
        if length <= 0:
            return b"", t
        promote = self._cache_promote and not low_priority
        bs = footer.block_size
        first, last = offset // bs, (offset + length - 1) // bs
        blocks: Dict[int, bytes] = {}
        missing: List[int] = []
        for blk in range(first, last + 1):
            if blk >= len(footer.block_crcs):
                raise self._corrupt(f"index entry points past block {blk}")
            data = cache.get(self.directory, self.ssid, blk,
                             promote=promote)
            if data is None:
                missing.append(blk)
            else:
                blocks[blk] = data
        if missing:
            blobs, t = self.store.read_spans(
                self._data_path, [(blk * bs, bs) for blk in missing], t
            )
            for blk, blob in zip(missing, blobs):
                if crc32c(blob) != footer.block_crcs[blk]:
                    raise self._corrupt(f"SSData block {blk} checksum mismatch")
                self._verified_blocks.add(blk)
                cache.put(self.directory, self.ssid, blk, blob,
                          low_priority=not promote)
                blocks[blk] = blob
        buf = b"".join(blocks[blk] for blk in range(first, last + 1))
        start = offset - first * bs
        return buf[start:start + length], t

    # ------------------------------------------------------------ scan support
    def block_cached(self) -> bool:
        """Whether SSData reads route through a shared block cache.

        Meaningful once the index is loaded (the footer decides: v1
        tables have no block CRCs to verify fills against).  Scan
        cursors use this to choose between block-bracketed streaming
        and the one-big-read fallback.
        """
        return self._cache_active()

    def data_block_size(self) -> Optional[int]:
        """The v2 SSData block size, or None for v1 (index must be loaded)."""
        return None if self._footer is None else self._footer.block_size

    def read_span(self, offset: int, length: int, t: float,
                  low_priority: bool = True) -> Tuple[bytes, float]:
        """Read ``[offset, offset+length)`` of SSData (scan cursors).

        Routes through the shared block cache when one is attached and
        the table is v2 — by default at *low* priority, so a scan's
        streaming reads fill free budget without evicting the point-get
        working set — and falls back to a direct verified device read
        otherwise.  Call :meth:`load_index` first: the footer gates both
        the cache path and span verification.
        """
        if self._cache_active():
            return self._read_at(offset, length, t, low_priority=low_priority)
        t = self._verify_span(offset, offset + length, t)
        return self.store.read(self._data_path, t, offset, length)

    def find_ge(self, key: Optional[bytes], t: float) -> Tuple[int, float]:
        """Index position of the first entry with ``entry.key >= key``.

        Binary search probing only the key bytes of O(log n) entries —
        the scan cursor's bracketing step.  ``key=None`` (open start)
        returns 0 for free; a result of ``len(index)`` means no entry
        qualifies.
        """
        index, t = self.load_index(t)
        if key is None:
            return 0, t
        lo, hi = 0, len(index)
        while lo < hi:
            mid = (lo + hi) // 2
            entry = index[mid]
            if not self._entry_bounds_ok(entry):
                raise self._corrupt(f"index entry {mid} overruns SSData")
            probe, t = self.read_span(entry.key_offset, entry.keylen, t)
            if probe < key:
                lo = mid + 1
            else:
                hi = mid
        return lo, t

    # ---------------------------------------------------------------- lookup
    def get(self, key: bytes, t: float,
            binary_search: bool = True,
            use_bloom: bool = True) -> Tuple[Optional[Record], float]:
        """Look up ``key``; returns (record-or-None, completion time).

        A returned tombstone record means "definitely deleted at this
        SSID" — callers must stop searching older SSTables.
        ``use_bloom=False`` skips the membership test (ablation mode):
        every SSTable pays a full search even for absent keys.
        """
        if use_bloom:
            hit, t = self.may_contain(key, t)
            if not hit:
                return None, t
        if binary_search:
            return self._binary_get(key, t)
        return self._sequential_get(key, t)

    def _binary_get(self, key: bytes, t: float) -> Tuple[Optional[Record], float]:
        index, t = self.load_index(t)
        cached = self._cache_active()
        lo, hi = 0, len(index) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            entry = index[mid]
            if not self._entry_bounds_ok(entry):
                raise self._corrupt(f"index entry {mid} overruns SSData")
            if cached:
                probe, t = self._read_at(entry.key_offset, entry.keylen, t)
            else:
                t = self._verify_span(entry.offset,
                                      entry.offset + entry.record_len, t)
                probe, t = self.store.read(
                    self._data_path, t, entry.key_offset, entry.keylen
                )
            if probe == key:
                if cached:
                    value, t = self._read_at(entry.value_offset, entry.vallen, t)
                else:
                    value, t = self.store.read(
                        self._data_path, t, entry.value_offset, entry.vallen
                    )
                return Record(key, value, entry.tombstone), t
            if probe < key:
                lo = mid + 1
            else:
                hi = mid - 1
        return None, t

    def _sequential_get(self, key: bytes, t: float) -> Tuple[Optional[Record], float]:
        """Record-by-record scan of SSData front to back.

        This is the "Default" configuration of Figure 8: each record
        costs one small read (header + key) before the scan can jump to
        the next offset — O(n) device operations against binary search's
        O(log n), which is exactly the gap the optimization closes.
        The scan verifies blocks only when the footer is already cached
        (it deliberately avoids loading the index, that being the whole
        point of the ablation); structural decode errors still raise.
        """
        import struct as _struct

        size = self.store.size(self._data_path)
        if self._footer is not None and size != self._footer.data_len:
            raise TornWriteError(
                f"sstable {self.ssid} ({self.directory}): SSData is "
                f"{size} bytes, footer committed {self._footer.data_len}"
            )
        offset = 0
        while offset < size:
            # speculative read: header plus enough bytes for typical keys
            probe, t = self.store.read(
                self._data_path, t, offset, RECORD_HEADER_LEN + _SPEC_KEY
            )
            try:
                keylen, vallen, flags = _struct.unpack_from("<IIB", probe, 0)
            except _struct.error as exc:
                raise self._corrupt(
                    f"SSData record header truncated at {offset}"
                ) from exc
            kend = RECORD_HEADER_LEN + keylen
            if offset + kend + vallen > size:
                raise self._corrupt(f"SSData record at {offset} overruns the file")
            if self._footer is not None:
                t = self._verify_span(offset, offset + kend + vallen, t)
            if keylen <= _SPEC_KEY:
                rkey = probe[RECORD_HEADER_LEN:kend]
            else:  # long key: one more read
                rkey, t = self.store.read(
                    self._data_path, t, offset + RECORD_HEADER_LEN, keylen
                )
            if rkey == key:
                value, t = self.store.read(
                    self._data_path, t, offset + kend, vallen
                )
                return Record(bytes(rkey), value, bool(flags & 1)), t
            if rkey > key:
                return None, t  # sorted: key cannot appear later
            offset += kend + vallen
        return None, t

    # --------------------------------------------------------------- full I/O
    def read_all(self, t: float) -> Tuple[List[Record], float]:
        """Sequential read of the whole table (compaction, redistribution).

        For v2 tables the whole buffer is verified against the footer's
        block CRCs before decoding; compaction therefore never launders
        corrupt bytes into a fresh table.
        """
        blob, t = self.store.read(self._data_path, t)
        try:
            _, t = self.load_index(t)
        except CorruptionError:
            raise  # a corrupt index must not be silently ignored
        except StorageError:
            self._footer = None  # sidecar missing: structural checks only
        footer = self._footer
        if footer is not None:
            if len(blob) != footer.data_len:
                raise TornWriteError(
                    f"sstable {self.ssid} ({self.directory}): SSData is "
                    f"{len(blob)} bytes, footer committed {footer.data_len}"
                )
            bs = footer.block_size
            for blk, want in enumerate(footer.block_crcs):
                span = blob[blk * bs:(blk + 1) * bs]
                if crc32c(span) != want:
                    raise self._corrupt(f"SSData block {blk} checksum mismatch")
                self._verified_blocks.add(blk)
                if self._cache is not None:
                    # streaming reads fill free budget only (cold end):
                    # a compaction or scan must not evict the hot set
                    self._cache.put(self.directory, self.ssid, blk, span,
                                    low_priority=True)
            self._size_checked = True
        try:
            return list(decode_records(blob)), t
        except CorruptionError as exc:
            raise self._corrupt(str(exc)) from exc

    def verify(self, t: float) -> float:
        """Full integrity check of all three files; returns completion time.

        Raises :class:`CorruptionError` / :class:`TornWriteError` on the
        first problem found.  For v2 this checks the index CRC, the
        bloom file CRC against the footer, every SSData block CRC, and
        that the decoded records agree with the index; v1 tables get the
        structural subset.
        """
        index, t = self.load_index(t)
        footer = self._footer
        bloom_blob, t = self.store.read(self._bloom_path, t)
        if footer is not None:
            if len(bloom_blob) != footer.bloom_len:
                raise TornWriteError(
                    f"sstable {self.ssid} ({self.directory}): bloom is "
                    f"{len(bloom_blob)} bytes, footer committed {footer.bloom_len}"
                )
            if crc32c(bloom_blob) != footer.bloom_crc:
                raise self._corrupt("bloom file checksum mismatch")
        try:
            self._bloom = decode_bloom_file(bloom_blob)
        except CorruptionError as exc:
            raise self._corrupt(str(exc)) from exc
        records, t = self.read_all(t)
        if len(records) != len(index):
            raise self._corrupt(
                f"SSData holds {len(records)} records, index claims {len(index)}"
            )
        for rec, entry in zip(records, index):
            if len(rec.key) != entry.keylen or len(rec.value) != entry.vallen:
                raise self._corrupt("index entry disagrees with SSData record")
        return t

    def nbytes(self) -> int:
        """Total on-disk size of the three files."""
        total = 0
        for p in (self._data_path, self._index_path, self._bloom_path):
            try:
                total += self.store.size(p)
            except StorageError:
                pass
        return total

    def file_paths(self) -> Tuple[str, str, str]:
        """Store-relative paths of (SSData, SSIndex, bloom)."""
        return self._data_path, self._index_path, self._bloom_path

    def delete(self, t: float) -> float:
        """Remove all three files; returns the completion time."""
        for p in self.file_paths():
            t = self.store.delete(p, t)
        return t
