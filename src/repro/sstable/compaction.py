"""SSTable compaction: merge a run of tables, newest-SSID wins.

"PapyrusKV merges the data in a set of SSTables ... whenever the SSID of
a new SSTable is multiples of the predefined number" (paper §2.5).  The
merge is a sequential read of each input (the tables are key-sorted),
keeps the record from the highest SSID for duplicate keys, writes one
new merged SSTable, and deletes the inputs.

Tombstones survive a *partial* compaction (they may still shadow live
records in tables older than the compacted run); a *full* compaction of
every table in a rank's set may drop them.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.nvm.posixfs import PosixStore
from repro.sstable.block_cache import BlockCache
from repro.sstable.format import Record
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import write_sstable


def merge_records(
    runs: List[List[Record]], drop_tombstones: bool = False
) -> List[Record]:
    """K-way merge; ``runs`` ordered oldest→newest, each sorted by key.

    For duplicate keys the record from the newest run wins.
    """
    heap: List[Tuple[bytes, int, int]] = []  # (key, -run_idx, pos)
    for ri, run in enumerate(runs):
        if run:
            heapq.heappush(heap, (run[0].key, -ri, 0))
    out: List[Record] = []
    last_key: Optional[bytes] = None
    while heap:
        key, neg_ri, pos = heapq.heappop(heap)
        ri = -neg_ri
        rec = runs[ri][pos]
        if key != last_key:
            last_key = key
            if not (drop_tombstones and rec.tombstone):
                out.append(rec)
        if pos + 1 < len(runs[ri]):
            heapq.heappush(heap, (runs[ri][pos + 1].key, neg_ri, pos + 1))
    return out


def compact(
    store: PosixStore,
    directory: str,
    ssids: List[int],
    new_ssid: int,
    t: float,
    drop_tombstones: bool = False,
    fp_rate: float = 0.01,
    block_cache: Optional[BlockCache] = None,
) -> Tuple[int, float]:
    """Merge the tables ``ssids`` into one table ``new_ssid``.

    Returns ``(merged_record_count, virtual_completion_time)``.  The
    inputs are deleted after the merged table is durably written, so a
    reader never observes a state with data missing.  A shared block
    cache is attached at *low* priority: compaction's streaming reads
    fill free budget but never evict the point-get working set, and the
    caller is expected to invalidate the input tables afterwards.
    """
    if not ssids:
        return 0, t
    readers = [
        SSTableReader(store, directory, s,
                      block_cache=block_cache, cache_priority="low")
        for s in sorted(ssids)
    ]
    runs: List[List[Record]] = []
    for rd in readers:  # oldest → newest
        recs, t = rd.read_all(t)
        runs.append(recs)
    merged = merge_records(runs, drop_tombstones=drop_tombstones)
    _, t = write_sstable(store, directory, new_ssid, merged, t, fp_rate)
    for rd in readers:
        if rd.ssid != new_ssid:  # reusing an input SSID replaces its files
            t = rd.delete(t)
    return len(merged), t
