"""SSTable compaction: merge a run of tables, newest-SSID wins.

"PapyrusKV merges the data in a set of SSTables ... whenever the SSID of
a new SSTable is multiples of the predefined number" (paper §2.5).  The
merge is a sequential read of each input (the tables are key-sorted),
keeps the record from the highest SSID for duplicate keys, and deletes
the inputs once the output is durable.

Two output shapes:

* :func:`compact` — the paper's monolithic merge: one output table.
* **Partitioned** — :func:`read_and_merge` + :func:`partition_records`
  split the merged stream into contiguous key-range partitions that the
  database schedules as independent, rate-limited jobs, each producing
  one fresh-SSID table with disjoint footer fences.  Minor (delta-only)
  merges keep old data in place, so a run of flushes rewrites each byte
  once instead of rewriting the whole rank shard every trigger.

Tombstones survive a *partial* compaction (they may still shadow live
records in tables older than the compacted run); a *full* compaction of
every table in a rank's set may drop them.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.nvm.posixfs import PosixStore
from repro.sstable.block_cache import BlockCache
from repro.sstable.format import Record
from repro.sstable.reader import SSTableReader
from repro.sstable.writer import write_sstable


def merge_records(
    runs: List[List[Record]], drop_tombstones: bool = False
) -> List[Record]:
    """K-way merge; ``runs`` ordered oldest→newest, each sorted by key.

    For duplicate keys the record from the newest run wins.
    """
    heap: List[Tuple[bytes, int, int]] = []  # (key, -run_idx, pos)
    for ri, run in enumerate(runs):
        if run:
            heapq.heappush(heap, (run[0].key, -ri, 0))
    out: List[Record] = []
    last_key: Optional[bytes] = None
    while heap:
        key, neg_ri, pos = heapq.heappop(heap)
        ri = -neg_ri
        rec = runs[ri][pos]
        if key != last_key:
            last_key = key
            if not (drop_tombstones and rec.tombstone):
                out.append(rec)
        if pos + 1 < len(runs[ri]):
            heapq.heappush(heap, (runs[ri][pos + 1].key, neg_ri, pos + 1))
    return out


def read_and_merge(
    store: PosixStore,
    directory: str,
    ssids: List[int],
    t: float,
    drop_tombstones: bool = False,
    block_cache: Optional[BlockCache] = None,
) -> Tuple[List[Record], List[SSTableReader], float]:
    """Stream every input table once and k-way merge the runs.

    Returns ``(merged_records, readers, virtual_completion_time)``; the
    readers are handed back so the caller can delete the inputs once
    its outputs are durable.  A shared block cache is attached at *low*
    priority: compaction's streaming reads fill free budget but never
    evict the point-get working set, and the caller is expected to
    invalidate the input tables afterwards.
    """
    readers = [
        SSTableReader(store, directory, s,
                      block_cache=block_cache, cache_priority="low")
        for s in sorted(ssids)
    ]
    runs: List[List[Record]] = []
    for rd in readers:  # oldest → newest
        recs, t = rd.read_all(t)
        runs.append(recs)
    merged = merge_records(runs, drop_tombstones=drop_tombstones)
    return merged, readers, t


def partition_records(
    records: List[Record], nparts: int
) -> List[List[Record]]:
    """Split sorted ``records`` into ≤ ``nparts`` contiguous key ranges.

    Slices are balanced by record count; empty slices are never
    produced, so every partition's output table has meaningful footer
    fences and the ranges are pairwise disjoint (fence pruning stays
    decisive on the read path).
    """
    if nparts <= 1 or len(records) <= 1:
        return [records] if records else []
    nparts = min(nparts, len(records))
    base, extra = divmod(len(records), nparts)
    parts: List[List[Record]] = []
    lo = 0
    for p in range(nparts):
        hi = lo + base + (1 if p < extra else 0)
        parts.append(records[lo:hi])
        lo = hi
    return parts


def compact(
    store: PosixStore,
    directory: str,
    ssids: List[int],
    new_ssid: int,
    t: float,
    drop_tombstones: bool = False,
    fp_rate: float = 0.01,
    block_cache: Optional[BlockCache] = None,
    delete_inputs: bool = True,
) -> Tuple[int, float]:
    """Merge the tables ``ssids`` into one table ``new_ssid``.

    The paper's monolithic merge (and the ``compaction_partitions<=1``
    fallback).  Returns ``(merged_record_count, completion_time)``.
    The inputs are deleted after the merged table is durably written,
    so a reader never observes a state with data missing;
    ``delete_inputs=False`` leaves retirement to the caller (the
    database defers unlinks of tables an open scan has pinned).
    """
    if not ssids:
        return 0, t
    merged, readers, t = read_and_merge(
        store, directory, ssids, t,
        drop_tombstones=drop_tombstones, block_cache=block_cache,
    )
    _, t = write_sstable(store, directory, new_ssid, merged, t, fp_rate)
    if delete_inputs:
        for rd in readers:
            if rd.ssid != new_ssid:  # reusing an input SSID replaces its files
                t = rd.delete(t)
    return len(merged), t
