"""SSTables: immutable sorted on-NVM key-value files.

An SSTable "consists of three files, SSData, SSIndex, and bloom filter"
(paper §2.4): SSData holds the key-sorted records, SSIndex their offsets
and lengths, and the bloom filter answers may-contain queries so a get
can skip the table entirely.  Each SSTable carries a per-database,
per-rank monotonically increasing SSID; higher SSIDs hold newer data.
"""

from repro.sstable.block_cache import BlockCache
from repro.sstable.compaction import compact
from repro.sstable.format import (
    BLOOM_SUFFIX,
    DATA_SUFFIX,
    INDEX_SUFFIX,
    IndexEntry,
    Record,
    decode_index,
    decode_records,
    encode_index,
    encode_record,
)
from repro.sstable.reader import SSTableReader, list_ssids
from repro.sstable.writer import write_sstable

__all__ = [
    "BLOOM_SUFFIX",
    "BlockCache",
    "DATA_SUFFIX",
    "INDEX_SUFFIX",
    "IndexEntry",
    "Record",
    "SSTableReader",
    "compact",
    "decode_index",
    "decode_records",
    "encode_index",
    "encode_record",
    "list_ssids",
    "write_sstable",
]
