"""SSTable writer: flush sorted records to the three files."""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.nvm.posixfs import PosixStore
from repro.sstable.format import (
    IndexEntry,
    Record,
    encode_index,
    encode_record,
    sstable_filenames,
)
from repro.util.bloom import BloomFilter


def write_sstable(
    store: PosixStore,
    directory: str,
    ssid: int,
    records: Iterable[Record],
    t: float,
    fp_rate: float = 0.01,
) -> Tuple[int, float]:
    """Write one SSTable under ``directory`` in ``store``.

    ``records`` must already be sorted by key (MemTables iterate in key
    order).  Returns ``(bytes_written, virtual_completion_time)``.
    Tombstones are written too — they must shadow older SSTables until a
    compaction drops the dead keys.
    """
    recs: List[Record] = list(records)
    prev_key = None
    for r in recs:
        if prev_key is not None and r.key <= prev_key:
            raise ValueError("records must be strictly sorted by key")
        prev_key = r.key

    data = bytearray()
    entries: List[IndexEntry] = []
    bloom = BloomFilter.for_capacity(len(recs), fp_rate)
    for rec in recs:
        entries.append(
            IndexEntry(len(data), len(rec.key), len(rec.value), rec.tombstone)
        )
        data += encode_record(rec)
        bloom.add(rec.key)

    data_name, index_name, bloom_name = sstable_filenames(ssid)
    index_blob = encode_index(entries)
    bloom_blob = bloom.to_bytes()

    end = store.write(f"{directory}/{data_name}", bytes(data), t)
    end = store.write(f"{directory}/{index_name}", index_blob, end)
    end = store.write(f"{directory}/{bloom_name}", bloom_blob, end)
    return len(data) + len(index_blob) + len(bloom_blob), end
