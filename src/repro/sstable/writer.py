"""SSTable writer: flush sorted records to the three files.

Tables are written in format v2 by default: the SSIndex carries a
footer with CRC32C checksums over the SSData blocks and the bloom file,
and the bloom file carries its own self-checking header (see
:mod:`repro.sstable.format`).  All three files go through the store's
tmp-file + fsync + atomic-rename path, in the order SSData -> SSIndex
-> bloom, so a crash leaves either no table, a complete data file whose
sidecars can be rebuilt, or a complete table — never a torn one.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from repro.nvm.posixfs import PosixStore
from repro.sstable.format import (
    FORMAT_V1,
    FORMAT_V2,
    IndexEntry,
    Record,
    encode_bloom_file,
    encode_index,
    encode_index_v2,
    encode_record,
    make_footer,
    sstable_filenames,
)
from repro.util.bloom import BloomFilter


def encode_table(
    records: Iterable[Record],
    fp_rate: float = 0.01,
    format_version: int = FORMAT_V2,
) -> Dict[str, bytes]:
    """Encode sorted ``records`` into the three file blobs.

    Returns ``{"data": ..., "index": ..., "bloom": ...}``.  Factored out
    of :func:`write_sstable` so recovery paths (sidecar rebuild from an
    intact SSData file) can re-derive blobs without rewriting the data.
    """
    recs: List[Record] = list(records)
    prev_key = None
    for r in recs:
        if prev_key is not None and r.key <= prev_key:
            raise ValueError("records must be strictly sorted by key")
        prev_key = r.key

    data = bytearray()
    entries: List[IndexEntry] = []
    bloom = BloomFilter.for_capacity(len(recs), fp_rate)
    for rec in recs:
        entries.append(
            IndexEntry(len(data), len(rec.key), len(rec.value), rec.tombstone)
        )
        data += encode_record(rec)
        bloom.add(rec.key)

    data_blob = bytes(data)
    if format_version == FORMAT_V1:
        return {
            "data": data_blob,
            "index": encode_index(entries),
            "bloom": bloom.to_bytes(),
        }
    bloom_blob = encode_bloom_file(bloom)
    footer = make_footer(
        data_blob, bloom_blob,
        min_key=recs[0].key if recs else b"",
        max_key=recs[-1].key if recs else b"",
    )
    index_blob = encode_index_v2(entries, footer)
    return {"data": data_blob, "index": index_blob, "bloom": bloom_blob}


def write_sstable(
    store: PosixStore,
    directory: str,
    ssid: int,
    records: Iterable[Record],
    t: float,
    fp_rate: float = 0.01,
    format_version: int = FORMAT_V2,
) -> Tuple[int, float]:
    """Write one SSTable under ``directory`` in ``store``.

    ``records`` must already be sorted by key (MemTables iterate in key
    order).  Returns ``(bytes_written, virtual_completion_time)``.
    Tombstones are written too — they must shadow older SSTables until a
    compaction drops the dead keys.
    """
    blobs = encode_table(records, fp_rate, format_version)
    data_name, index_name, bloom_name = sstable_filenames(ssid)
    end = store.write(f"{directory}/{data_name}", blobs["data"], t)
    end = store.write(f"{directory}/{index_name}", blobs["index"], end)
    end = store.write(f"{directory}/{bloom_name}", blobs["bloom"], end)
    return sum(len(b) for b in blobs.values()), end


def write_sstable_blobs(
    store: PosixStore,
    directory: str,
    ssid: int,
    blobs: Dict[str, bytes],
    t: float,
) -> Tuple[int, float]:
    """Land pre-encoded table blobs as one batched durable commit.

    The pipelined flush builds the blobs on the CPU stage
    (:func:`encode_table`) and hands them here on the sync stage: the
    three files keep the SSData -> SSIndex -> bloom order and their
    per-file atomicity/crash sites, but the device pays one access
    latency plus the aggregate bytes (``PosixStore.write_ordered``).
    Returns ``(bytes_written, virtual_completion_time)``.
    """
    data_name, index_name, bloom_name = sstable_filenames(ssid)
    end = store.write_ordered(
        [
            (f"{directory}/{data_name}", blobs["data"]),
            (f"{directory}/{index_name}", blobs["index"]),
            (f"{directory}/{bloom_name}", blobs["bloom"]),
        ],
        t,
    )
    return sum(len(b) for b in blobs.values()), end


def write_tables_ordered(
    store: PosixStore,
    directory: str,
    tables: Iterable[Tuple[int, Dict[str, bytes]]],
    t: float,
) -> Tuple[int, float]:
    """Land several pre-encoded tables as one batched durable commit.

    ``tables`` is ``[(ssid, blobs), ...]`` with blobs from
    :func:`encode_table`.  Partitioned compaction syncs a whole round of
    partition outputs this way: every table keeps the SSData -> SSIndex
    -> bloom file order and per-file atomicity, but the device pays a
    single access latency plus the round's aggregate bytes — so a
    foreground flush queued behind the round waits for one bounded
    transfer, not ``3 x partitions`` separate accesses.  Returns
    ``(bytes_written, virtual_completion_time)``.
    """
    items: List[Tuple[str, bytes]] = []
    total = 0
    for ssid, blobs in tables:
        data_name, index_name, bloom_name = sstable_filenames(ssid)
        items.append((f"{directory}/{data_name}", blobs["data"]))
        items.append((f"{directory}/{index_name}", blobs["index"]))
        items.append((f"{directory}/{bloom_name}", blobs["bloom"]))
        total += sum(len(b) for b in blobs.values())
    if not items:
        return 0, t
    end = store.write_ordered(items, t)
    return total, end
