"""Shared SSData block cache for the read path.

FOCUS-style hierarchical caching (arXiv:2505.24221): the dominant
read-amplification lever for LSM gets is keeping hot metadata and data
blocks resident, so every :class:`~repro.sstable.reader.SSTableReader`
of one database — own tables and storage-group peers' tables alike —
shares a single :class:`BlockCache` over 64KB-aligned SSData block
spans.

Design points:

* **Charged bytes, not entries.**  Capacity is a byte budget over the
  cached block payloads, like the MemTable-style accounting of
  :class:`repro.util.lru.LRUCache`.
* **Verified-once fill.**  Blocks enter the cache only through the
  reader's fill path, which checks the footer CRC32C *before* insert —
  a cache hit never needs re-verification, and a corrupt block can
  never be cached.
* **Low-priority inserts.**  Compaction and whole-table scans stream
  every block of their inputs; inserting those at the hot end would
  evict the point-get working set (the Co-KV observation,
  arXiv:1807.04151).  A low-priority insert lands at the *cold* end of
  the LRU order: it fills free budget but is the first thing evicted —
  when the cache is full it effectively evicts itself instead of a hot
  block.
* **Precise invalidation.**  Entries are keyed ``(directory, ssid,
  block)`` with a per-table index, so flush/compaction/quarantine and
  checkpoint-restore repair can drop exactly the affected table (or a
  whole rank directory) without flushing unrelated working sets.
* **Thread safety.**  One tracked lock (``sstable.block_cache`` in the
  canonical lock order) guards all state; the main rank thread and the
  message handler both read through the cache.  Accesses are annotated
  for the race detector.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set, Tuple

from repro.analysis.runtime import annotate_write, make_lock

#: key of one cached span: (directory, ssid, block index)
BlockKey = Tuple[str, int, int]


class BlockCache:
    """Size-bounded LRU over verified SSData block spans."""

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError("block cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        #: leaf lock; nothing else is ever acquired while holding it
        self._blocks_lock = make_lock("sstable.block_cache")
        self._data: "OrderedDict[BlockKey, bytes]" = OrderedDict()
        #: (directory, ssid) -> set of cached block indexes
        self._by_table: Dict[Tuple[str, int], Set[int]] = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.inserts = 0
        self.low_priority_inserts = 0
        self.invalidations = 0

    # -------------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._data)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    def get(self, directory: str, ssid: int, blk: int,
            promote: bool = True) -> Optional[bytes]:
        """Return the cached block or None; counts a hit or miss.

        ``promote=False`` (compaction / scrub readers) leaves the
        entry's recency untouched so background streams do not fake
        heat onto blocks the foreground never asked for.
        """
        key = (directory, ssid, blk)
        with self._blocks_lock:
            annotate_write(self, "block_cache")  # recency + counters
            data = self._data.get(key)
            if data is None:
                self.misses += 1
                return None
            if promote:
                self._data.move_to_end(key)
            self.hits += 1
            return data

    # --------------------------------------------------------------- mutation
    def put(self, directory: str, ssid: int, blk: int, data: bytes,
            low_priority: bool = False) -> None:
        """Insert one verified block.

        Normal inserts land at the hot (MRU) end.  Low-priority inserts
        land at the cold (LRU) end: over budget they evict *themselves*
        first, so a streaming fill can never displace the hot set.
        """
        if len(data) > self.capacity_bytes:
            return  # a single oversized block cannot be cached
        key = (directory, ssid, blk)
        with self._blocks_lock:
            annotate_write(self, "block_cache")
            old = self._data.get(key)
            if old is not None:
                # refresh in place: a streaming re-fill must not demote
                # a block the foreground heated up, so the entry keeps
                # its recency unless the insert itself is hot
                self._bytes += len(data) - len(old)
                self._data[key] = data
                if low_priority:
                    self.low_priority_inserts += 1
                else:
                    self.inserts += 1
                    self._data.move_to_end(key)
            else:
                self._data[key] = data
                self._bytes += len(data)
                self._by_table.setdefault((directory, ssid), set()).add(blk)
                if low_priority:
                    self.low_priority_inserts += 1
                    self._data.move_to_end(key, last=False)
                else:
                    self.inserts += 1
            while self._bytes > self.capacity_bytes and self._data:
                (d, s, b), blob = self._data.popitem(last=False)
                self._bytes -= len(blob)
                self.evictions += 1
                blks = self._by_table.get((d, s))
                if blks is not None:
                    blks.discard(b)
                    if not blks:
                        del self._by_table[(d, s)]

    def invalidate_table(self, directory: str, ssid: int) -> int:
        """Drop every cached block of one table; returns blocks dropped."""
        with self._blocks_lock:
            annotate_write(self, "block_cache")
            return self._drop_table(directory, ssid)

    def invalidate_dir(self, directory: str) -> int:
        """Drop every cached block under one rank directory."""
        with self._blocks_lock:
            annotate_write(self, "block_cache")
            dropped = 0
            for d, s in [k for k in self._by_table if k[0] == directory]:
                dropped += self._drop_table(d, s)
            return dropped

    def _drop_table(self, directory: str, ssid: int) -> int:
        """Remove one table's blocks (caller holds the lock)."""
        blks = self._by_table.pop((directory, ssid), None)
        if not blks:
            return 0
        for b in blks:
            blob = self._data.pop((directory, ssid, b), None)
            if blob is not None:
                self._bytes -= len(blob)
        self.invalidations += len(blks)
        return len(blks)

    def clear(self) -> None:
        """Evict everything (whole-database teardown)."""
        with self._blocks_lock:
            annotate_write(self, "block_cache")
            self.invalidations += len(self._data)
            self._data.clear()
            self._by_table.clear()
            self._bytes = 0

    # ---------------------------------------------------------------- metrics
    def cached_blocks(self, directory: str, ssid: int) -> int:
        """How many blocks of one table are resident (tests/diagnostics)."""
        with self._blocks_lock:
            return len(self._by_table.get((directory, ssid), ()))

    def counters(self) -> Dict[str, int]:
        """Counter snapshot for ``repro.metrics``."""
        with self._blocks_lock:
            return {
                "entries": len(self._data),
                "bytes": self._bytes,
                "capacity_bytes": self.capacity_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "inserts": self.inserts,
                "low_priority_inserts": self.low_priority_inserts,
                "invalidations": self.invalidations,
            }
