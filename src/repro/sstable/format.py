"""Binary on-disk format of the three SSTable files.

SSData record layout (identical in v1 and v2, little-endian)::

    keylen   u32
    vallen   u32
    flags    u8     (bit 0 = tombstone)
    key      keylen bytes
    value    vallen bytes

SSIndex v1 layout::

    magic    u32  = 0x50414B56  ("PAKV")
    count    u64
    entries  count * 17 bytes: offset u64, keylen u32, vallen u32, flags u8

SSIndex v2 layout (``format 2``)::

    magic      u32  = 0x32564B50  ("PKV2")
    count      u64
    entries    count * 17 bytes             (same as v1)
    footer:
        data_len    u64    committed SSData file length
        block_size  u32    CRC block granularity over SSData
        nblocks     u32
        block_crcs  nblocks * u32   CRC32C of each SSData block
        bloom_crc   u32    CRC32C of the whole bloom *file*
        bloom_len   u32    committed bloom file length
    index_crc  u32   CRC32C over every preceding byte of this file

The v1 bloom file is the raw serialized
:class:`repro.util.bloom.BloomFilter`; v2 prefixes it with a
self-checking header (``magic u32 = "PKVB"``, ``body_crc u32``) so the
bloom can be verified before the index is ever read (gets consult the
bloom first).  Keys live only in SSData — a binary-search probe must
touch SSData at the indexed offset, which is the access pattern whose
cost the paper's "SSTable binary search" optimization targets.

All parse errors raise :class:`repro.errors.CorruptionError` (a
``ValueError`` subclass, so pre-v2 callers keep working).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from repro.errors import CorruptionError
from repro.util.bloom import BloomFilter
from repro.util.checksum import crc32c

DATA_SUFFIX = ".ssd"
INDEX_SUFFIX = ".ssi"
BLOOM_SUFFIX = ".bf"
QUARANTINE_SUFFIX = ".quar"

MAGIC = 0x50414B56  # v1 "PAKV"
MAGIC_V2 = 0x32564B50  # "PKV2"
BLOOM_MAGIC_V2 = 0x42564B50  # "PKVB"
FORMAT_V1 = 1
FORMAT_V2 = 2
DATA_BLOCK_SIZE = 64 * 1024

_HDR = struct.Struct("<IQ")
_ENTRY = struct.Struct("<QIIB")
_REC_HDR = struct.Struct("<IIB")
_FOOTER_FIXED = struct.Struct("<QII")  # data_len, block_size, nblocks
_FOOTER_TAIL = struct.Struct("<II")  # bloom_crc, bloom_len
_U32 = struct.Struct("<I")
_BLOOM_HDR = struct.Struct("<II")  # magic, body_crc

RECORD_HEADER_LEN = _REC_HDR.size  # 9
INDEX_ENTRY_LEN = _ENTRY.size  # 17
TOMBSTONE_FLAG = 0x01


@dataclass(frozen=True)
class Record:
    """One key-value pair (tombstones carry an empty value)."""

    key: bytes
    value: bytes
    tombstone: bool = False

    def encoded_len(self) -> int:
        """On-disk size of this record."""
        return RECORD_HEADER_LEN + len(self.key) + len(self.value)


@dataclass(frozen=True)
class IndexEntry:
    """Location of one record inside SSData."""

    offset: int
    keylen: int
    vallen: int
    tombstone: bool

    @property
    def key_offset(self) -> int:
        return self.offset + RECORD_HEADER_LEN

    @property
    def value_offset(self) -> int:
        return self.offset + RECORD_HEADER_LEN + self.keylen

    @property
    def record_len(self) -> int:
        return RECORD_HEADER_LEN + self.keylen + self.vallen


@dataclass(frozen=True)
class TableFooter:
    """v2 integrity metadata carried at the end of the SSIndex file.

    ``min_key``/``max_key`` are the table's smallest and largest keys
    (empty for an empty table) — CRC-protected fences that bound the
    poisoned range when the data file itself is too damaged to trust.
    """

    data_len: int
    block_size: int
    block_crcs: Tuple[int, ...]
    bloom_crc: int
    bloom_len: int
    min_key: bytes = b""
    max_key: bytes = b""


def encode_record(rec: Record) -> bytes:
    """Serialize one record in SSData layout."""
    flags = TOMBSTONE_FLAG if rec.tombstone else 0
    return _REC_HDR.pack(len(rec.key), len(rec.value), flags) + rec.key + rec.value


def decode_record_at(buf: bytes, offset: int) -> Tuple[Record, int]:
    """Decode one record at ``offset``; returns (record, next_offset)."""
    try:
        keylen, vallen, flags = _REC_HDR.unpack_from(buf, offset)
    except struct.error as exc:
        raise CorruptionError(f"SSData record header truncated at {offset}") from exc
    ko = offset + RECORD_HEADER_LEN
    end = ko + keylen + vallen
    if end > len(buf):
        raise CorruptionError(
            f"SSData record at {offset} overruns the file "
            f"(needs {end} bytes, have {len(buf)})"
        )
    key = bytes(buf[ko:ko + keylen])
    value = bytes(buf[ko + keylen:end])
    return Record(key, value, bool(flags & TOMBSTONE_FLAG)), end


def decode_records(buf: bytes) -> Iterator[Record]:
    """Decode a whole SSData buffer in file order (sorted by key)."""
    offset = 0
    end = len(buf)
    while offset < end:
        rec, offset = decode_record_at(buf, offset)
        yield rec


def encode_index(entries: List[IndexEntry]) -> bytes:
    """Serialize a v1 SSIndex file (magic + count + fixed entries)."""
    out = bytearray(_HDR.pack(MAGIC, len(entries)))
    for e in entries:
        out += _ENTRY.pack(
            e.offset, e.keylen, e.vallen, TOMBSTONE_FLAG if e.tombstone else 0
        )
    return bytes(out)


def encode_index_v2(entries: List[IndexEntry], footer: TableFooter) -> bytes:
    """Serialize a v2 SSIndex file (entries + footer + trailing CRC)."""
    out = bytearray(_HDR.pack(MAGIC_V2, len(entries)))
    for e in entries:
        out += _ENTRY.pack(
            e.offset, e.keylen, e.vallen, TOMBSTONE_FLAG if e.tombstone else 0
        )
    out += _FOOTER_FIXED.pack(footer.data_len, footer.block_size,
                              len(footer.block_crcs))
    for c in footer.block_crcs:
        out += _U32.pack(c)
    out += _FOOTER_TAIL.pack(footer.bloom_crc, footer.bloom_len)
    out += _U32.pack(len(footer.min_key)) + footer.min_key
    out += _U32.pack(len(footer.max_key)) + footer.max_key
    out += _U32.pack(crc32c(bytes(out)))
    return bytes(out)


def _decode_entries(buf: bytes, count: int, pos: int) -> Tuple[List[IndexEntry], int]:
    expected = pos + count * INDEX_ENTRY_LEN
    if len(buf) < expected:
        raise CorruptionError("SSIndex shorter than its count claims")
    entries: List[IndexEntry] = []
    for _ in range(count):
        offset, keylen, vallen, flags = _ENTRY.unpack_from(buf, pos)
        entries.append(
            IndexEntry(offset, keylen, vallen, bool(flags & TOMBSTONE_FLAG))
        )
        pos += INDEX_ENTRY_LEN
    return entries, pos


def parse_index(buf: bytes) -> Tuple[List[IndexEntry], Optional[TableFooter]]:
    """Parse a v1 or v2 SSIndex file.

    Returns ``(entries, footer)``; the footer is ``None`` for v1 files.
    v2 files are verified against their trailing CRC before any field
    is trusted.  Raises :class:`CorruptionError` on any mismatch.
    """
    if len(buf) < _HDR.size:
        raise CorruptionError("SSIndex truncated")
    magic, count = _HDR.unpack_from(buf, 0)
    if magic == MAGIC:
        entries, _ = _decode_entries(buf, count, _HDR.size)
        return entries, None
    if magic != MAGIC_V2:
        raise CorruptionError(f"bad SSIndex magic {magic:#x}")
    if len(buf) < _U32.size:
        raise CorruptionError("SSIndex v2 truncated")
    (stored_crc,) = _U32.unpack_from(buf, len(buf) - _U32.size)
    if crc32c(buf[:-_U32.size]) != stored_crc:
        raise CorruptionError("SSIndex v2 checksum mismatch")
    entries, pos = _decode_entries(buf, count, _HDR.size)
    try:
        data_len, block_size, nblocks = _FOOTER_FIXED.unpack_from(buf, pos)
        pos += _FOOTER_FIXED.size
        block_crcs = struct.unpack_from(f"<{nblocks}I", buf, pos)
        pos += nblocks * _U32.size
        bloom_crc, bloom_len = _FOOTER_TAIL.unpack_from(buf, pos)
        pos += _FOOTER_TAIL.size
        fences = []
        for _ in range(2):
            (klen,) = _U32.unpack_from(buf, pos)
            pos += _U32.size
            if pos + klen > len(buf) - _U32.size:
                raise CorruptionError("SSIndex v2 key fence overruns footer")
            fences.append(bytes(buf[pos:pos + klen]))
            pos += klen
    except struct.error as exc:
        raise CorruptionError("SSIndex v2 footer truncated") from exc
    footer = TableFooter(data_len, block_size, block_crcs, bloom_crc,
                         bloom_len, fences[0], fences[1])
    return entries, footer


def decode_index(buf: bytes) -> List[IndexEntry]:
    """Parse an SSIndex file (v1 or v2); raises CorruptionError."""
    return parse_index(buf)[0]


def data_block_crcs(data: bytes, block_size: int = DATA_BLOCK_SIZE) -> Tuple[int, ...]:
    """CRC32C of each ``block_size`` chunk of an SSData buffer."""
    return tuple(
        crc32c(data[off:off + block_size])
        for off in range(0, len(data), block_size)
    ) or (crc32c(b""),)


def make_footer(data: bytes, bloom_blob: bytes,
                block_size: int = DATA_BLOCK_SIZE,
                min_key: bytes = b"", max_key: bytes = b"") -> TableFooter:
    """Build the v2 footer for an SSData buffer and bloom file blob."""
    return TableFooter(
        data_len=len(data),
        block_size=block_size,
        block_crcs=data_block_crcs(data, block_size),
        bloom_crc=crc32c(bloom_blob),
        bloom_len=len(bloom_blob),
        min_key=min_key,
        max_key=max_key,
    )


def encode_bloom_file(bloom: BloomFilter) -> bytes:
    """Serialize a bloom filter as a self-checking v2 file blob."""
    body = bloom.to_bytes()
    return _BLOOM_HDR.pack(BLOOM_MAGIC_V2, crc32c(body)) + body


def decode_bloom_file(blob: bytes) -> BloomFilter:
    """Parse a v1 or v2 bloom file; raises CorruptionError."""
    if len(blob) >= _BLOOM_HDR.size:
        magic, body_crc = _BLOOM_HDR.unpack_from(blob, 0)
        if magic == BLOOM_MAGIC_V2:
            body = blob[_BLOOM_HDR.size:]
            if crc32c(body) != body_crc:
                raise CorruptionError("bloom filter checksum mismatch")
            try:
                return BloomFilter.from_bytes(body)
            except ValueError as exc:
                raise CorruptionError(f"bloom filter malformed: {exc}") from exc
    try:
        return BloomFilter.from_bytes(blob)
    except ValueError as exc:
        raise CorruptionError(f"bloom filter malformed: {exc}") from exc


#: Metadata-bundle magic ("PKVR" — replicated metadata).
BUNDLE_MAGIC = 0x52564B50
BUNDLE_VERSION = 1
_BUNDLE_HDR = struct.Struct("<IIQII")  # magic, version, ssid, index_len, bloom_len


def encode_meta_bundle(ssid: int, index_blob: bytes, bloom_blob: bytes) -> bytes:
    """Serialize one table's replicated metadata bundle.

    The bundle is the unit an owner ships to non-owners so they can run
    the read-path gate order (fences → bloom → index) without touching
    the owner's sidecar files: the raw v2 SSIndex file bytes (entries,
    footer fences, block CRCs) and the raw bloom file bytes, framed with
    the table's ssid and a trailing CRC32C over the whole frame.
    """
    out = bytearray(_BUNDLE_HDR.pack(BUNDLE_MAGIC, BUNDLE_VERSION, ssid,
                                     len(index_blob), len(bloom_blob)))
    out += index_blob
    out += bloom_blob
    out += _U32.pack(crc32c(bytes(out)))
    return bytes(out)


def decode_meta_bundle(blob: bytes) -> Tuple[int, bytes, bytes]:
    """Parse a metadata bundle; returns ``(ssid, index_blob, bloom_blob)``.

    Verifies the trailing CRC before trusting any field.  The inner
    blobs are *not* parsed here — callers hand them to
    :func:`parse_index` / :func:`decode_bloom_file`, which carry their
    own checksums.  Raises :class:`CorruptionError` on any mismatch.
    """
    if len(blob) < _BUNDLE_HDR.size + _U32.size:
        raise CorruptionError("metadata bundle truncated")
    (stored_crc,) = _U32.unpack_from(blob, len(blob) - _U32.size)
    if crc32c(blob[:-_U32.size]) != stored_crc:
        raise CorruptionError("metadata bundle checksum mismatch")
    magic, version, ssid, index_len, bloom_len = _BUNDLE_HDR.unpack_from(blob, 0)
    if magic != BUNDLE_MAGIC:
        raise CorruptionError(f"bad metadata bundle magic {magic:#x}")
    if version != BUNDLE_VERSION:
        raise CorruptionError(f"unknown metadata bundle version {version}")
    pos = _BUNDLE_HDR.size
    end = pos + index_len + bloom_len
    if end != len(blob) - _U32.size:
        raise CorruptionError("metadata bundle length fields disagree with frame")
    index_blob = bytes(blob[pos:pos + index_len])
    bloom_blob = bytes(blob[pos + index_len:end])
    return ssid, index_blob, bloom_blob


def sstable_filenames(ssid: int) -> Tuple[str, str, str]:
    """(SSData, SSIndex, bloom) filenames for one SSID."""
    base = f"{ssid:010d}"
    return base + DATA_SUFFIX, base + INDEX_SUFFIX, base + BLOOM_SUFFIX
