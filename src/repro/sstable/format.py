"""Binary on-disk format of the three SSTable files.

SSData record layout (little-endian)::

    keylen   u32
    vallen   u32
    flags    u8     (bit 0 = tombstone)
    key      keylen bytes
    value    vallen bytes

SSIndex layout::

    magic    u32  = 0x50414B56  ("PAKV")
    count    u64
    entries  count * 17 bytes: offset u64, keylen u32, vallen u32, flags u8

The bloom-filter file is the serialized :class:`repro.util.bloom.BloomFilter`.
Keys live only in SSData — a binary-search probe must touch SSData at the
indexed offset, which is the access pattern whose cost the paper's
"SSTable binary search" optimization targets.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator, List, Tuple

DATA_SUFFIX = ".ssd"
INDEX_SUFFIX = ".ssi"
BLOOM_SUFFIX = ".bf"

MAGIC = 0x50414B56
_HDR = struct.Struct("<IQ")
_ENTRY = struct.Struct("<QIIB")
_REC_HDR = struct.Struct("<IIB")

RECORD_HEADER_LEN = _REC_HDR.size  # 9
INDEX_ENTRY_LEN = _ENTRY.size  # 17
TOMBSTONE_FLAG = 0x01


@dataclass(frozen=True)
class Record:
    """One key-value pair (tombstones carry an empty value)."""

    key: bytes
    value: bytes
    tombstone: bool = False

    def encoded_len(self) -> int:
        """On-disk size of this record."""
        return RECORD_HEADER_LEN + len(self.key) + len(self.value)


@dataclass(frozen=True)
class IndexEntry:
    """Location of one record inside SSData."""

    offset: int
    keylen: int
    vallen: int
    tombstone: bool

    @property
    def key_offset(self) -> int:
        return self.offset + RECORD_HEADER_LEN

    @property
    def value_offset(self) -> int:
        return self.offset + RECORD_HEADER_LEN + self.keylen

    @property
    def record_len(self) -> int:
        return RECORD_HEADER_LEN + self.keylen + self.vallen


def encode_record(rec: Record) -> bytes:
    """Serialize one record in SSData layout."""
    flags = TOMBSTONE_FLAG if rec.tombstone else 0
    return _REC_HDR.pack(len(rec.key), len(rec.value), flags) + rec.key + rec.value


def decode_record_at(buf: bytes, offset: int) -> Tuple[Record, int]:
    """Decode one record at ``offset``; returns (record, next_offset)."""
    keylen, vallen, flags = _REC_HDR.unpack_from(buf, offset)
    ko = offset + RECORD_HEADER_LEN
    key = bytes(buf[ko:ko + keylen])
    value = bytes(buf[ko + keylen:ko + keylen + vallen])
    return (
        Record(key, value, bool(flags & TOMBSTONE_FLAG)),
        ko + keylen + vallen,
    )


def decode_records(buf: bytes) -> Iterator[Record]:
    """Decode a whole SSData buffer in file order (sorted by key)."""
    offset = 0
    end = len(buf)
    while offset < end:
        rec, offset = decode_record_at(buf, offset)
        yield rec


def encode_index(entries: List[IndexEntry]) -> bytes:
    """Serialize an SSIndex file (magic + count + fixed entries)."""
    out = bytearray(_HDR.pack(MAGIC, len(entries)))
    for e in entries:
        out += _ENTRY.pack(
            e.offset, e.keylen, e.vallen, TOMBSTONE_FLAG if e.tombstone else 0
        )
    return bytes(out)


def decode_index(buf: bytes) -> List[IndexEntry]:
    """Parse an SSIndex file; raises ValueError on corruption."""
    if len(buf) < _HDR.size:
        raise ValueError("SSIndex truncated")
    magic, count = _HDR.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ValueError(f"bad SSIndex magic {magic:#x}")
    expected = _HDR.size + count * INDEX_ENTRY_LEN
    if len(buf) < expected:
        raise ValueError("SSIndex shorter than its count claims")
    entries: List[IndexEntry] = []
    pos = _HDR.size
    for _ in range(count):
        offset, keylen, vallen, flags = _ENTRY.unpack_from(buf, pos)
        entries.append(
            IndexEntry(offset, keylen, vallen, bool(flags & TOMBSTONE_FLAG))
        )
        pos += INDEX_ENTRY_LEN
    return entries


def sstable_filenames(ssid: int) -> Tuple[str, str, str]:
    """(SSData, SSIndex, bloom) filenames for one SSID."""
    base = f"{ssid:010d}"
    return base + DATA_SUFFIX, base + INDEX_SUFFIX, base + BLOOM_SUFFIX
