"""Per-operation latency tracking (virtual time) with percentiles.

A bounded reservoir sampler per operation kind keeps memory constant
while giving accurate p50/p95/p99 for any run length — the numbers an
operator actually tunes MemTable sizes and consistency modes against.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional


class LatencyReservoir:
    """Reservoir sampler over latency observations (seconds)."""

    __slots__ = ("capacity", "_samples", "count", "total", "max_seen", "_rng")

    def __init__(self, capacity: int = 512, seed: int = 12345) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self.max_seen = 0.0
        self._rng = random.Random(seed)

    def observe(self, latency_s: float) -> None:
        """Record one latency observation (seconds, virtual time)."""
        if latency_s < 0:
            raise ValueError("negative latency")
        self.count += 1
        self.total += latency_s
        if latency_s > self.max_seen:
            self.max_seen = latency_s
        if len(self._samples) < self.capacity:
            self._samples.append(latency_s)
        else:
            # Vitter's algorithm R
            j = self._rng.randrange(self.count)
            if j < self.capacity:
                self._samples[j] = latency_s

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """p in [0, 100]; returns 0.0 with no observations."""
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        idx = min(len(data) - 1, int(round(p / 100.0 * (len(data) - 1))))
        return data[idx]

    def summary(self) -> Dict[str, float]:
        """Count, mean, p50/p95/p99 and max as a plain dict."""
        return {
            "count": self.count,
            "mean_s": self.mean,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
            "max_s": self.max_seen,
        }


class LatencyTracker:
    """Latency reservoirs keyed by operation kind ("put", "get", ...)."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._by_op: Dict[str, LatencyReservoir] = {}

    def observe(self, op: str, latency_s: float) -> None:
        """Record one observation under operation kind ``op``."""
        res = self._by_op.get(op)
        if res is None:
            res = self._by_op[op] = LatencyReservoir(self.capacity)
        res.observe(latency_s)

    def get(self, op: str) -> Optional[LatencyReservoir]:
        """The reservoir for ``op``, or None if never observed."""
        return self._by_op.get(op)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Per-operation summaries, sorted by operation name."""
        return {op: r.summary() for op, r in sorted(self._by_op.items())}

    def __contains__(self, op: str) -> bool:
        return op in self._by_op
