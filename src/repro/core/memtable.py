"""MemTables: the in-memory tier of the LSM tree.

"A database consists of four types of MemTables (local MemTable,
immutable local MemTable, remote MemTable, and immutable remote
MemTable)" (paper §2.3).  A MemTable is a red-black tree indexed by key;
entries carry a tombstone flag, and remote-MemTable entries additionally
carry the owner rank number (§2.4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.analysis.runtime import annotate_read, annotate_write
from repro.sstable.format import Record
from repro.util.rbtree import RedBlackTree


@dataclass(frozen=True)
class Entry:
    """One MemTable entry."""

    value: bytes
    tombstone: bool = False
    #: owner rank (only meaningful in remote MemTables)
    owner: int = -1

    @property
    def nbytes(self) -> int:
        return len(self.value)


class MemTable:
    """A size-bounded sorted write buffer.

    ``put`` replaces any existing entry with the same key ("PapyrusKV
    deletes the old one before it inserts the new one").  When
    ``size_bytes`` reaches ``capacity`` the owner runtime freezes the
    table and rotates in a fresh one.
    """

    __slots__ = ("capacity", "_tree", "_bytes", "_frozen", "kind",
                 "_race_tag", "_frozen_records")

    def __init__(self, capacity: int, kind: str = "local") -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.kind = kind
        self._tree = RedBlackTree()
        self._bytes = 0
        self._frozen = False
        self._frozen_records: Optional[List[Record]] = None

    # ------------------------------------------------------------ properties
    def __len__(self) -> int:
        return len(self._tree)

    @property
    def size_bytes(self) -> int:
        return self._bytes

    @property
    def frozen(self) -> bool:
        return self._frozen

    @property
    def full(self) -> bool:
        return self._bytes >= self.capacity

    # -------------------------------------------------------------- mutation
    def put(self, key: bytes, value: bytes, tombstone: bool = False,
            owner: int = -1) -> None:
        """Insert or replace; a tombstone is a put with an empty value."""
        annotate_write(self, "memtable")
        if self._frozen:
            raise RuntimeError("cannot write a frozen (immutable) MemTable")
        if tombstone:
            value = b""
        old: Optional[Entry] = self._tree.get(key)
        if old is not None:
            self._bytes -= len(key) + old.nbytes
        self._tree.insert(key, Entry(value, tombstone, owner))
        self._bytes += len(key) + len(value)

    def delete_entry(self, key: bytes) -> bool:
        """Physically remove an entry (used by redistribution plumbing)."""
        if self._frozen:
            raise RuntimeError("cannot write a frozen (immutable) MemTable")
        old: Optional[Entry] = self._tree.get(key)
        if old is None:
            return False
        self._tree.delete(key)
        self._bytes -= len(key) + old.nbytes
        return True

    def freeze(self) -> "MemTable":
        """Mark immutable (local MemTable -> immutable local MemTable)."""
        annotate_write(self, "memtable")
        self._frozen = True
        return self

    # --------------------------------------------------------------- lookups
    def get(self, key: bytes) -> Optional[Entry]:
        """The entry for ``key`` (tombstones included), or None."""
        annotate_read(self, "memtable")
        return self._tree.get(key)

    def __contains__(self, key: bytes) -> bool:
        return key in self._tree

    # -------------------------------------------------------------- iteration
    def items(self) -> Iterator[tuple]:
        """(key, Entry) pairs in ascending key order."""
        return self._tree.items()

    def to_records(self) -> List[Record]:
        """Sorted records for an SSTable flush (tombstones included)."""
        return [
            Record(k, e.value, e.tombstone) for k, e in self._tree.items()
        ]

    def records(self) -> List[Record]:
        """Sorted records of a *frozen* table, computed once.

        The flush pipeline's freeze stage snapshots an immutable
        MemTable here; build/sync stages and read paths can then share
        the list without re-walking the tree.
        """
        if not self._frozen:
            raise RuntimeError("records() requires a frozen MemTable")
        if self._frozen_records is None:
            self._frozen_records = self.to_records()
        return self._frozen_records

    def by_owner(self) -> dict:
        """Group entries per owner rank (migration batching, §2.4)."""
        groups: dict = {}
        for key, entry in self._tree.items():
            groups.setdefault(entry.owner, []).append(
                (key, entry.value, entry.tombstone)
            )
        return groups
