"""The C-style functional API (paper Table 1).

Every function returns a 32-bit error code; out-parameters become return
tuple elements.  This layer is a thin veneer over the object API for
code ported from the original C, and for tests asserting the exact
Table 1 surface:

=====================================  =====================================
Paper function                         This module
=====================================  =====================================
``papyruskv_init``                     :func:`papyruskv_init`
``papyruskv_finalize``                 :func:`papyruskv_finalize`
``papyruskv_open`` / ``close``         :func:`papyruskv_open` / ``close``
``papyruskv_put`` / ``get`` /          :func:`papyruskv_put` / ``get`` /
``delete`` / ``free``                  ``delete`` / ``free``
``papyruskv_signal_notify`` / ``wait`` :func:`papyruskv_signal_notify` / ...
``papyruskv_fence`` / ``barrier``      :func:`papyruskv_fence` / ``barrier``
``papyruskv_consistency``              :func:`papyruskv_consistency`
``papyruskv_protect``                  :func:`papyruskv_protect`
``papyruskv_checkpoint`` / ``restart`` :func:`papyruskv_checkpoint` / ...
``papyruskv_destroy`` / ``wait``       :func:`papyruskv_destroy` / ``wait``
=====================================  =====================================

Bulk extension (beyond Table 1, same code/out-parameter conventions —
the Table 1 surface above is untouched):

=====================================  =====================================
Bulk veneer                            Object API it wraps
=====================================  =====================================
``papyruskv_put_bulk(db, items)``      :meth:`Database.batch` — per-owner
→ ``code``                             coalesced migration
``papyruskv_get_bulk(db, keys)``       :meth:`Database.get_bulk` — one
→ ``(code, values)``                   MGET round per owner; ``values``
                                       aligns with ``keys``, ``None``
                                       marking NOT_FOUND
``papyruskv_delete_bulk(db, keys)``    :meth:`Database.batch` — batched
→ ``code``                             tombstone puts
``papyruskv_flush(db, wait=True)``     :meth:`Database.flush` — drain the
→ ``code``                             local flush pipeline
=====================================  =====================================
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.config import Options
from repro.core.db import Database
from repro.core.env import Papyrus
from repro.core.events import Event
from repro.errors import ErrorCode, PapyrusError, code_of
from repro.mpi.launcher import RankContext, current_rank_context

_ENVS: dict = {}


def _env() -> Papyrus:
    ctx = current_rank_context()
    env = _ENVS.get((id(ctx.machine), ctx.world_rank))
    if env is None:
        raise RuntimeError("papyruskv_init was not called on this rank")
    return env


def papyruskv_init(repository: str = "nvm",
                   ctx: Optional[RankContext] = None) -> int:
    """Initialize the execution environment (collective)."""
    ctx = ctx or current_rank_context()
    try:
        env = Papyrus(ctx, repository)
    except PapyrusError as exc:
        return int(code_of(exc))
    _ENVS[(id(ctx.machine), ctx.world_rank)] = env
    return int(ErrorCode.SUCCESS)


def papyruskv_finalize() -> int:
    """Terminate the execution environment (collective)."""
    ctx = current_rank_context()
    env = _ENVS.pop((id(ctx.machine), ctx.world_rank), None)
    if env is None:
        return int(ErrorCode.NOT_INITIALIZED)
    env.finalize()
    return int(ErrorCode.SUCCESS)


def papyruskv_open(name: str, flags: int = 0,
                   opt: Optional[Options] = None
                   ) -> Tuple[int, Optional[Database]]:
    """Open or create a database; returns ``(code, db)``.

    ``flags`` accepts :data:`repro.config.RDONLY_OPEN` to open the
    database with read-only protection from the start (equivalent to an
    immediate ``papyruskv_protect(db, PAPYRUSKV_RDONLY)``).
    """
    from repro.config import RDONLY, RDONLY_OPEN

    try:
        if flags & RDONLY_OPEN:
            opt = (opt or Options()).with_(protection=RDONLY)
        return int(ErrorCode.SUCCESS), _env().open(name, opt)
    except (PapyrusError, RuntimeError) as exc:
        return int(code_of(exc)), None


def papyruskv_close(db: Database) -> int:
    """Close ``db`` (collective); returns an error code."""
    try:
        db.close()
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_put(db: Database, key: bytes, value: bytes) -> int:
    """Insert or update a key-value pair; returns an error code."""
    try:
        db.put(key, value)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_get(db: Database, key: bytes
                  ) -> Tuple[int, Optional[bytes]]:
    """Returns ``(code, value)``; value is None on NOT_FOUND."""
    try:
        return int(ErrorCode.SUCCESS), db.get(key)
    except PapyrusError as exc:
        return int(code_of(exc)), None


def papyruskv_delete(db: Database, key: bytes) -> int:
    """Delete a key-value pair; returns an error code."""
    try:
        db.delete(key)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_put_bulk(db: Database, items) -> int:
    """Insert many pairs via the bulk pipeline; returns an error code.

    ``items`` is a mapping or an iterable of ``(key, value)`` pairs;
    remote keys coalesce into one migration batch per owner rank.
    Routed through :meth:`Database.batch`, the object API's one write
    surface.
    """
    if isinstance(items, dict):
        items = items.items()
    try:
        with db.batch() as b:
            for key, value in items:
                b.put(key, value)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_get_bulk(db: Database, keys: Sequence[bytes]
                       ) -> Tuple[int, Optional[list]]:
    """Fetch many keys in one pipelined round per owner.

    Returns ``(code, values)`` with ``values`` parallel to ``keys``;
    absent keys come back as ``None`` entries (the bulk analogue of the
    per-key NOT_FOUND code, which would otherwise poison the whole
    batch).  ``values`` is None only when the batch itself failed.
    """
    try:
        return int(ErrorCode.SUCCESS), db.get_bulk(keys)
    except PapyrusError as exc:
        return int(code_of(exc)), None


def papyruskv_delete_bulk(db: Database, keys: Sequence[bytes]) -> int:
    """Delete many keys via the bulk pipeline; returns an error code."""
    try:
        with db.batch() as b:
            for key in keys:
                b.delete(key)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_flush(db: Database, wait: bool = True) -> int:
    """Flush the local MemTable to SSTables; returns an error code.

    With ``wait`` (default) the call blocks until every enqueued table
    has drained through the flush pipeline's build and sync stages.
    """
    try:
        db.flush(wait=wait)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_free(db: Database, value: bytes) -> int:
    """Release a value buffer.

    Python's allocator manages memory, so this is a semantic no-op kept
    for Table 1 parity; passing a non-bytes object is an error as it
    would be in C.
    """
    if not isinstance(value, (bytes, bytearray)):
        return int(ErrorCode.INVALID_VALUE)
    return int(ErrorCode.SUCCESS)


def papyruskv_signal_notify(signum: int, ranks: Sequence[int]) -> int:
    """Send signal ``signum`` to ``ranks``; returns an error code."""
    try:
        _env().signal_notify(signum, ranks)
    except (PapyrusError, RuntimeError) as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_signal_wait(signum: int, ranks: Sequence[int]) -> int:
    """Wait for ``signum`` from every rank in ``ranks``."""
    try:
        _env().signal_wait(signum, ranks)
    except (PapyrusError, RuntimeError) as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_fence(db: Database) -> int:
    """Migrate the remote MemTable immediately; returns an error code."""
    try:
        db.fence()
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_barrier(db: Database, level: int) -> int:
    """Collective fence with a flushing level (MEMTABLE or SSTABLE)."""
    try:
        db.barrier(level)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_consistency(db: Database, mode: int) -> int:
    """Collectively switch the consistency mode."""
    try:
        db.set_consistency(mode)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_protect(db: Database, prot: int) -> int:
    """Collectively set the protection attribute."""
    try:
        db.protect(prot)
    except PapyrusError as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)


def papyruskv_checkpoint(db: Database, path: str
                         ) -> Tuple[int, Optional[Event]]:
    """Asynchronous snapshot to the parallel FS; returns (code, event)."""
    try:
        return int(ErrorCode.SUCCESS), db.checkpoint(path)
    except PapyrusError as exc:
        return int(code_of(exc)), None


def papyruskv_restart(path: str, name: str, flags: int = 0,
                      opt: Optional[Options] = None,
                      force_redistribute: bool = False
                      ) -> Tuple[int, Optional[Database], Optional[Event]]:
    """Revert ``name`` from a snapshot; returns (code, db, event)."""
    try:
        db, event = _env().restart(path, name, opt, force_redistribute)
        return int(ErrorCode.SUCCESS), db, event
    except (PapyrusError, RuntimeError) as exc:
        return int(code_of(exc)), None, None


def papyruskv_destroy(db: Database) -> Tuple[int, Optional[Event]]:
    """Remove the database and its NVM data; returns (code, event)."""
    try:
        return int(ErrorCode.SUCCESS), db.destroy()
    except PapyrusError as exc:
        return int(code_of(exc)), None


def papyruskv_wait(db: Database, event: Event) -> int:
    """Block (virtually) until ``event`` completes."""
    try:
        event.wait(db.clock)
    except (PapyrusError, RuntimeError) as exc:
        return int(code_of(exc))
    return int(ErrorCode.SUCCESS)
