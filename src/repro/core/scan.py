"""Range scans over a rank's shard (extension beyond the paper's API).

PapyrusKV's Table 1 has no iterator, but an LSM store gets one almost
for free: MemTables iterate in key order and SSTables are key-sorted,
so a scan is a k-way merge with newest-tier-wins semantics.  The scan
covers the *local shard* — the keys this rank owns — which is the
natural unit in an SPMD program (a global scan is an allgather of local
scans, see :func:`repro.core.db.Database.scan_collect`).

Tombstones shadow older tiers and are skipped in the output.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Optional, Tuple

from repro.sstable.format import Record


def merge_scan(
    tiers: List[List[Tuple[bytes, bytes, bool]]],
    start: Optional[bytes] = None,
    end: Optional[bytes] = None,
) -> Iterator[Tuple[bytes, bytes]]:
    """Merge sorted (key, value, tombstone) runs; ``tiers[0]`` is newest.

    Yields live (key, value) pairs with ``start <= key < end``.
    """
    heap: List[Tuple[bytes, int, int]] = []
    for ti, run in enumerate(tiers):
        if run:
            heapq.heappush(heap, (run[0][0], ti, 0))
    last_key: Optional[bytes] = None
    while heap:
        key, ti, pos = heapq.heappop(heap)
        item = tiers[ti][pos]
        if pos + 1 < len(tiers[ti]):
            heapq.heappush(heap, (tiers[ti][pos + 1][0], ti, pos + 1))
        if key == last_key:
            continue  # an older tier's version of an emitted/shadowed key
        last_key = key
        if start is not None and key < start:
            continue
        if end is not None and key >= end:
            # sorted merge: nothing further can be in range
            return
        _, value, tombstone = item
        if not tombstone:
            yield key, value


def _in_range(key: bytes, start: Optional[bytes], end: Optional[bytes]) -> bool:
    if start is not None and key < start:
        return False
    if end is not None and key >= end:
        return False
    return True


def local_scan(db, start: Optional[bytes] = None,
               end: Optional[bytes] = None,
               include_replicas: bool = False) -> List[Tuple[bytes, bytes]]:
    """Sorted live pairs of this rank's shard within [start, end).

    Charges the caller's clock for the SSTable reads (sequential whole-
    table reads, the natural scan access pattern).

    Under replication a rank also stores copies of other ranks' shards;
    by default those are filtered out — only keys this rank is the
    *acting primary* for are returned, so a collective scan sees each
    key exactly once.  ``include_replicas=True`` returns everything this
    rank physically holds (diagnostics, replication tests).
    """
    with db._lock:
        db._retire_flushed(db.clock.now)
        tiers: List[List[Tuple[bytes, bytes, bool]]] = []
        tiers.append([
            (k, e.value, e.tombstone) for k, e in db.local_mt.items()
            if _in_range(k, start, end)
        ])
        for imm, _end_t in reversed(db.flushing):  # newest first
            tiers.append([
                (k, e.value, e.tombstone) for k, e in imm.items()
                if _in_range(k, start, end)
            ])
        ssids = list(db.ssids)
    t = db.clock.now
    for ssid in reversed(ssids):  # newest first
        reader = db._reader(ssid)
        records, t = reader.read_all(t)
        tiers.append([
            (r.key, r.value, r.tombstone) for r in records
            if _in_range(r.key, start, end)
        ])
    db.clock.advance_to(t)
    pairs = list(merge_scan(tiers, start, end))
    if db.membership is not None and not include_replicas:
        pairs = [(k, v) for k, v in pairs if db._is_acting_primary(k)]
    return pairs


def count_live(db) -> int:
    """Number of live keys in this rank's shard (scan-based)."""
    return len(local_scan(db))


def as_records(pairs: List[Tuple[bytes, bytes]]) -> List[Record]:
    """Convert scan output into SSTable records (re-export helpers)."""
    return [Record(k, v) for k, v in pairs]
