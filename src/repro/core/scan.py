"""Range scans over a rank's shard (extension beyond the paper's API).

PapyrusKV's Table 1 has no iterator, but an LSM store gets one almost
for free: MemTables iterate in key order and SSTables are key-sorted,
so a scan is a k-way merge with newest-tier-wins semantics.  The scan
covers the *local shard* — the keys this rank owns — which is the
natural unit in an SPMD program (for the global form see
:meth:`repro.core.db.Database.scan_global`).

The merge is **streamed**: :class:`ScanIterator` holds one lazy cursor
per tier and :func:`merge_scan` is a generator over them, so a one-key
window costs a handful of block reads, not a shard materialization.
SSTable selection is gated the same way as the get path — quarantine →
v2 footer key fences → SSIndex block-range bracketing — and the data
blocks stream through the shared block cache at low priority.

Snapshot consistency: the iterator pins its SSID horizon at open
(:meth:`Database._pin_scan_tables`), so a flush or compaction that
retires a pinned table defers the file unlink until the scan closes.
The live MemTable is snapshotted in-range under the state lock; frozen
(flushing) MemTables are immutable and iterated lazily in place.

Tombstones shadow older tiers and are skipped in the output.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from typing import Iterable, Iterator, List, Optional, Tuple

from repro.errors import CorruptionError
from repro.sstable.format import Record

#: one tier item: (key, value, tombstone)
Triple = Tuple[bytes, bytes, bool]


def merge_scan(
    tiers: Iterable[Iterable[Triple]],
    start: Optional[bytes] = None,
    end: Optional[bytes] = None,
) -> Iterator[Tuple[bytes, bytes]]:
    """Merge sorted (key, value, tombstone) runs; ``tiers[0]`` is newest.

    Yields live (key, value) pairs with ``start <= key < end``.  Each
    tier may be a list or any lazy sorted iterable — the merge pulls
    one item per tier ahead of the emit point, so a window scan over
    lazy cursors reads O(window) records, not O(shard).
    """
    iters = [iter(run) for run in tiers]
    heap: List[Tuple[bytes, int, Triple]] = []
    for ti, it in enumerate(iters):
        item = next(it, None)
        if item is not None:
            heap.append((item[0], ti, item))
    heapq.heapify(heap)
    last_key: Optional[bytes] = None
    while heap:
        key, ti, item = heap[0]
        nxt = next(iters[ti], None)
        if nxt is None:
            heapq.heappop(heap)
        else:
            heapq.heapreplace(heap, (nxt[0], ti, nxt))
        if key == last_key:
            continue  # an older tier's version of an emitted/shadowed key
        last_key = key
        if start is not None and key < start:
            continue
        if end is not None and key >= end:
            # sorted merge: nothing further can be in range
            return
        if not item[2]:
            yield key, item[1]


def _in_range(key: bytes, start: Optional[bytes], end: Optional[bytes]) -> bool:
    if start is not None and key < start:
        return False
    if end is not None and key >= end:
        return False
    return True


def _window_overlaps(mn: Optional[bytes], mx: Optional[bytes],
                     start: Optional[bytes], end: Optional[bytes]) -> bool:
    """Whether a table covering ``[mn, mx]`` may intersect ``[start, end)``.

    Unknown fences (None) overlap everything — the conservative answer
    quarantine entries need.
    """
    if mn is None or mx is None:
        return True
    if start is not None and mx < start:
        return False
    if end is not None and mn >= end:
        return False
    return True


def _frozen_cursor(imm, start: Optional[bytes],
                   end: Optional[bytes]) -> Iterator[Triple]:
    """Lazy in-range walk of a frozen MemTable's cached record list."""
    records = imm.records()
    i = 0
    if start is not None:
        i = bisect_left(records, start, key=lambda r: r.key)
    n = len(records)
    while i < n:
        r = records[i]
        if end is not None and r.key >= end:
            return
        yield r.key, r.value, r.tombstone
        i += 1


def _sstable_cursor(db, reader, start: Optional[bytes],
                    end: Optional[bytes],
                    keys_only: bool) -> Iterator[Triple]:
    """Lazy in-range records of one SSTable.

    With a block cache attached (v2 tables) the SSIndex brackets the
    overlapping entry range — a binary search on key probes finds the
    first in-range entry — and only the 64KB SSData blocks those
    entries touch are read, at low cache priority.  Without a cache the
    cursor degrades to the seed-era shape: one sequential whole-table
    read, sliced.  ``keys_only`` skips the value bytes entirely
    (:func:`count_live`).  Device time lands on the consuming rank's
    clock as records are pulled.
    """
    t = db.clock.now
    index, t = reader.load_index(t)
    if not reader.block_cached():
        # v1 table or no cache: one big sequential read (the paper's
        # natural scan access pattern), then slice in memory
        records, t = reader.read_all(t)
        footer, t = reader.footer(t)
        db.clock.advance_to(t)
        if footer is not None and records:
            db.stats.scan_blocks_read += len(footer.block_crcs)
        i = 0
        if start is not None:
            i = bisect_left(records, start, key=lambda r: r.key)
        for r in records[i:]:
            if end is not None and r.key >= end:
                return
            yield r.key, r.value, r.tombstone
        return

    lo, t = reader.find_ge(start, t)
    bs = reader.data_block_size()
    seen_blocks: set = set()

    def charge_blocks(offset: int, length: int) -> None:
        if not bs or length <= 0:
            return
        for blk in range(offset // bs, (offset + length - 1) // bs + 1):
            if blk not in seen_blocks:
                seen_blocks.add(blk)
                db.stats.scan_blocks_read += 1

    i, n = lo, len(index)
    while i < n:
        entry = index[i]
        key, t = reader.read_span(entry.key_offset, entry.keylen, t)
        if end is not None and key >= end:
            break
        if keys_only:
            value = b""
            charge_blocks(entry.key_offset, entry.keylen)
        else:
            value, t = reader.read_span(entry.value_offset, entry.vallen, t)
            charge_blocks(entry.offset, entry.record_len)
        db.clock.advance_to(t)
        yield key, value, entry.tombstone
        t = db.clock.now
        i += 1
    db.clock.advance_to(t)


class ScanIterator:
    """A lazy, snapshot-pinned merged scan of one rank's shard.

    Yields sorted live ``(key, value)`` pairs with ``start <= key <
    end``.  Construction (under the state lock) snapshots the in-range
    live MemTable entries, takes references to the frozen flushing
    tiers, and pins the current SSID set, so a flush or compaction
    retiring mid-iteration cannot invalidate the scan — retired files'
    unlinks are deferred until :meth:`close`.

    The iterator closes itself on exhaustion; use ``with`` (or call
    :meth:`close`) when abandoning one early, or the pinned tables'
    disk space is held until the iterator is garbage collected.

    ``keys_only=True`` yields ``(key, b"")`` without reading any value
    bytes — the streamed-count path.  A scan window overlapping a
    quarantined table's poisoned range raises
    :class:`~repro.errors.CorruptionError` at open, mirroring the get
    path's refusal to silently serve older versions.
    """

    def __init__(self, db, start: Optional[bytes] = None,
                 end: Optional[bytes] = None,
                 include_replicas: bool = False,
                 keys_only: bool = False) -> None:
        self._db = db
        self._closed = False
        self._pinned: List[int] = []
        db.stats.scans += 1
        with db._lock:
            db._retire_flushed(db.clock.now)
            for q in db._quarantined:
                if _window_overlaps(q.min_key, q.max_key, start, end):
                    raise CorruptionError(
                        f"scan window overlaps quarantined sstable "
                        f"{q.ssid}: {q.reason}"
                    )
            live: List[Triple] = [
                (k, e.value, e.tombstone) for k, e in db.local_mt.items()
                if _in_range(k, start, end)
            ]
            frozen = [imm for imm, _end_t in reversed(db.flushing)]
            ssids = sorted(db.ssids, reverse=True)  # newest first
            db._pin_scan_tables(ssids)
            self._pinned = list(ssids)
            # reader handles are grabbed inside the lock: compaction
            # (which also runs under db.state) cannot have invalidated
            # them yet, and the pin keeps their files on disk after
            readers = [db._reader(s) for s in ssids]

        # fence gate: prune tables whose [min,max] cannot intersect the
        # window (empty v2 tables have fences (b"", b"") and always
        # prune); v1 tables have no fences and are always read
        selected = []
        t = db.clock.now
        for reader in readers:
            rng, t = reader.key_range(t)
            if rng is not None and db.options.fence_pruning:
                mn, mx = rng
                if not mx or not _window_overlaps(mn, mx, start, end):
                    db.stats.scan_tables_pruned += 1
                    continue
            selected.append(reader)
        db.clock.advance_to(t)

        tiers: List[Iterable[Triple]] = [live]
        for imm in frozen:
            tiers.append(_frozen_cursor(imm, start, end))
        for reader in selected:
            tiers.append(_sstable_cursor(db, reader, start, end, keys_only))
        merged = merge_scan(tiers, start, end)
        if db.membership is not None and not include_replicas:
            merged = (
                kv for kv in merged if db._is_acting_primary(kv[0])
            )
        self._gen: Iterator[Tuple[bytes, bytes]] = merged

    def __iter__(self) -> "ScanIterator":
        return self

    def __next__(self) -> Tuple[bytes, bytes]:
        if self._closed:
            raise StopIteration
        try:
            return next(self._gen)
        except BaseException:
            # exhausted or failed: either way the snapshot is released
            self.close()
            raise

    def close(self) -> None:
        """Release the pins (idempotent); deferred unlinks run now."""
        if self._closed:
            return
        self._closed = True
        pinned, self._pinned = self._pinned, []
        self._gen.close()
        if pinned:
            self._db._unpin_scan_tables(pinned)

    def __enter__(self) -> "ScanIterator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass


def local_scan(db, start: Optional[bytes] = None,
               end: Optional[bytes] = None,
               include_replicas: bool = False) -> List[Tuple[bytes, bytes]]:
    """Sorted live pairs of this rank's shard within [start, end).

    Materializing wrapper over :class:`ScanIterator` (the lazy form is
    :meth:`repro.core.db.Database.scan`).

    Under replication a rank also stores copies of other ranks' shards;
    by default those are filtered out — only keys this rank is the
    *acting primary* for are returned, so a collective scan sees each
    key exactly once.  ``include_replicas=True`` returns everything this
    rank physically holds (diagnostics, replication tests).
    """
    with ScanIterator(db, start, end,
                      include_replicas=include_replicas) as it:
        return list(it)


def reference_scan(db, start: Optional[bytes] = None,
                   end: Optional[bytes] = None,
                   include_replicas: bool = False
                   ) -> List[Tuple[bytes, bytes]]:
    """The seed-era scan: ``read_all`` every table, materialize every tier.

    Kept verbatim as (a) the oracle the property tests compare the
    streamed path against and (b) the read-all baseline
    ``benchmarks/bench_scan.py`` measures the overhaul's speedup
    against.  No pruning, no pinning, full materialization.
    """
    with db._lock:
        db._retire_flushed(db.clock.now)
        tiers: List[List[Triple]] = []
        tiers.append([
            (k, e.value, e.tombstone) for k, e in db.local_mt.items()
            if _in_range(k, start, end)
        ])
        for imm, _end_t in reversed(db.flushing):  # newest first
            tiers.append([
                (k, e.value, e.tombstone) for k, e in imm.items()
                if _in_range(k, start, end)
            ])
        ssids = list(db.ssids)
    t = db.clock.now
    for ssid in reversed(ssids):  # newest first
        reader = db._reader(ssid)
        records, t = reader.read_all(t)
        tiers.append([
            (r.key, r.value, r.tombstone) for r in records
            if _in_range(r.key, start, end)
        ])
    db.clock.advance_to(t)
    pairs = list(merge_scan(tiers, start, end))
    if db.membership is not None and not include_replicas:
        pairs = [(k, v) for k, v in pairs if db._is_acting_primary(k)]
    return pairs


def count_live(db) -> int:
    """Number of live keys in this rank's shard.

    Streams a keys-only scan — tombstone resolution without copying a
    single value byte or materializing the merge.
    """
    with ScanIterator(db, keys_only=True) as it:
        return sum(1 for _ in it)


def as_records(pairs: List[Tuple[bytes, bytes]]) -> List[Record]:
    """Convert scan output into SSTable records (re-export helpers)."""
    return [Record(k, v) for k, v in pairs]
