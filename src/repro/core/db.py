"""The PapyrusKV database object.

One :class:`Database` instance exists per rank per open database.  Its
moving parts mirror Figure 2/3 of the paper:

* a mutable **local MemTable** receiving local puts, rotated into the
  flushing queue when full, flushed to SSTables by the background
  compaction worker;
* a mutable **remote MemTable** staging remote puts under relaxed
  consistency, rotated into the migration queue and shipped to owner
  ranks by the message dispatcher;
* **local/remote caches** (LRU) gated by the protection attribute;
* a per-rank sequence of **SSTables** searched newest-SSID-first with
  bloom-filter skipping and (optionally) binary search;
* a **message handler** thread serving migrations, synchronous puts and
  remote gets for this rank's shard.
"""

from __future__ import annotations

import heapq
import json
import threading
import warnings
from dataclasses import dataclass, field
from itertools import islice
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.scan import ScanIterator

from repro import config
from repro.analysis.runtime import (
    annotate_read,
    annotate_write,
    enable as enable_race_detector,
    get_detector,
    make_lock,
    make_rlock,
)
from repro.config import Options
from repro.errors import (
    CorruptionError,
    DatabaseClosedError,
    InvalidModeError,
    InvalidOptionError,
    InvalidProtectionError,
    KeyNotFoundError,
    InvalidKeyError,
    InvalidValueError,
    MetadataStaleError,
    ProtectionError,
    QuorumLostError,
    RemoteTimeoutError,
    StorageError,
)
from repro.core import messages as msg
from repro.core.membership import MembershipView
from repro.core.memtable import Entry, MemTable
from repro.faults import RankKilledError
from repro.mpi.comm import ANY_SOURCE, Comm
from repro.nvm.posixfs import PosixStore
from repro.nvm.storage import StorageLayout
from repro.simtime.resources import BackgroundWorker
from repro.sstable.block_cache import BlockCache
from repro.sstable.compaction import compact, partition_records, read_and_merge
from repro.sstable.format import (
    QUARANTINE_SUFFIX,
    Record,
    decode_meta_bundle,
    decode_records,
    encode_meta_bundle,
    parse_index,
    sstable_filenames,
)
from repro.util.checksum import crc32c
from repro.sstable.reader import SSTableReader, list_ssids
from repro.sstable.writer import (
    encode_table,
    write_sstable,
    write_sstable_blobs,
    write_tables_ordered,
)
from repro.util.hashing import owner_rank
from repro.util.lru import LRUCache, ObjectLRU

#: tag used on the ack comm for migration acknowledgements
ACK_TAG = 7
#: entry bound of the peer-reader LRU (readers are small handles; the
#: bound only caps pathological many-owner working sets)
PEER_READER_CACHE_ENTRIES = 256

#: sentinel returned by the one-sided read path when the get must fall
#: back to the owner's handler (staleness, dirty memtable, dead owner)
_INDEX_FALLBACK = object()
#: tag used on the ack comm for heartbeat pongs (failure detector) —
#: separate from ACK_TAG so pongs never interleave with the migration
#: ack stream the quorum/fence drains consume
HB_TAG = 8


@dataclass(frozen=True)
class QuarantinedTable:
    """A damaged SSTable pulled out of the search order.

    The key range it may have covered is *poisoned*: a lookup that
    would have reached it (no newer table answered first) raises
    instead of silently serving an older version.
    """

    ssid: int
    min_key: Optional[bytes]
    max_key: Optional[bytes]
    reason: str

    def may_cover(self, key: bytes) -> bool:
        """Whether ``key`` could live in this table (unknown = yes)."""
        if self.min_key is None or self.max_key is None:
            return True
        return self.min_key <= key <= self.max_key


class _SeqWindow:
    """Bounded per-source memory of applied sequence numbers.

    Makes duplicate delivery of mutating messages (retries, injected
    duplicates) idempotent: the handler applies each (source, seq) once
    and just re-acks repeats.
    """

    CAPACITY = 4096

    def __init__(self) -> None:
        self._seen: set = set()
        self._order: List[int] = []

    def check_and_add(self, seq: int) -> bool:
        """True if ``seq`` was already applied; records it otherwise."""
        if seq in self._seen:
            return True
        self._seen.add(seq)
        self._order.append(seq)
        if len(self._order) > self.CAPACITY:
            self._seen.discard(self._order.pop(0))
        return False


@dataclass(frozen=True)
class _PeerIndexView:
    """One owner's replicated index view, as cached by a non-owner.

    ``ssids`` is the owner's authoritative table set at publish/pull
    time; a one-sided get revalidates it against a (free) directory
    listing before trusting any bundle — the newest-ssid handshake.
    ``mem_clean`` records whether the owner's local MemTable was empty
    when the view was taken (a direct read cannot see memtable state);
    ``quarantine_free`` whether none of its range was quarantined.
    ``epoch`` is the membership epoch at install time: any later epoch
    bump invalidates the view wholesale.
    """

    owner_dir: str
    newest_ssid: int
    ssids: Tuple[int, ...]
    mem_clean: bool
    quarantine_free: bool
    epoch: int = 0


@dataclass
class GetResult:
    """A get outcome with provenance (which tier satisfied it)."""

    value: bytes
    tier: str  # local_mt | flushing | local_cache | sstable | remote_mt |
    #          inflight | remote_cache | remote | shared_sstable |
    #          index_sstable (one-sided read via replicated metadata)


@dataclass
class DbStats:
    """Operation counters (diagnostics and tests)."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    local_puts: int = 0
    remote_puts: int = 0
    local_gets: int = 0
    remote_gets: int = 0
    flushes: int = 0
    compactions: int = 0
    migrations: int = 0
    #: write-path overhaul counters: commit windows opened, puts that
    #: rode an open window (sharing its durability charge + ack drain),
    #: partition jobs run by partitioned compaction, full-merge
    #: (tombstone-dropping) compactions, and time puts spent blocked on
    #: flush back-pressure
    group_commits: int = 0
    group_commit_coalesced: int = 0
    compaction_partition_jobs: int = 0
    compaction_majors: int = 0
    flush_stalls: int = 0
    flush_stall_s: float = 0.0
    #: bulk-pipeline counters: batches issued, keys carried by them, and
    #: per-owner runtime messages they produced (MGET + batched sync puts)
    bulk_batches: int = 0
    bulk_keys: int = 0
    bulk_owner_msgs: int = 0
    #: robustness counters (corruption detection / recovery ladder)
    corruptions_detected: int = 0
    tables_quarantined: int = 0
    tables_rebuilt: int = 0
    remote_retries: int = 0
    remote_timeouts: int = 0
    #: read-path pruning counters: tables skipped because the key fell
    #: outside the footer's [min,max] fences, and tables skipped by the
    #: bloom filter saying "definitely absent"
    fence_skips: int = 0
    bloom_skips: int = 0
    #: replication counters: fan-out messages sent and the pairs they
    #: carried, pairs applied on the receiving side, heartbeat pings
    #: sent, stale-epoch rejections served, ranks this view declared
    #: dead, pairs pushed by re-replication after a death, and gets that
    #: had to consult a non-primary replica (failover or paranoia read)
    replica_msgs: int = 0
    replica_pairs: int = 0
    replica_pairs_applied: int = 0
    heartbeats_sent: int = 0
    epoch_rejections: int = 0
    rank_deaths: int = 0
    rereplicated_pairs: int = 0
    failover_gets: int = 0
    #: one-sided index-replication counters: gets resolved entirely from
    #: replicated metadata (plus a direct data read), gets that found no
    #: usable view and pulled one, views invalidated by the newest-ssid
    #: handshake (or a dead epoch), gets that fell back to the owner's
    #: handler, and pull/publish messages exchanged
    index_repl_hits: int = 0
    index_repl_misses: int = 0
    index_repl_stale: int = 0
    index_repl_fallbacks: int = 0
    index_pulls: int = 0
    index_publishes: int = 0
    #: scan-path counters: iterators opened, tables pruned at scan open
    #: (fences outside the window, or empty), distinct SSData blocks the
    #: scan cursors actually read, non-empty chunks this rank shipped
    #: into scan_global's windowed merge, and the high-water pair count
    #: of the global merge buffer (the O(nranks x chunk) memory bound,
    #: made observable)
    scans: int = 0
    scan_tables_pruned: int = 0
    scan_blocks_read: int = 0
    scan_chunks_shipped: int = 0
    scan_peak_buffered: int = 0
    get_tiers: Dict[str, int] = field(default_factory=dict)

    def hit(self, tier: str) -> None:
        """Count a get satisfied by the named tier."""
        annotate_write(self, "db.stats.tiers")
        self.get_tiers[tier] = self.get_tiers.get(tier, 0) + 1


class WriteBatch:
    """The one write surface: a mutation buffer over the bulk pipeline.

    Created by :meth:`Database.batch`.  Operations are recorded in
    program order; within one batch the last operation on a key wins
    (the bulk pipeline's last-write-wins rule), which matches the
    outcome of the equivalent per-key sequence.  ``put`` and ``delete``
    have full parity — both buffer, both count toward ``max_bytes``,
    both resolve through the same engine.

    Parameters
    ----------
    durability: what the context manager guarantees on clean exit —
        ``"none"`` (default: writes are buffered/staged like plain
        puts), ``"fence"`` (remote writes migrated to their owners and
        acked), or ``"flush"`` (fence + the local shard flushed to
        SSTables).
    max_bytes: auto-flush threshold — the batch flushes itself through
        the pipeline whenever the buffered payload reaches this many
        bytes, bounding memory for streaming loads.  ``None`` buffers
        until an explicit/exit flush.
    """

    _DURABILITY = ("none", "fence", "flush")

    def __init__(self, db: "Database", durability: Optional[str] = None,
                 max_bytes: Optional[int] = None) -> None:
        durability = "none" if durability is None else durability
        if durability not in self._DURABILITY:
            raise InvalidOptionError(
                f"durability must be one of {self._DURABILITY}, "
                f"got {durability!r}"
            )
        if max_bytes is not None and max_bytes <= 0:
            raise InvalidOptionError("max_bytes must be positive or None")
        self._db = db
        self._ops: List[Tuple[bytes, bytes, bool]] = []
        self._bytes = 0
        self._durability = durability
        self._max_bytes = max_bytes
        self._written = 0

    @property
    def written(self) -> int:
        """Distinct keys written by this batch's flushes so far."""
        return self._written

    def put(self, key: bytes, value: bytes) -> None:
        """Buffer an insert/update."""
        self._db._validate_kv(key, value)
        self._ops.append((bytes(key), bytes(value), False))
        self._bytes += len(key) + len(value)
        self._maybe_autoflush()

    def delete(self, key: bytes) -> None:
        """Buffer a delete (tombstone put)."""
        self._db._validate_kv(key, None)
        self._ops.append((bytes(key), b"", True))
        self._bytes += len(key)
        self._maybe_autoflush()

    def _maybe_autoflush(self) -> None:
        if self._max_bytes is not None and self._bytes >= self._max_bytes:
            self.flush()

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __delitem__(self, key: bytes) -> None:
        self.delete(key)

    def __len__(self) -> int:
        return len(self._ops)

    def clear(self) -> None:
        """Drop every buffered operation without writing."""
        self._ops.clear()
        self._bytes = 0

    def flush(self) -> int:
        """Write the buffered operations now; returns keys written."""
        ops, self._ops, self._bytes = self._ops, [], 0
        n = self._db._write_bulk(ops)
        self._written += n
        return n

    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            return  # on exception nothing further is written
        self.flush()
        if self._durability == "fence":
            self._db.fence()
        elif self._durability == "flush":
            self._db.fence()
            self._db.flush()


class Database:
    """Per-rank handle to one distributed PapyrusKV database.

    Construct via :meth:`repro.core.env.Papyrus.open` (collective), not
    directly.
    """

    def __init__(
        self,
        env,
        name: str,
        options: Options,
        srv_comm: Comm,
        rsp_comm: Comm,
        ack_comm: Comm,
        coll_comm: Comm,
        store: PosixStore,
    ) -> None:
        self.env = env
        self.ctx = env.ctx
        self.name = name
        self.options = options
        self.rank = self.ctx.world_rank
        self.nranks = self.ctx.nranks
        self.consistency = options.consistency
        self.protection = options.protection
        self.binary_search = options.binary_search
        self.hash_fn = options.hash_fn

        self.store = store
        self.dbdir = f"db_{name}"
        self.rank_dir = f"{self.dbdir}/rank{self.rank}"

        group_size = options.group_size or self.ctx.machine.default_group_size
        if options.repository == "lustre":
            # the parallel FS is visible to everyone: one big domain
            group_size = min(group_size, self.nranks)
        self.layout = StorageLayout(self.nranks, group_size)
        self.group = self.layout.group_of(self.rank)

        self.srv_comm = srv_comm
        self.rsp_comm = rsp_comm
        self.ack_comm = ack_comm
        self.coll_comm = coll_comm

        cpu = self.ctx.system.cpu
        self._op_cost = cpu.kv_op_s + cpu.dram_latency_s
        self._memcpy_Bps = cpu.memcpy_Bps

        if options.race_detect:
            enable_race_detector()
        self._lock = make_rlock("db.state")
        self.local_mt = MemTable(options.memtable_capacity, "local")
        self.remote_mt = MemTable(options.remote_memtable_capacity, "remote")
        #: flushing queue: (immutable MemTable, virtual flush-completion time)
        self.flushing: List[Tuple[MemTable, float]] = []
        #: migrated-but-unacked chunks, newest last:
        #: (seq, owner, {key: (val, tomb)}) — owner kept for retransmission
        self.inflight: List[
            Tuple[int, int, Dict[bytes, Tuple[bytes, bool]]]
        ] = []
        self._pending_acks: set = set()
        self._next_seq = self.rank + 1  # distinct across ranks for debugging
        #: handler-side dedup of applied mutating seqs, per source rank
        self._seq_dedup: Dict[int, _SeqWindow] = {}

        # -- replication plane: per-key replica groups + write quorum --
        if options.replicas > self.nranks:
            raise InvalidOptionError(
                f"replicas={options.replicas} exceeds the world size "
                f"({self.nranks} rank(s))"
            )
        #: membership view of the replica plane; None ⇔ replicas == 1
        #: (the unreplicated paths never touch it)
        self.membership: Optional[MembershipView] = (
            MembershipView(self.rank, self.nranks)
            if options.replicas > 1 else None
        )
        #: seqs currently in flight as replica fan-outs (vs migrations):
        #: a retransmit must rebuild the right message type.  Guarded by
        #: db.state alongside _pending_acks/inflight.
        self._replica_seqs: set = set()
        #: quorum debts deferred by group-commit riders: (seqs, need),
        #: drained by the next window opener and by fence.  Main-thread
        #: only, like the _gc_* window state below — no lock needed.
        self._quorum_due: List[Tuple[List[int], int]] = []
        #: failure-detector ping state — main-thread only: virtual time
        #: of the last ping per peer, and of the first unanswered ping
        self._hb_last: Dict[int, float] = {}
        self._hb_ping: Dict[int, float] = {}
        #: set once the fault plane kills this rank mid-run
        self._killed = False
        #: re-entrancy guard: a re-replication push does its own sends
        #: and must not recurse into the detector/put machinery
        self._in_rerepl = False

        self.ssids: List[int] = []
        self._next_ssid = 1
        self._readers: Dict[int, SSTableReader] = {}
        #: guards _readers alone: taken by main and handler threads on
        #: SSTable lookups, nested inside db.state when both are needed
        self._readers_lock = make_lock("db.readers")
        #: damaged tables pulled from the search order (poisoned ranges)
        self._quarantined: List[QuarantinedTable] = []
        #: scan snapshot pins: ssid -> count of open iterators reading
        #: it.  A pinned table's files survive flush/compaction retire
        #: (the unlink is deferred to _deferred_unlinks) so in-progress
        #: scans keep a consistent horizon.  db.scan_pins (level 12)
        #: guards both dicts: nested inside db.state at snapshot/retire
        #: time, taken alone at iterator close.
        self._scan_lock = make_lock("db.scan_pins")
        self._scan_pins: Dict[int, int] = {}
        #: ssid -> file paths whose unlink compaction deferred to unpin
        self._deferred_unlinks: Dict[int, List[str]] = {}
        #: newest checkpoint target (recovery ladder's last rung)
        self._last_checkpoint_path: Optional[str] = None
        #: cached view of group peers' SSTable sets: owner -> (newest, ssids)
        self._peer_readers: Dict[int, Tuple[int, List[int]]] = {}
        #: reader objects per (directory, ssid) — SSTables are immutable,
        #: so these stay valid until the file disappears (compaction).
        #: Entry-bounded: many-owner workloads must not grow it forever.
        #: Main-thread only (remote gets), so unlocked.
        self._peer_reader_cache = ObjectLRU(PEER_READER_CACHE_ENTRIES)

        # -- one-sided index replication (Options.index_replication) --
        #: guards the two structures below: the rank-main thread reads
        #: views and bundles on every direct get, the handler thread
        #: installs eagerly pushed publishes.  Level 25 in the canonical
        #: order (between db.readers and world.comm); never held across
        #: a send or an SSTable search
        self._index_lock = make_lock("db.index_cache")
        #: per-owner replicated index views (newest-ssid handshake state)
        self._index_views: Dict[int, _PeerIndexView] = {}
        #: detached readers built from replicated metadata bundles, keyed
        #: (owner_dir, ssid), charged at the encoded bundle's byte size
        self._index_bundles = ObjectLRU(options.index_cache_capacity)
        #: ssids flushed/compacted since the last eager publish drain
        #: (guarded by db.state; drained by the main-thread _tick)
        self._index_pub_due: List[int] = []

        self.local_cache: Optional[LRUCache] = (
            LRUCache(options.cache_local_capacity)
            if options.cache_local_enabled else None
        )
        self.remote_cache = LRUCache(options.cache_remote_capacity)
        #: shared SSData block cache: one per database, used by own and
        #: peer readers alike (main + handler threads; it has its own lock)
        self.block_cache: Optional[BlockCache] = (
            BlockCache(options.block_cache_capacity)
            if options.block_cache_enabled else None
        )

        self.compaction_worker = BackgroundWorker(f"compactor-r{self.rank}")
        self.dispatcher_worker = BackgroundWorker(f"dispatcher-r{self.rank}")
        #: pipelined-flush stages: CPU encode on the build worker, device
        #: commit on the sync worker.  Both exist even with the pipeline
        #: off so flush(wait=True) has a single tail expression.
        self.flush_build_worker = BackgroundWorker(f"flush-build-r{self.rank}")
        self.flush_sync_worker = BackgroundWorker(f"flush-sync-r{self.rank}")

        #: group-commit window state — main-thread-only (mutated solely
        #: under the application thread inside _put_impl/_write_bulk), so
        #: it needs no lock and no registry entry
        self._gc_open = False
        self._gc_t0 = 0.0
        self._gc_bytes = 0

        #: L0 delta tables flushed since the last compaction (partitioned
        #: mode's minor-merge inputs); guarded by db.state like ssids
        self._l0: List[int] = []
        #: minor generations since the last major (tombstone-dropping) merge
        self._minor_gens = 0

        self.stats = DbStats()
        from repro.core.latency import LatencyTracker

        self.latency = LatencyTracker()
        self._tracer = None
        self._closed = False
        self._handler_thread: Optional[threading.Thread] = None

        self.store.makedirs(self.rank_dir)
        self._load_existing_sstables()

    # ------------------------------------------------------------ lifecycle
    def _load_existing_sstables(self) -> None:
        """Zero-copy workflow: compose the DB from retained SSTables.

        Each retained table is *admitted*: all three files must exist
        (a crash between the writer's atomic renames can leave a
        complete SSData without its sidecars — those are rebuilt from
        the data), and with ``verify_on_open`` the checksums are
        verified too.  Tables that fail admission are quarantined.
        """
        existing = list_ssids(self.store, self.rank_dir)
        admitted: List[int] = []
        for ssid in existing:
            if self._admit_sstable(ssid):
                admitted.append(ssid)
        if existing:
            self._next_ssid = existing[-1] + 1
        self.ssids = admitted

    def _admit_sstable(self, ssid: int) -> bool:
        """Validate/repair one retained table; False means quarantined."""
        data_name, index_name, bloom_name = sstable_filenames(ssid)
        data_p = f"{self.rank_dir}/{data_name}"
        index_p = f"{self.rank_dir}/{index_name}"
        bloom_p = f"{self.rank_dir}/{bloom_name}"
        missing = [p for p in (index_p, bloom_p) if not self.store.exists(p)]
        if missing:
            # writer order is data -> index -> bloom, each atomic: an
            # intact SSData with missing sidecars is a mid-flush crash,
            # and the sidecars are pure functions of the data
            try:
                self._rebuild_sidecars(ssid, data_p)
                self.stats.tables_rebuilt += 1
                return True
            except (StorageError, ValueError) as exc:
                self._quarantine_table(ssid, f"sidecar rebuild failed: {exc}")
                return False
        if self.options.verify_on_open:
            try:
                t = SSTableReader(self.store, self.rank_dir, ssid).verify(
                    self.clock.now
                )
                self.clock.advance_to(t)
            except StorageError as exc:
                self.stats.corruptions_detected += 1
                self._quarantine_table(ssid, str(exc))
                return False
        return True

    def _rebuild_sidecars(self, ssid: int, data_p: str) -> None:
        """Recompute the index and bloom files from an intact SSData.

        Both sidecars are rewritten even if one survived, so the index
        footer's bloom checksum always matches the bloom file on disk.
        """
        blob, t = self.store.read(data_p, self.clock.now)
        records = list(decode_records(blob))  # raises CorruptionError if torn
        blobs = encode_table(records, self.options.bloom_fp_rate)
        if blobs["data"] != blob:
            raise CorruptionError(
                f"sstable {ssid}: SSData does not round-trip; refusing rebuild"
            )
        _, index_name, bloom_name = sstable_filenames(ssid)
        t = self.store.write(f"{self.rank_dir}/{index_name}", blobs["index"], t)
        t = self.store.write(f"{self.rank_dir}/{bloom_name}", blobs["bloom"], t)
        self.clock.advance_to(t)

    def _poison_range(
        self, ssid: int
    ) -> Tuple[Optional[bytes], Optional[bytes]]:
        """Tightest trustworthy [min, max] bound on the keys a damaged
        table may cover.

        Only bytes in data blocks whose footer CRC still verifies are
        trusted; the suspect region is bracketed by the nearest verified
        keys on either side (over-poisoning by one key is safe, serving
        a stale value because a damaged key escaped the range is not).
        ``(None, None)`` means the whole keyspace is poisoned.
        """
        data_name, index_name, _ = sstable_filenames(ssid)
        t = self.clock.now
        try:
            idx_blob, t = self.store.read(f"{self.rank_dir}/{index_name}", t)
            entries, footer = parse_index(idx_blob)
            data, t = self.store.read(f"{self.rank_dir}/{data_name}", t)
            self.clock.advance_to(t)
        except (StorageError, ValueError):
            return None, None  # no trustworthy metadata at all
        if footer is None:  # v1 table: no CRCs, decode best-effort
            try:
                keys = [r.key for r in decode_records(data)]
            except (StorageError, ValueError):
                return None, None
            return (min(keys), max(keys)) if keys else (None, None)
        bs = footer.block_size
        bad = {
            i for i, want in enumerate(footer.block_crcs)
            if crc32c(data[i * bs:(i + 1) * bs]) != want
        }
        if len(data) != footer.data_len:
            bad.add(max(0, (footer.data_len - 1) // bs))

        def key_of(e):
            return bytes(data[e.key_offset:e.key_offset + e.keylen])

        suspect = [
            j for j, e in enumerate(entries)
            if any(
                b in bad
                for b in range(
                    e.offset // bs, (e.offset + e.record_len - 1) // bs + 1
                )
            )
        ]
        if not suspect:  # sidecar damage only: data keys are all verified
            if not entries:
                return None, None
            return key_of(entries[0]), key_of(entries[-1])
        lo, hi = suspect[0], suspect[-1]
        # at the table's edges, fall back to the footer's CRC-protected
        # key fences so even a fully-damaged data file poisons only the
        # range this table actually covered
        min_key = (
            key_of(entries[lo - 1]) if lo > 0 else (footer.min_key or None)
        )
        max_key = (
            key_of(entries[hi + 1]) if hi + 1 < len(entries)
            else (footer.max_key or None)
        )
        return min_key, max_key

    def _quarantine_table(self, ssid: int, reason: str) -> None:
        """Move a damaged table out of the SSID namespace and poison
        the key range it may have covered."""
        min_key, max_key = self._poison_range(ssid)
        data_name, index_name, bloom_name = sstable_filenames(ssid)
        data_p = f"{self.rank_dir}/{data_name}"
        t = self.clock.now
        for rel in (data_p, f"{self.rank_dir}/{index_name}",
                    f"{self.rank_dir}/{bloom_name}"):
            if self.store.exists(rel):
                t = self.store.rename(rel, rel + QUARANTINE_SUFFIX, t)
        self.clock.advance_to(t)
        with self._lock:
            self._invalidate_readers(ssid)
            if ssid in self.ssids:
                annotate_write(self, "db.ssids")
                self.ssids.remove(ssid)
            annotate_write(self, "db.quarantined")
            self._quarantined = [
                q for q in self._quarantined if q.ssid != ssid
            ] + [QuarantinedTable(ssid, min_key, max_key, reason)]
        self.stats.tables_quarantined += 1

    def _start_handler(self) -> None:
        from repro.core.handler import handler_main

        t = threading.Thread(
            target=handler_main, args=(self,),
            name=f"pkv-handler-{self.name}-r{self.rank}", daemon=True,
        )
        self._handler_thread = t
        t.start()

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError(f"database {self.name!r} is closed")

    @property
    def clock(self):
        return self.ctx.clock

    def attach_tracer(self, tracer) -> None:
        """Record operation spans into ``tracer`` (see repro.tools.trace)."""
        self._tracer = tracer

    def _trace(self, name: str, lane: str, t_start: float,
               t_end: float) -> None:
        if self._tracer is not None:
            self._tracer.record(name, self.rank, lane, t_start, t_end)

    # ------------------------------------------------------------ op charges
    def _charge_op(self, nbytes: int) -> None:
        self.clock.advance(self._op_cost + nbytes / self._memcpy_Bps)

    def _validate_kv(self, key: bytes, value: Optional[bytes]) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise InvalidKeyError("key must be a non-empty byte string")
        if value is not None and not isinstance(value, (bytes, bytearray)):
            raise InvalidValueError("value must be a byte string")

    def owner_of(self, key: bytes) -> int:
        """The rank owning ``key`` (hash % nranks, custom hash honoured)."""
        return owner_rank(bytes(key), self.nranks, self.hash_fn)

    # ============================================================ PUT / DELETE
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update a key-value pair (``papyruskv_put``)."""
        self._validate_kv(key, value)
        self._put_impl(bytes(key), bytes(value), tombstone=False)

    def delete(self, key: bytes) -> None:
        """Delete a key: a put with a tombstone bit (``papyruskv_delete``)."""
        self._validate_kv(key, None)
        self._put_impl(bytes(key), b"", tombstone=True)

    def _put_impl(self, key: bytes, value: bytes, tombstone: bool) -> None:
        self._check_open()
        self._maybe_kill()
        if self.protection == config.RDONLY:
            raise ProtectionError("database is read-only (PAPYRUSKV_RDONLY)")
        self.stats.puts += 1
        if tombstone:
            self.stats.deletes += 1
        t_start = self.clock.now
        nbytes = len(key) + len(value)
        opts = self.options
        gc_rider = False
        if opts.group_commit_interval > 0 and opts.group_commit_bytes > 0:
            # group commit: puts landing inside an open commit window
            # coalesce — they share the window-opener's durability charge
            # (DRAM write latency) and its ack drain, paying only the CPU
            # op plus the memcpy of their own payload
            if (
                self._gc_open
                and t_start - self._gc_t0 < opts.group_commit_interval
                and self._gc_bytes < opts.group_commit_bytes
            ):
                cpu = self.ctx.system.cpu
                self.clock.advance(cpu.kv_op_s + nbytes / self._memcpy_Bps)
                self._gc_bytes += nbytes
                self.stats.group_commit_coalesced += 1
                gc_rider = True
            else:
                self._charge_op(nbytes)
                self._drain_acks(blocking=False)
                self._quorum_drain()  # settle the previous window's debts
                self._gc_open = True
                self._gc_t0 = t_start
                self._gc_bytes = nbytes
                self.stats.group_commits += 1
        else:
            self._charge_op(nbytes)
            self._drain_acks(blocking=False)
        if self._replication_on:
            # replicated write: fan to the key's group; return once the
            # write quorum has durably logged it.  Riders in an open
            # group-commit window defer their quorum wait to the window
            # boundary (next opener / fence), exactly like they defer
            # their ack drain; sequential mode always waits here.
            self._tick()
            seqs, need = self._put_replicated(key, value, tombstone)
            if gc_rider and self.consistency != config.SEQUENTIAL:
                self._quorum_due.append((seqs, need))
            else:
                self._await_quorum(seqs, need)
        else:
            owner = self.owner_of(key)
            if owner == self.rank:
                self.stats.local_puts += 1
                self._local_insert(key, value, tombstone, self.clock)
            elif self.consistency == config.SEQUENTIAL:
                self.stats.remote_puts += 1
                self._put_sync(owner, key, value, tombstone)
            else:
                self.stats.remote_puts += 1
                self._remote_stage(owner, key, value, tombstone)
        self.latency.observe(
            "delete" if tombstone else "put", self.clock.now - t_start
        )
        self._trace("delete" if tombstone else "put", "main",
                    t_start, self.clock.now)

    def _local_insert(self, key: bytes, value: bytes, tombstone: bool,
                      clock) -> None:
        """Insert into the local MemTable (caller may be the handler)."""
        with self._lock:
            self.local_mt.put(key, value, tombstone)
            # a stale cache entry with the same key is evicted (Fig. 2)
            if self.local_cache is not None and self.protection != config.WRONLY:
                self.local_cache.invalidate(key)
            if self.local_mt.full:
                self._rotate_local(clock)

    def _rotate_local(self, clock) -> None:
        """Freeze the full local MemTable and enqueue it for flushing."""
        imm = self.local_mt.freeze()
        self.local_mt = MemTable(self.options.memtable_capacity, "local")
        self._enqueue_flush(imm, clock)

    def _crash_site(self, site: str) -> None:
        """Visit a named flush-pipeline fault site (no-op without a plan)."""
        plan = self.store.faults
        if plan is not None:
            plan.at_site(site)

    def _enqueue_flush(self, imm: MemTable, clock) -> None:
        """Queue an immutable local MemTable; apply back-pressure if full.

        With ``Options.flush_pipeline`` the flush runs as two overlapped
        stages: *build* (CPU: sort snapshot -> encode the three blobs) on
        the build worker, then *sync* (device: one batched durable
        commit) chained onto the sync worker.  Each stage only gates on
        its own worker, so while table N syncs to the device table N+1
        is already encoding — foreground puts stall only when the whole
        queue is full.  Crash sites ``flush.freeze/build/sync/retire``
        bracket every stage transition.
        """
        if len(imm) == 0:
            return
        self._crash_site(f"flush.freeze:rank{self.rank}")
        # back-pressure: block (virtually) until the oldest flush finishes
        stall_t0 = clock.now
        while len(self.flushing) >= self.options.flush_queue_capacity:
            _, end = self.flushing[0]
            clock.advance_to(end)
            self._retire_flushed(clock.now)
            if self.flushing and self.flushing[0][1] > clock.now:
                break  # defensive; should not happen
        if clock.now > stall_t0:
            self.stats.flush_stalls += 1
            self.stats.flush_stall_s += clock.now - stall_t0
        ssid = self._next_ssid
        self._next_ssid += 1
        records = imm.records()

        if self.options.flush_pipeline:
            end = self._schedule_pipelined_flush(ssid, records, imm, clock)
        else:

            def job(start: float) -> float:
                self._crash_site(f"flush.build:{self.rank_dir}/{ssid}")
                _, end = write_sstable(
                    self.store, self.rank_dir, ssid, records, start,
                    self.options.bloom_fp_rate,
                )
                self._crash_site(f"flush.retire:{self.rank_dir}/{ssid}")
                self._trace(f"flush ssid={ssid}", "compaction", start, end)
                return end

            end = self.compaction_worker.schedule(clock.now, job)
        annotate_write(self, "db.ssids")
        self.ssids.append(ssid)
        self._l0.append(ssid)
        self.flushing.append((imm, end))
        self._index_publish_due([ssid])
        self.stats.flushes += 1
        self._retire_flushed(clock.now)
        interval = self.options.compaction_interval
        if self.options.compaction_partitions > 1:
            if interval and len(self._l0) >= interval:
                self._schedule_compaction(clock.now)
        elif interval and ssid % interval == 0 and len(self.ssids) > 1:
            self._schedule_compaction(clock.now)

    def _schedule_pipelined_flush(self, ssid: int, records, imm: MemTable,
                                  clock) -> float:
        """Chain the build and sync stages of one flush; returns the
        virtual time the table is durable."""
        cpu = self.ctx.system.cpu
        holder: Dict[str, Dict[str, bytes]] = {}

        def build_job(start: float) -> float:
            self._crash_site(f"flush.build:{self.rank_dir}/{ssid}")
            holder["blobs"] = encode_table(records, self.options.bloom_fp_rate)
            nbytes = sum(len(b) for b in holder["blobs"].values())
            end = start + cpu.kv_op_s * max(1, len(records)) + (
                nbytes / self._memcpy_Bps
            )
            self._trace(f"flush-build ssid={ssid}", "flush-build", start, end)
            return end

        t_built = self.flush_build_worker.schedule(clock.now, build_job)

        def sync_job(start: float) -> float:
            self._crash_site(f"flush.sync:{self.rank_dir}/{ssid}")
            _, end = write_sstable_blobs(
                self.store, self.rank_dir, ssid, holder["blobs"], start
            )
            self._crash_site(f"flush.retire:{self.rank_dir}/{ssid}")
            self._trace(f"flush-sync ssid={ssid}", "flush-sync", start, end)
            return end

        return self.flush_sync_worker.schedule(t_built, sync_job)

    def _retire_flushed(self, now: float) -> None:
        """Drop flushing-queue entries whose flush completed by ``now``."""
        while self.flushing and self.flushing[0][1] <= now:
            self.flushing.pop(0)

    # -------------------------------------------------- scan snapshot pins
    def _pin_scan_tables(self, ssids: List[int]) -> None:
        """Pin a scan's SSID horizon (called under db.state at open).

        While pinned, compaction may retire a table from the search
        order but must not unlink its files — the open iterator still
        reads them.
        """
        if not ssids:
            return
        with self._scan_lock:
            for s in ssids:
                self._scan_pins[s] = self._scan_pins.get(s, 0) + 1

    def _unpin_scan_tables(self, ssids: List[int]) -> None:
        """Release one scan's pins; run the unlinks compaction deferred."""
        due: List[str] = []
        with self._scan_lock:
            for s in ssids:
                n = self._scan_pins.get(s, 0) - 1
                if n > 0:
                    self._scan_pins[s] = n
                else:
                    self._scan_pins.pop(s, None)
                    due.extend(self._deferred_unlinks.pop(s, ()))
        if due:

            def unlink_job(start: float) -> float:
                return self.store.delete_many(due, start)

            self.compaction_worker.schedule(self.clock.now, unlink_job)

    def _retire_table_files(self, by_ssid: Dict[int, List[str]],
                            start: float) -> float:
        """Unlink retired tables' files, deferring any a scan has pinned.

        Compaction's delete stage routes through here: unpinned inputs
        go in one batched unlink commit, pinned ones park their paths
        in ``_deferred_unlinks`` until the last reading scan closes.
        """
        paths: List[str] = []
        with self._scan_lock:
            for s, ps in by_ssid.items():
                if self._scan_pins.get(s, 0) > 0:
                    self._deferred_unlinks.setdefault(s, []).extend(ps)
                else:
                    paths.extend(ps)
        if not paths:
            return start
        return self.store.delete_many(paths, start)

    def _schedule_compaction(self, t_enqueue: float) -> None:
        """Compact this rank's SSTable set (§2.5, partitioned here).

        Every output table takes a *fresh* SSID (never reuses an
        input's): group peers cache readers keyed by SSID, and a
        rewritten file under an old SSID would pair their cached index
        with new data silently.  A fresh SSID makes staleness detectable
        — deleted inputs raise StorageError and the changed newest-SSID
        invalidates peer caches.

        With ``compaction_partitions > 1`` the merge is incremental and
        partitioned: a *minor* pass merges only the L0 delta tables
        flushed since the last trigger into contiguous key-range
        partitions (old data stays put — tombstones kept), and every
        ``compaction_major_every``-th pass is a *major* merge of the
        whole set that drops tombstones.  Each partition is built by an
        independent CPU job and the round's outputs land with a single
        ordered device commit under a duty-cycle rate limit, so
        compaction never monopolizes the device while foreground puts
        are stalled on the flush queue.
        ``compaction_partitions <= 1`` keeps the paper's monolithic
        merge-everything shape.
        """
        if self.options.compaction_partitions <= 1:
            self._schedule_compaction_legacy(t_enqueue)
            return

        major = (
            self._minor_gens + 1 >= self.options.compaction_major_every
            or len(self._l0) == 0
        )
        live = set(self.ssids)
        if major:
            inputs = [s for s in self.ssids]
        else:
            inputs = [s for s in self._l0 if s in live]
        if len(inputs) <= 1:
            # nothing worth merging this round; count the generation so
            # a future major still comes due
            self._l0 = [s for s in self._l0 if s in live and s not in inputs]
            self._minor_gens = 0 if major else self._minor_gens + 1
            return

        # in pipelined mode an input's sync stage may still be in flight
        # on the virtual timeline: gate the read behind it
        t_read = max(t_enqueue, self.flush_sync_worker.available)
        t_round0 = max(t_read, self.compaction_worker.available)
        holder: Dict[str, object] = {}

        def read_job(start: float) -> float:
            merged, readers, end = read_and_merge(
                self.store, self.rank_dir, inputs, start,
                drop_tombstones=major, block_cache=self.block_cache,
            )
            holder["parts"] = partition_records(
                merged, self.options.compaction_partitions
            )
            holder["readers"] = readers
            self._trace(
                f"compact-read {len(inputs)} tables", "compaction",
                start, end,
            )
            return end

        self.compaction_worker.schedule(t_read, read_job)

        # each partition is an independent CPU build job; the round then
        # lands with ONE ordered device access (write_tables_ordered) so
        # a flush sync queued behind it waits for a bounded transfer —
        # per-table device round-trips here were the source of
        # compaction-induced put stalls
        cpu = self.ctx.system.cpu
        parts: List[List] = holder["parts"]  # type: ignore[assignment]
        built: List[Tuple[int, Dict[str, bytes]]] = []
        new_ssids: List[int] = []
        for part in parts:
            new_ssid = self._next_ssid
            self._next_ssid += 1
            new_ssids.append(new_ssid)

            def build_job(start: float, _ssid=new_ssid, _part=part) -> float:
                blobs = encode_table(_part, self.options.bloom_fp_rate)
                built.append((_ssid, blobs))
                nbytes = sum(len(b) for b in blobs.values())
                end = start + cpu.kv_op_s * max(1, len(_part)) + (
                    nbytes / self._memcpy_Bps
                )
                self._trace(
                    f"compact-build ssid={_ssid}", "compaction", start, end
                )
                return end

            self.compaction_worker.schedule(
                self.compaction_worker.available, build_job
            )
            self.stats.compaction_partition_jobs += 1

        def sync_job(start: float) -> float:
            _, end = write_tables_ordered(
                self.store, self.rank_dir, built, start
            )
            self._trace(
                f"compact-sync {len(built)} tables", "compaction", start, end
            )
            return end

        self.compaction_worker.schedule(
            self.compaction_worker.available, sync_job
        )

        def delete_job(start: float) -> float:
            # retire the round's inputs with one batched unlink commit;
            # inputs an open scan has pinned defer their unlink to the
            # iterator's close instead
            keep = set(new_ssids)
            by_ssid: Dict[int, List[str]] = {}
            for rd in holder["readers"]:  # type: ignore[union-attr]
                if rd.ssid not in keep:
                    by_ssid[rd.ssid] = list(rd.file_paths())
            return self._retire_table_files(by_ssid, start)

        self.compaction_worker.schedule(
            self.compaction_worker.available, delete_job
        )
        self._pace_compaction(t_round0, self.compaction_worker.available)

        annotate_write(self, "db.ssids")
        consumed = set(inputs)
        self.ssids = [s for s in self.ssids if s not in consumed] + new_ssids
        for s in inputs:
            self._invalidate_readers(s)
        self._l0 = []
        self._index_publish_due(new_ssids)
        self._minor_gens = 0 if major else self._minor_gens + 1
        self.stats.compactions += 1
        if major:
            self.stats.compaction_majors += 1

    def _pace_compaction(self, start: float, end: float) -> None:
        """Rate-limit the compaction worker to its configured duty cycle.

        After a compaction round occupying ``[start, end]`` the worker
        idles long enough that busy/(busy+idle) == the configured
        ``compaction_rate_limit``, leaving device headroom for
        foreground flushes.  Paced once per *round*, not per job: the
        round's device charges stay packed at the current device horizon
        (a later flush sync queues behind one bounded transfer), and the
        idle gap only delays when the next round may start.
        """
        duty = self.options.compaction_rate_limit
        if duty >= 1.0 or end <= start:
            return
        self.compaction_worker.idle_until(
            end + (end - start) * (1.0 - duty) / duty
        )

    def _schedule_compaction_legacy(self, t_enqueue: float) -> None:
        """The paper's monolithic merge: every table into one."""
        inputs = list(self.ssids)
        new_ssid = self._next_ssid
        self._next_ssid += 1

        def job(start: float) -> float:
            _, end = compact(
                self.store, self.rank_dir, inputs, new_ssid, start,
                drop_tombstones=True, fp_rate=self.options.bloom_fp_rate,
                block_cache=self.block_cache, delete_inputs=False,
            )
            # pin-aware retire: inputs an open scan reads stay on disk
            by_ssid: Dict[int, List[str]] = {}
            for s in inputs:
                if s != new_ssid:
                    names = sstable_filenames(s)
                    by_ssid[s] = [f"{self.rank_dir}/{n}" for n in names]
            end = self._retire_table_files(by_ssid, end)
            self._trace(
                f"compact {len(inputs)}->ssid={new_ssid}", "compaction",
                start, end,
            )
            return end

        self.compaction_worker.schedule(t_enqueue, job)
        annotate_write(self, "db.ssids")
        self.ssids = [new_ssid]
        self._l0 = []
        self._invalidate_readers()
        self._index_publish_due([new_ssid])
        self.stats.compactions += 1

    # ------------------------------------------------------ remote put paths
    def _remote_stage(self, owner: int, key: bytes, value: bytes,
                      tombstone: bool) -> None:
        """Relaxed mode: stage in the remote MemTable (memory only).

        Migration happens *outside* the state lock: the dispatcher's
        blocking back-pressure must never hold the lock this rank's
        handler needs to serve other ranks (cross-rank deadlock).
        """
        with self._lock:
            self.remote_mt.put(key, value, tombstone, owner)
            imm = self._swap_remote_mt() if self.remote_mt.full else None
        if imm is not None:
            self._migrate(imm)

    def _swap_remote_mt(self) -> MemTable:
        """Freeze and replace the remote MemTable (call under the lock)."""
        imm = self.remote_mt.freeze()
        self.remote_mt = MemTable(
            self.options.remote_memtable_capacity, "remote"
        )
        return imm

    def _migrate(self, imm: MemTable) -> None:
        """Ship an immutable remote MemTable to the owner ranks (§2.4).

        The dispatcher sorts pairs by owner, accumulates per-rank chunks,
        and sends one request message per owner; its time lands on the
        dispatcher's background timeline.
        """
        if len(imm) == 0:
            return
        groups = imm.by_owner()
        # migration-queue back-pressure: bound unacked chunks in flight
        cap = self.options.migration_queue_capacity * max(1, len(groups))
        while len(self._pending_acks) >= cap:
            self._drain_acks(blocking=True, at_most=1)
        chunk_seqs: List[Tuple[int, int]] = []  # (owner, seq)
        with self._lock:
            for owner in sorted(groups):
                seq = self._next_seq
                self._next_seq += self.nranks  # keep seqs rank-unique
                chunk_seqs.append((owner, seq))
                pairs = groups[owner]
                self._pending_acks.add(seq)
                self.inflight.append(
                    (seq, owner, {k: (v, tomb) for k, v, tomb in pairs})
                )
        self.stats.migrations += len(chunk_seqs)
        cpu = self.ctx.system.cpu
        sort_cost = cpu.kv_op_s * max(1, len(imm))

        def job(start: float) -> float:
            t = start + sort_cost
            for owner, seq in chunk_seqs:
                payload = msg.MigrateMsg(groups[owner], seq)
                self.srv_comm.send_at(payload, owner, tag=0, t_send=t)
                t += self.ctx.system.network.sw_overhead_s
            self._trace(
                f"migrate {len(chunk_seqs)} chunks", "dispatcher", start, t
            )
            return t

        self.dispatcher_worker.schedule(self.clock.now, job)

    def _drain_acks(self, blocking: bool, at_most: Optional[int] = None) -> None:
        """Consume migration acks; blocking mode waits for them.

        With ``Options.remote_timeout`` set, a blocking drain that stalls
        retransmits every unacked chunk (the handler's seq dedup makes
        the replay idempotent) up to ``remote_retries`` times before
        raising :class:`RemoteTimeoutError` — except under replication,
        where a rank still silent after the retry budget is **declared
        dead** instead (its pending seqs are purged by the declaration)
        so a fence never wedges on a killed rank.
        """
        timeout = self.options.remote_timeout
        rounds = 0
        drained = 0
        while self._pending_acks:
            if at_most is not None and drained >= at_most:
                return
            if blocking:
                try:
                    ack = self.ack_comm.recv(ANY_SOURCE, ACK_TAG,
                                             timeout=timeout)
                except TimeoutError:
                    self.stats.remote_timeouts += 1
                    if rounds >= self.options.remote_retries:
                        if self._replication_on:
                            with self._lock:
                                silent = {
                                    o for s, o, _ in self.inflight
                                    if s in self._pending_acks
                                }
                            if silent:
                                for r in sorted(silent):
                                    self._declare_dead(r)
                                rounds = 0
                                continue
                        raise RemoteTimeoutError(
                            f"{len(self._pending_acks)} migration ack(s) "
                            f"missing after {rounds + 1} round(s) of "
                            f"{timeout}s"
                        ) from None
                    rounds += 1
                    self.stats.remote_retries += 1
                    self.clock.advance(timeout * (2 ** (rounds - 1)))
                    with self._lock:
                        resend = [
                            (s, o, dict(d)) for s, o, d in self.inflight
                            if s in self._pending_acks
                        ]
                        replica = set(self._replica_seqs)
                    mv = self.membership
                    epoch, dead = mv.wire() if mv is not None else (0, ())
                    for seq, owner, chunk in resend:
                        pairs = [(k, v, tomb)
                                 for k, (v, tomb) in chunk.items()]
                        if seq in replica:
                            payload: object = msg.ReplicaPutBatchMsg(
                                pairs, seq, epoch, dead
                            )
                        else:
                            payload = msg.MigrateMsg(pairs, seq)
                        self.srv_comm.send(payload, owner, tag=0)
                    continue
            else:
                if not self.ack_comm.iprobe(ANY_SOURCE, ACK_TAG):
                    return
                ack = self.ack_comm.recv(ANY_SOURCE, ACK_TAG)
            if isinstance(ack, msg.ReplicaAckMsg):
                self._absorb_replica_ack(ack)
            with self._lock:
                self._pending_acks.discard(ack.seq)
                self._replica_seqs.discard(ack.seq)
                self.inflight = [
                    entry for entry in self.inflight if entry[0] != ack.seq
                ]
            drained += 1

    def _await_reply(self, owner: int, payload, seq: int):
        """Receive the reply to a request, retrying on timeout.

        With ``Options.remote_timeout`` unset (the default) this is a
        plain blocking receive.  Otherwise a lost request or reply is
        retried with exponential backoff — resending the *same* payload
        under the *same* seq, which the handler's sequence-number dedup
        makes idempotent — until the retry budget is exhausted and
        :class:`RemoteTimeoutError` is raised.
        """
        timeout = self.options.remote_timeout
        attempt = 0
        while True:
            try:
                return self.rsp_comm.recv(source=owner, tag=seq,
                                          timeout=timeout)
            except RemoteTimeoutError:
                raise
            except TimeoutError:
                self.stats.remote_timeouts += 1
                if attempt >= self.options.remote_retries:
                    raise RemoteTimeoutError(
                        f"rank {owner} did not answer seq {seq} after "
                        f"{attempt + 1} attempt(s) of {timeout}s"
                    ) from None
                attempt += 1
                self.stats.remote_retries += 1
                # backoff on the virtual timeline; the wall-clock wait
                # already happened inside the timed-out recv
                self.clock.advance(timeout * (2 ** (attempt - 1)))
                self.srv_comm.send(payload, owner, tag=0)

    def _already_applied(self, source: int, seq: int) -> bool:
        """Handler-side: has this (source, seq) mutation been applied?

        Records the seq as applied when first seen.  Only the handler
        thread touches the per-source windows, so no lock is needed.
        """
        window = self._seq_dedup.get(source)
        if window is None:
            window = self._seq_dedup[source] = _SeqWindow()
        return window.check_and_add(seq)

    def _put_sync(self, owner: int, key: bytes, value: bytes,
                  tombstone: bool) -> None:
        """Sequential mode: migrate one put synchronously (§3.1)."""
        seq = self._next_seq
        self._next_seq += self.nranks
        payload = msg.PutSyncMsg(key, value, tombstone, seq)
        self.srv_comm.send(payload, owner, tag=0)
        reply = self._await_reply(owner, payload, seq)
        assert isinstance(reply, msg.AckMsg) and reply.seq == seq

    # ============================================================ REPLICATION
    @property
    def _replication_on(self) -> bool:
        """True when this database runs with ``Options(replicas > 1)``."""
        return self.membership is not None

    def _maybe_kill(self) -> None:
        """Fault plane: die here if the plan kills this rank at this op."""
        if self._killed:
            raise RankKilledError(f"rank {self.rank} killed by fault plan")
        plan = self.ctx.faults
        if plan is not None and plan.check_kill(self.rank):
            self._die()

    def _die(self) -> None:
        """Kill this rank: mark its mailboxes dead (the handler's
        blocking receive raises out) and unwind the application with
        :class:`RankKilledError`.  In-flight messages to and from this
        rank are dropped by the world from here on."""
        self._killed = True
        self._closed = True
        self.srv_comm.kill_world_rank(self.rank)
        raise RankKilledError(f"rank {self.rank} killed by fault plan")

    def _replica_group(self, key: bytes, check: bool = True) -> List[int]:
        """The key's replica group: a ring walk from the hash owner.

        Walks rank ``owner_of(key)`` and its successors, skipping dead
        ranks, until ``replicas`` live members are collected; the first
        member is the **acting primary** (after any single death this is
        always a pre-death group member, since the ring only shifts).
        With ``check`` the group must still satisfy the write quorum, or
        :class:`QuorumLostError` is raised.
        """
        mv = self.membership
        home = self.owner_of(key)
        if mv is None:
            return [home]
        group: List[int] = []
        for i in range(self.nranks):
            r = (home + i) % self.nranks
            if mv.is_dead(r):
                continue
            group.append(r)
            if len(group) == self.options.replicas:
                break
        if check and len(group) < self.options.write_quorum:
            raise QuorumLostError(
                f"only {len(group)} live replica(s) for key {key!r}; "
                f"write quorum is {self.options.write_quorum}"
            )
        return group

    def _acting_owner(self, key: bytes) -> int:
        """The rank currently answering for ``key`` (group head)."""
        if not self._replication_on:
            return self.owner_of(key)
        group = self._replica_group(key, check=False)
        return group[0] if group else self.owner_of(key)

    def _is_acting_primary(self, key: bytes) -> bool:
        """Whether this rank is the key's current acting primary."""
        return self._acting_owner(key) == self.rank

    def _put_replicated(self, key: bytes, value: bytes,
                        tombstone: bool) -> Tuple[List[int], int]:
        """Fan one put to its replica group; returns ``(seqs, need)``.

        The pair is inserted locally when this rank is a group member
        and shipped to every other member as a
        :class:`~repro.core.messages.ReplicaPutBatchMsg` stamped with
        the current ``(epoch, dead)`` view.  Each fan-out seq joins
        ``_pending_acks``/``inflight`` — giving the staged write get
        visibility through the inflight tier — and ``need`` is how many
        of those acks the quorum still requires after counting a local
        insert.
        """
        group = self._replica_group(key)
        mv = self.membership
        assert mv is not None
        epoch, dead = mv.wire()
        if self.rank in group:
            self.stats.local_puts += 1
            self._local_insert(key, value, tombstone, self.clock)
        else:
            self.stats.remote_puts += 1
        targets = [r for r in group if r != self.rank]
        seqs: List[int] = []
        with self._lock:
            for _t in targets:
                seq = self._next_seq
                self._next_seq += self.nranks
                seqs.append(seq)
                self._pending_acks.add(seq)
                self._replica_seqs.add(seq)
        pair = (key, value, tombstone)
        for seq, target in zip(seqs, targets):
            with self._lock:
                self.inflight.append((seq, target, {key: (value, tombstone)}))
            self.srv_comm.send(
                msg.ReplicaPutBatchMsg([pair], seq, epoch, dead),
                target, tag=0,
            )
            self.stats.replica_msgs += 1
            self.stats.replica_pairs += 1
        need = self.options.write_quorum - (1 if self.rank in group else 0)
        return seqs, max(0, need)

    def _await_quorum(self, seqs: List[int], need: int) -> None:
        """Block until ``need`` of ``seqs`` have settled.

        A seq settles when its ack arrives, when a rejected batch was
        re-fanned under fresh seqs (the fence drains those), or when its
        target was declared dead (the membership change plus
        re-replication restore the copy count) — the latter two release
        the waiter so a death can never wedge an acknowledged put.
        """
        if need <= 0:
            return
        while True:
            with self._lock:
                settled = sum(
                    1 for s in seqs if s not in self._pending_acks
                )
            if settled >= need:
                return
            self._drain_acks(blocking=True, at_most=1)

    def _quorum_drain(self) -> None:
        """Settle every quorum debt deferred by group-commit riders."""
        if not self._quorum_due:
            return
        due, self._quorum_due = self._quorum_due, []
        for seqs, need in due:
            self._await_quorum(seqs, need)

    def _absorb_replica_ack(self, ack: msg.ReplicaAckMsg) -> None:
        """Membership gossip + stale-rejection handling for one ack.

        An ``applied=False`` ack means the receiver held our membership
        stamp stale: merge its newer view, then re-fan the rejected pair
        to the *current* group under fresh seqs.  Durability across the
        transition window is preserved because the re-fan reaches every
        live member and the fence drains the fresh seqs too.
        """
        mv = self.membership
        if mv is None:
            return
        mv.merge(ack.epoch, ack.dead)
        if ack.applied:
            return
        with self._lock:
            chunk = next(
                (dict(d) for s, _o, d in self.inflight if s == ack.seq),
                None,
            )
        if not chunk:
            return
        for key, (value, tomb) in chunk.items():
            self._put_replicated(key, value, tomb)

    def _declare_dead(self, rank: int) -> None:
        """Declare a silent rank dead; release everything waiting on it.

        Idempotent.  Purges the dead rank's pending acks and inflight
        chunks (each replica-fanned pair still lives on the surviving
        group members, so no acknowledged write loses visibility) and
        drops any cached view of its SSTables.  The membership view
        queues the rank for re-replication, pushed by the next tick.
        """
        mv = self.membership
        if mv is None or not mv.declare_dead(rank):
            return
        self.stats.rank_deaths += 1
        self._hb_ping.pop(rank, None)
        self._hb_last.pop(rank, None)
        with self._lock:
            doomed = [s for s, o, _ in self.inflight if o == rank]
            for s in doomed:
                self._pending_acks.discard(s)
                self._replica_seqs.discard(s)
            self.inflight = [e for e in self.inflight if e[1] != rank]
        self._drop_peer_cache(rank, f"{self.dbdir}/rank{rank}")

    def _absorb_pong(self, pong: msg.ReplicaAckMsg, source: int) -> None:
        """One heartbeat pong: proof of life plus membership gossip."""
        mv = self.membership
        if mv is None or mv.is_dead(source):
            return
        mv.merge(pong.epoch, pong.dead)
        mv.heard_from(source, self.clock.now)
        self._hb_ping.pop(source, None)

    def tick(self) -> None:
        """Run one failure-detector maintenance pass explicitly.

        The detector normally piggybacks on put/get traffic; an
        application that goes quiet (e.g. a pure consumer waiting for
        recovery to finish) can call this to keep heartbeats, death
        declarations and re-replication moving.
        """
        self._check_open()
        self._maybe_kill()
        # a poll is not free — and advancing the virtual clock is what
        # lets silence accumulate toward the detector's timeouts when
        # the application itself has gone quiet
        self.clock.advance(self.options.heartbeat_interval)
        self._tick()

    def _tick(self) -> None:
        """Failure-detector maintenance (main thread, replication only).

        Runs opportunistically at the top of every put/get: absorb
        heartbeat pongs, ping peers silent for ``heartbeat_interval``,
        mark ``suspect_timeout`` silences suspected, and declare a peer
        dead only when its oldest unanswered ping exceeds the *virtual*
        ``dead_timeout`` AND it stays silent through a *wall-clock*
        grace receive — a live handler always pongs promptly in real
        time, so a live rank is never falsely declared (this is what
        makes kill tests deterministic).  Finishes by pushing any
        pending re-replication work.
        """
        mv = self.membership
        if mv is None or self._in_rerepl or self._killed:
            return
        now = self.clock.now
        opts = self.options
        while self.ack_comm.iprobe(ANY_SOURCE, HB_TAG):
            status: dict = {}
            pong = self.ack_comm.recv(ANY_SOURCE, HB_TAG, status=status)
            self._absorb_pong(pong, status["source"])
        for r in mv.alive_ranks():
            if r == self.rank:
                continue
            silence = now - mv.last_heard(r)
            if silence < opts.heartbeat_interval:
                self._hb_ping.pop(r, None)
                continue
            if now - self._hb_last.get(r, -1.0) >= opts.heartbeat_interval:
                epoch, dead = mv.wire()
                self.srv_comm.send(
                    msg.HeartbeatMsg(epoch, dead, ping=True), r, tag=0
                )
                self.stats.heartbeats_sent += 1
                self._hb_last[r] = now
                self._hb_ping.setdefault(r, now)
            if silence >= opts.suspect_timeout:
                mv.suspect(r)
            if (silence >= opts.dead_timeout
                    and now - self._hb_ping.get(r, now) >= opts.dead_timeout):
                self._grace_then_declare(r)
        if mv.pending_rereplication:
            self._rereplicate()
        self._drain_index_publishes()

    def _grace_then_declare(self, rank: int) -> None:
        """Last chance before a death declaration: wall-clock grace.

        The virtual timeouts have expired; now give the peer *real* time
        to answer — its handler thread runs concurrently and a live one
        pongs within microseconds of wall time.  Only a peer silent
        through the grace receive is declared dead.
        """
        grace = self.options.remote_timeout or 0.05
        while rank in self._hb_ping:
            try:
                status: dict = {}
                pong = self.ack_comm.recv(
                    ANY_SOURCE, HB_TAG, timeout=grace, status=status
                )
            except TimeoutError:
                break
            self._absorb_pong(pong, status["source"])
        if rank in self._hb_ping:
            self._declare_dead(rank)

    def _all_local_records(self) -> List[msg.Pair]:
        """Every pair this rank holds, newest version per key wins.

        Unlike :func:`repro.core.scan.local_scan` this **keeps
        tombstones**: a re-replication push must propagate deletes, or a
        dead rank's deleted keys would resurrect on the new replica.
        """
        out: Dict[bytes, Tuple[bytes, bool]] = {}
        with self._lock:
            self._retire_flushed(self.clock.now)
            ssids = list(self.ssids)
            mem_tiers = [
                [(k, e.value, e.tombstone) for k, e in imm.items()]
                for imm, _t in self.flushing  # oldest first
            ]
            mem_tiers.append(
                [(k, e.value, e.tombstone) for k, e in self.local_mt.items()]
            )
        t = self.clock.now
        for ssid in ssids:  # ascending SSID = oldest first
            reader = self._reader(ssid)
            records, t = reader.read_all(t)
            for rec in records:
                out[rec.key] = (rec.value, rec.tombstone)
        self.clock.advance_to(t)
        for tier in mem_tiers:  # memory tiers are newer than any table
            for k, v, tomb in tier:
                out[k] = (v, tomb)
        return [(k, v, tomb) for k, (v, tomb) in out.items()]

    def _rereplicate(self) -> None:
        """Restore the replication factor after a death (main thread).

        For every key whose current group this rank heads (the acting
        primary always held the data before the death — the ring only
        shifts), push the pair to every other group member in chunked
        :class:`~repro.core.messages.ReplicaSyncMsg` batches, each acked
        on the rsp comm.  Members that already hold a pair re-apply the
        same bytes (idempotent).  A member that dies mid-push is
        declared dead and re-queued for the next pass.
        """
        mv = self.membership
        if mv is None or self._in_rerepl:
            return
        self._in_rerepl = True
        try:
            newly_dead = mv.take_pending_rereplication()
            if not newly_dead:
                return
            targets: Dict[int, List[msg.Pair]] = {}
            for key, value, tomb in self._all_local_records():
                group = self._replica_group(key, check=False)
                if not group or group[0] != self.rank:
                    continue
                for r in group[1:]:
                    targets.setdefault(r, []).append((key, value, tomb))
            chunk = 256
            epoch, dead = mv.wire()
            grace = self.options.remote_timeout or 0.25
            for target in sorted(targets):
                pairs = targets[target]
                for i in range(0, len(pairs), chunk):
                    part = pairs[i:i + chunk]
                    seq = self._next_seq
                    self._next_seq += self.nranks
                    self.srv_comm.send(
                        msg.ReplicaSyncMsg(part, seq, epoch, dead),
                        target, tag=0,
                    )
                    try:
                        reply = self.rsp_comm.recv(
                            source=target, tag=seq, timeout=grace
                        )
                    except TimeoutError:
                        # a second death mid-push: declare it and let the
                        # next tick re-replicate around it
                        self._declare_dead(target)
                        break
                    assert isinstance(reply, msg.ReplicaAckMsg)
                    mv.merge(reply.epoch, reply.dead)
                    self.stats.rereplicated_pairs += len(part)
        finally:
            self._in_rerepl = False

    def _replicated_get(self, key: bytes) -> Optional[GetResult]:
        """One get under replication: staged tiers, then group members.

        A member of the key's group answers locally; otherwise the
        acting primary is asked, and a timeout declares it dead and
        re-routes.  After any death (``epoch > 0``) a *miss* is
        cross-checked against the remaining members before being
        believed — a freshly promoted member may not have received its
        re-replication push yet.  Deletes stay correct under that
        paranoia read: every member of the group applied the acked
        tombstone, so all of them answer "absent".

        Reads do **not** require the write quorum: any single live
        replica can serve a get, so ``check=False`` here — only a group
        with zero live members is unanswerable.
        """
        mv = self.membership
        assert mv is not None
        with self._lock:
            entry, tier = self._search_memory_remote(key)
        if entry is not None:
            if entry.tombstone:
                return None
            return GetResult(entry.value, tier)
        for _attempt in range(self.nranks + 1):
            group = self._replica_group(key, check=False)
            if not group:
                break
            if self.rank in group:
                self.stats.local_gets += 1
                result = self._local_get(key)
                if result is not None or mv.epoch == 0:
                    return result
                others = [r for r in group if r != self.rank]
            else:
                self.stats.remote_gets += 1
                primary = group[0]
                try:
                    result = self._remote_get(primary, key)
                except RemoteTimeoutError:
                    self.stats.failover_gets += 1
                    self._declare_dead(primary)
                    continue
                if result is not None or mv.epoch == 0:
                    return result
                others = group[1:]
            for r in others:
                self.stats.failover_gets += 1
                try:
                    result = self._remote_get(r, key)
                except RemoteTimeoutError:
                    self._declare_dead(r)
                    continue
                if result is not None:
                    return result
            return None
        raise QuorumLostError(f"no live replica answered for key {key!r}")

    # ==================================================================== GET
    def get(self, key: bytes) -> bytes:
        """Retrieve the value for ``key`` (``papyruskv_get``).

        Raises :class:`KeyNotFoundError` when absent or deleted.
        """
        self._validate_kv(key, None)
        return self.get_ex(bytes(key)).value

    def get_or_none(self, key: bytes) -> Optional[bytes]:
        """Like :meth:`get` but returns None instead of raising."""
        try:
            return self.get(bytes(key))
        except KeyNotFoundError:
            return None

    def get_ex(self, key: bytes) -> GetResult:
        """Like :meth:`get` but reports which tier satisfied the lookup."""
        self._check_open()
        self._maybe_kill()
        self._validate_kv(key, None)
        if self.protection == config.WRONLY:
            raise ProtectionError("database is write-only (PAPYRUSKV_WRONLY)")
        self.stats.gets += 1
        t_start = self.clock.now
        self._charge_op(len(key))
        self._drain_acks(blocking=False)
        if self._replication_on:
            self._tick()
            result = self._replicated_get(key)
        else:
            owner = self.owner_of(key)
            if owner == self.rank:
                self.stats.local_gets += 1
                result = self._local_get(key)
            else:
                self.stats.remote_gets += 1
                result = self._remote_get(owner, key)
        self.latency.observe("get", self.clock.now - t_start)
        self._trace("get", "main", t_start, self.clock.now)
        if result is None:
            raise KeyNotFoundError(key)
        self.stats.hit(result.tier)
        return result

    # ---------------------------------------------------------- local lookup
    def _search_memory_local(self, key: bytes) -> Tuple[Optional[Entry], str]:
        """Local MemTable, then immutable ones newest-first (Fig. 3)."""
        entry = self.local_mt.get(key)
        if entry is not None:
            return entry, "local_mt"
        for imm, _end in reversed(self.flushing):
            entry = imm.get(key)
            if entry is not None:
                return entry, "flushing"
        return None, ""

    def _local_get(self, key: bytes) -> Optional[GetResult]:
        with self._lock:
            self._retire_flushed(self.clock.now)
            entry, tier = self._search_memory_local(key)
            if entry is not None:
                if entry.tombstone:
                    return None
                return GetResult(entry.value, tier)
            if self.local_cache is not None and self.protection != config.WRONLY:
                cached = self.local_cache.get(key)
                if cached is not None:
                    return GetResult(cached, "local_cache")
            ssids = list(self.ssids)
        rec = self._sstable_lookup(ssids, key)
        if rec is None or rec.tombstone:
            return None
        with self._lock:
            if self.local_cache is not None and self.protection != config.WRONLY:
                self.local_cache.put(key, rec.value)
        return GetResult(rec.value, "sstable")

    def _sstable_lookup(self, ssids: List[int], key: bytes
                        ) -> Optional[Record]:
        """Search my own SSTables, retrying once across a compaction race.

        A concurrent compaction (handler-triggered flush on this rank)
        may delete input tables mid-search; the retry re-reads the
        authoritative SSID list under the lock.  Advances the caller's
        clock to the read-completion time.
        """
        try:
            rec, t_end = self._search_sstables(
                self.store, self.rank_dir, ssids, key, self.clock.now,
                own=True,
            )
        except StorageError:
            with self._lock:
                self._invalidate_readers()
                ssids = list(self.ssids)
            rec, t_end = self._search_sstables(
                self.store, self.rank_dir, ssids, key, self.clock.now,
                own=True,
            )
        self.clock.advance_to(t_end)
        return rec

    def _reader(self, ssid: int) -> SSTableReader:
        """Cached reader for one of my SSTables.

        Called by both the rank-main thread (gets/scans after dropping
        ``db.state``) and the message handler, so the cache has its own
        lock — the readers dict was this codebase's one genuine data
        race before the detector existed.
        """
        with self._readers_lock:
            rd = self._readers.get(ssid)
            annotate_read(self, "db.readers")
            if rd is None:
                rd = SSTableReader(self.store, self.rank_dir, ssid,
                                   block_cache=self.block_cache)
                annotate_write(self, "db.readers")
                self._readers[ssid] = rd
            return rd

    def _peer_reader(self, directory: str, ssid: int) -> SSTableReader:
        """Cached reader for a storage-group peer's SSTable (§2.7).

        Peer tables are immutable and compaction never reuses an input
        SSID, so a cached bloom/index stays valid until the file
        disappears — which surfaces as StorageError and drops the
        owner's whole cached view.  Shares the block cache with own
        readers.  Only the rank-main thread does remote gets, so no
        lock guards this LRU.
        """
        rd = self._peer_reader_cache.get((directory, ssid))
        if rd is None:
            rd = SSTableReader(self.store, directory, ssid,
                               block_cache=self.block_cache)
            self._peer_reader_cache.put((directory, ssid), rd)
        return rd

    def _drop_peer_cache(self, owner: int, owner_dir: str) -> None:
        """Forget every cached view of one owner's tables (compaction
        race, rank death): the SSID list, the reader objects, the
        replicated index view and its metadata bundles, and — in the
        same call — any cached data blocks under the owner's directory,
        so no stale ``(dir, ssid, block)`` span survives to age out."""
        self._peer_readers.pop(owner, None)
        self._peer_reader_cache.invalidate_where(lambda k: k[0] == owner_dir)
        with self._index_lock:
            annotate_write(self, "db.index_cache")
            self._index_views.pop(owner, None)
            self._index_bundles.invalidate_where(lambda k: k[0] == owner_dir)
        if self.block_cache is not None:
            self.block_cache.invalidate_dir(owner_dir)

    def _invalidate_readers(self, ssid: Optional[int] = None) -> None:
        """Drop one cached reader (or all) under the readers lock, and
        the block-cache entries of the affected table(s) — quarantine,
        compaction, scrub repair and checkpoint restore all pass through
        here, so a replaced table can never serve stale cached blocks."""
        with self._readers_lock:
            annotate_write(self, "db.readers")
            if ssid is None:
                self._readers.clear()
            else:
                self._readers.pop(ssid, None)
        # the peer-facing caches funnel through here too: a table
        # replaced in place (quarantine repair, checkpoint restore)
        # must not survive under any cache keyed by its old bytes
        if ssid is None:
            self._peer_reader_cache.invalidate_where(
                lambda k: k[0] == self.rank_dir
            )
        else:
            self._peer_reader_cache.invalidate((self.rank_dir, ssid))
        with self._index_lock:
            annotate_write(self, "db.index_cache")
            if ssid is None:
                self._index_bundles.invalidate_where(
                    lambda k: k[0] == self.rank_dir
                )
            else:
                self._index_bundles.invalidate((self.rank_dir, ssid))
        if self.block_cache is not None:
            if ssid is None:
                self.block_cache.invalidate_dir(self.rank_dir)
            else:
                self.block_cache.invalidate_table(self.rank_dir, ssid)

    def _ssids_snapshot(self) -> List[int]:
        """A consistent copy of my SSID list (for unlocked walks)."""
        with self._lock:
            annotate_read(self, "db.ssids")
            return list(self.ssids)

    def _search_sstables(
        self,
        store: PosixStore,
        directory: str,
        ssids: List[int],
        key: bytes,
        t: float,
        own: bool,
    ) -> Tuple[Optional[Record], float]:
        """Walk SSTables highest-SSID-first with fence pruning and bloom
        skipping (§2.6 + the v2 footer fences from the durability work).

        Per table the gate order is: quarantine poison-range check,
        footer ``[min_key, max_key]`` fences (free after the first index
        load; v1 tables have none and fall back to bloom-only), then the
        bloom filter.  The quarantine check runs *first* — a pruned or
        bloom-skipped walk must never mask the fact that the newest
        version of the key may have lived in a damaged table.

        Quarantined tables participate in the walk as *poisoned holes*:
        if no newer table answered by the time the walk reaches one
        whose range may cover the key, the true newest version might
        have lived there — raising beats silently serving older data.
        """
        if own:
            # snapshot under the lock: the handler may be quarantining
            # concurrently (db.state is re-entrant, so holders are fine)
            with self._lock:
                annotate_read(self, "db.quarantined")
                quarantined: Tuple[QuarantinedTable, ...] = tuple(
                    self._quarantined
                )
        else:
            quarantined = ()
        walk: List[Tuple[int, object]] = [(s, None) for s in ssids]
        walk.extend((q.ssid, q) for q in quarantined)
        walk.sort(key=lambda x: x[0], reverse=True)
        for ssid, quar in walk:
            if quar is not None:
                if quar.may_cover(key):
                    raise CorruptionError(
                        f"key range degraded: sstable {ssid} is quarantined "
                        f"({quar.reason})"
                    )
                continue
            reader = (
                self._reader(ssid) if own
                else self._peer_reader(directory, ssid)
            )
            if self.options.fence_pruning:
                fences, t = reader.key_range(t)
                if fences is not None:
                    mn, mx = fences
                    # an empty table has fences (b"", b"") and valid keys
                    # are non-empty, so `not mx` prunes it for any key
                    if not mx or key < mn or key > mx:
                        self.stats.fence_skips += 1
                        continue
            if self.options.bloom_enabled:
                hit, t = reader.may_contain(key, t)
                if not hit:
                    self.stats.bloom_skips += 1
                    continue
            rec, t = reader.get(
                key, t, binary_search=self.binary_search, use_bloom=False,
            )
            if rec is not None:
                return rec, t
        return None, t

    # --------------------------------------------------------- remote lookup
    def _search_memory_remote(self, key: bytes) -> Tuple[Optional[Entry], str]:
        """Remote MemTable, then unacked migrated chunks newest-first."""
        entry = self.remote_mt.get(key)
        if entry is not None:
            return entry, "remote_mt"
        for _seq, _owner, chunk in reversed(self.inflight):
            if key in chunk:
                value, tomb = chunk[key]
                return Entry(value, tomb), "inflight"
        return None, ""

    def _remote_get(self, owner: int, key: bytes) -> Optional[GetResult]:
        with self._lock:
            entry, tier = self._search_memory_remote(key)
        if entry is not None:
            if entry.tombstone:
                return None
            return GetResult(entry.value, tier)
        remote_cache_on = self.protection == config.RDONLY
        if remote_cache_on:
            cached = self.remote_cache.get(key)
            if cached is not None:
                return GetResult(cached, "remote_cache")
        if self._index_direct_eligible(owner):
            res = self._index_replicated_get(owner, key)
            if res is not _INDEX_FALLBACK:
                if res is None:
                    return None
                if remote_cache_on:
                    self.remote_cache.put(key, res.value)
                return res
        for attempt in range(3):
            force = attempt == 2
            reply = self._request_get(owner, key, force)
            if reply.status == msg.NOT_FOUND:
                return None
            if reply.status == msg.DEGRADED:
                raise CorruptionError(
                    f"owner rank {owner} has quarantined the range covering "
                    f"key {key!r}"
                )
            if reply.status == msg.FOUND:
                if reply.tombstone:
                    return None
                if remote_cache_on and reply.value is not None:
                    self.remote_cache.put(key, reply.value)
                return GetResult(reply.value or b"", "remote")
            # NOT_IN_MEMORY: same storage group — read the owner's
            # SSTables directly from the shared NVM (§2.7)
            try:
                rec, t_end = self._shared_sstable_get(owner, key, reply)
            except StorageError:
                # raced a compaction; drop every cached view of this
                # owner's tables and retry
                self._drop_peer_cache(
                    owner, reply.owner_dir or f"{self.dbdir}/rank{owner}"
                )
                continue
            self.clock.advance_to(t_end)
            if rec is None:
                return None
            if rec.tombstone:
                return None
            if remote_cache_on:
                self.remote_cache.put(key, rec.value)
            return GetResult(rec.value, "shared_sstable")
        return None

    def _request_get(self, owner: int, key: bytes, force: bool) -> msg.GetReply:
        seq = self._next_seq
        self._next_seq += self.nranks
        payload = msg.GetMsg(key, self.group, seq, force_data=force)
        self.srv_comm.send(payload, owner, tag=0)
        reply = self._await_reply(owner, payload, seq)
        assert isinstance(reply, msg.GetReply)
        return reply

    def _shared_sstable_get(
        self, owner: int, key: bytes, reply: msg.GetReply
    ) -> Tuple[Optional[Record], float]:
        """Read the owner's SSTables directly from shared NVM (§2.7).

        The SSID list is cached per owner and revalidated by the
        newest-ssid handshake in the reply; the walk itself goes through
        :meth:`_search_sstables` with ``own=False``, so peer lookups get
        the same fence pruning, bloom gating, and persistent cached
        readers (sharing the block cache) as local ones.
        """
        owner_dir = reply.owner_dir or f"{self.dbdir}/rank{owner}"
        cached = self._peer_readers.get(owner)
        if cached is None or cached[0] != reply.newest_ssid:
            # a new SSTable appeared at the owner: re-list, but keep
            # reader objects for SSIDs we already know — the files are
            # immutable, so their loaded blooms/indexes stay valid
            ssids = list_ssids(self.store, owner_dir)
            self._peer_readers[owner] = (reply.newest_ssid, ssids)
        else:
            ssids = cached[1]
        return self._search_sstables(
            self.store, owner_dir, ssids, key, self.clock.now, own=False,
        )

    # ========================================= ONE-SIDED INDEX REPLICATION
    def _owner_dir(self, owner: int) -> str:
        """Shared-NVM directory of another rank's SSTables."""
        return f"{self.dbdir}/rank{owner}"

    def _index_direct_eligible(self, owner: int) -> bool:
        """May this get try the one-sided path against ``owner``?

        Requires the option, a consistency regime whose visibility
        contract a direct read can honour (relaxed — remote puts are
        only promised visible after a barrier — or RDONLY, where no
        writes exist), an owner outside my storage group (§2.7 already
        reads same-group tables one-sidedly, handshake included), and
        an owner not held dead.
        """
        if not self.options.index_replication:
            return False
        if (self.consistency != config.RELAXED
                and self.protection != config.RDONLY):
            return False
        if self.shares_storage_with(owner):
            return False
        mv = self.membership
        if mv is not None and mv.is_dead(owner):
            return False
        return True

    def _index_view_of(self, owner: int) -> Optional[_PeerIndexView]:
        with self._index_lock:
            annotate_read(self, "db.index_cache")
            return self._index_views.get(owner)

    def _drop_index_view(self, owner: int) -> None:
        """Forget one owner's view; its bundles stay cached — a re-pull
        re-validates them via ``have`` without re-shipping bytes."""
        with self._index_lock:
            annotate_write(self, "db.index_cache")
            self._index_views.pop(owner, None)

    def _index_mark_all_dirty(self) -> None:
        """Drop every ``mem_clean`` stamp (fence = visibility boundary).

        After my fence, pairs I migrated live in their owners'
        MemTables — state a direct read cannot see — so every cached
        view must stop claiming the owner's memory is clean.  The next
        get falls back to the handler until a re-pull (post-flush)
        restores a clean stamp.  Barrier calls fence on every rank, so
        barrier-visibility for *other* ranks' puts follows too.
        """
        with self._index_lock:
            annotate_write(self, "db.index_cache")
            for owner, view in list(self._index_views.items()):
                if view.mem_clean:
                    self._index_views[owner] = _PeerIndexView(
                        view.owner_dir, view.newest_ssid, view.ssids,
                        False, view.quarantine_free, view.epoch,
                    )

    def _install_index_view(self, owner: int, owner_dir: str,
                            newest_ssid: int, ssids: Tuple[int, ...],
                            bundles: Dict[int, bytes], mem_clean: bool,
                            quarantine_free: bool) -> bool:
        """Decode shipped bundles and install the owner's view.

        Called by the main thread (pull replies) and the handler thread
        (eager publishes); reader construction happens outside the lock.
        Returns False — installing nothing — if any bundle fails its
        CRC or structural checks: a half-trusted view is worse than a
        handler round trip.
        """
        readers: Dict[int, Tuple[SSTableReader, int]] = {}
        for ssid, blob in bundles.items():
            try:
                b_ssid, index_blob, bloom_blob = decode_meta_bundle(blob)
                if b_ssid != ssid:
                    raise CorruptionError(
                        f"bundle labelled ssid {b_ssid}, shipped as {ssid}"
                    )
                rd = SSTableReader.from_bundle(
                    self.store, owner_dir, ssid, index_blob, bloom_blob,
                    block_cache=self.block_cache,
                )
            except CorruptionError:
                self.stats.corruptions_detected += 1
                return False
            readers[ssid] = (rd, len(blob))
        mv = self.membership
        epoch = mv.epoch if mv is not None else 0
        live = set(ssids)
        with self._index_lock:
            annotate_write(self, "db.index_cache")
            self._index_views[owner] = _PeerIndexView(
                owner_dir, newest_ssid, tuple(ssids), mem_clean,
                quarantine_free, epoch,
            )
            # retired tables' bundles die with the view that named them
            self._index_bundles.invalidate_where(
                lambda k: k[0] == owner_dir and k[1] not in live
            )
            for ssid, (rd, cost) in readers.items():
                self._index_bundles.put((owner_dir, ssid), rd, cost)
        return True

    def _index_pull(self, owner: int) -> bool:
        """Pull the owner's index view + missing bundles (lazy path).

        Returns True when a usable view was installed.  A timeout is
        absorbed (False): the caller's handler fallback owns the
        retry/failover machinery.
        """
        owner_dir = self._owner_dir(owner)
        with self._index_lock:
            annotate_read(self, "db.index_cache")
            have = tuple(sorted(
                s for d, s in self._index_bundles.keys() if d == owner_dir
            ))
        seq = self._next_seq
        self._next_seq += self.nranks
        mv = self.membership
        epoch, dead = mv.wire() if mv is not None else (0, ())
        payload = msg.IndexPullMsg(have, seq, epoch, dead)
        self.srv_comm.send(payload, owner, tag=0)
        try:
            reply = self._await_reply(owner, payload, seq)
        except RemoteTimeoutError:
            return False
        assert isinstance(reply, msg.IndexPullReply)
        self.stats.index_pulls += 1
        mv = self.membership
        if mv is not None:
            mv.merge(reply.epoch, reply.dead)
            mv.heard_from(owner, self.clock.now)
        return self._install_index_view(
            owner, reply.owner_dir, reply.newest_ssid, reply.ssids,
            reply.bundles, reply.mem_clean, reply.quarantine_free,
        )

    def _search_bundles(self, view: _PeerIndexView, key: bytes,
                        t: float) -> Tuple[Optional[Record], float]:
        """PR 5 gate order over replicated metadata, newest-SSID first.

        Fences and bloom are free (the bundle pre-populated them); only
        the data probe touches the owner's NVM, through the shared
        block cache.  A bundle the view names but the LRU evicted
        raises :class:`MetadataStaleError` — the caller re-pulls just
        the missing bundles via ``have``.
        """
        for ssid in sorted(view.ssids, reverse=True):
            with self._index_lock:
                annotate_read(self, "db.index_cache")
                reader = self._index_bundles.get((view.owner_dir, ssid))
            if reader is None:
                raise MetadataStaleError(
                    f"no replicated metadata for {view.owner_dir}/{ssid}"
                )
            if self.options.fence_pruning:
                fences, t = reader.key_range(t)
                if fences is not None:
                    mn, mx = fences
                    if not mx or key < mn or key > mx:
                        self.stats.fence_skips += 1
                        continue
            if self.options.bloom_enabled:
                hit, t = reader.may_contain(key, t)
                if not hit:
                    self.stats.bloom_skips += 1
                    continue
            rec, t = reader.get(
                key, t, binary_search=self.binary_search, use_bloom=False,
            )
            if rec is not None:
                return rec, t
        return None, t

    def _index_replicated_get(self, owner: int, key: bytes):
        """Resolve a remote get one-sidedly from replicated metadata.

        The full sequence: validate the cached view with the newest-ssid
        handshake (a free directory listing must match the view's table
        set, the epoch must be current, the owner's memory clean), walk
        the bundles through the gate order, and issue direct data reads
        against the owner's NVM.  Any staleness re-pulls and retries
        once; anything else returns ``_INDEX_FALLBACK`` and the caller
        takes the handler round trip.  Returns a :class:`GetResult`,
        ``None`` (definitively absent/deleted), or ``_INDEX_FALLBACK``.
        """
        mv = self.membership
        pulled = False
        for _attempt in range(2):
            view = self._index_view_of(owner)
            if view is not None:
                epoch_ok = mv is None or view.epoch >= mv.epoch
                fresh = epoch_ok and (
                    tuple(list_ssids(self.store, view.owner_dir))
                    == view.ssids
                )
            if view is None or not fresh:
                if view is not None:
                    self.stats.index_repl_stale += 1
                    self._drop_index_view(owner)
                if pulled:
                    break
                self.stats.index_repl_misses += 1
                if not self._index_pull(owner):
                    break
                pulled = True
                continue
            if not (view.mem_clean and view.quarantine_free):
                break  # owner-side state only its handler can see
            try:
                rec, t_end = self._search_bundles(view, key, self.clock.now)
            except (MetadataStaleError, StorageError) as exc:
                # an evicted bundle, or a direct read racing the owner's
                # compaction (file gone): drop, re-pull, retry once
                self.stats.index_repl_stale += 1
                if isinstance(exc, StorageError) and not isinstance(
                        exc, MetadataStaleError):
                    self._drop_peer_cache(owner, view.owner_dir)
                else:
                    self._drop_index_view(owner)
                if pulled:
                    break
                self.stats.index_repl_misses += 1
                if not self._index_pull(owner):
                    break
                pulled = True
                continue
            except CorruptionError:
                break  # owner's data failed its CRC: let the owner judge
            self.clock.advance_to(t_end)
            self.stats.index_repl_hits += 1
            if rec is None or rec.tombstone:
                return None
            return GetResult(rec.value, "index_sstable")
        self.stats.index_repl_fallbacks += 1
        return _INDEX_FALLBACK

    def _read_bundle_blobs(self, ssids, t: float
                           ) -> Tuple[Dict[int, bytes], float]:
        """Read my own sidecar files and frame them as bundles (owner
        side of pull/publish).  Raises StorageError if a table vanished
        (caller re-snapshots)."""
        bundles: Dict[int, bytes] = {}
        for ssid in ssids:
            _, index_name, bloom_name = sstable_filenames(ssid)
            index_blob, t = self.store.read(
                f"{self.rank_dir}/{index_name}", t
            )
            bloom_blob, t = self.store.read(
                f"{self.rank_dir}/{bloom_name}", t
            )
            bundles[ssid] = encode_meta_bundle(ssid, index_blob, bloom_blob)
        return bundles, t

    def _index_publish_due(self, ssids: List[int]) -> None:
        """Record freshly retired tables for the next eager publish
        (call under db.state; flush may run on the handler thread)."""
        if (self.options.index_replication
                and self.options.index_push_eager
                and self.membership is not None):
            self._index_pub_due.extend(ssids)

    def _drain_index_publishes(self) -> None:
        """Eagerly push fresh bundles to my replica group (main thread).

        Fire-and-forget: installation is idempotent and a lost publish
        only costs the receiver a lazy pull.  Runs from ``_tick`` so it
        never sends while a lock is held and never runs on the handler
        thread.
        """
        with self._lock:
            due, self._index_pub_due = self._index_pub_due, []
        if not due:
            return
        mv = self.membership
        if mv is None:
            return
        targets = [
            r for r in (
                (self.rank + i) % self.nranks
                for i in range(1, self.options.replicas)
            )
            if r != self.rank and not mv.is_dead(r)
        ]
        if not targets:
            return
        with self._lock:
            self._retire_flushed(self.clock.now)
            ssids = tuple(self.ssids)
            newest = ssids[-1] if ssids else 0
            mem_clean = len(self.local_mt) == 0
            annotate_read(self, "db.quarantined")
            quarantine_free = not self._quarantined
        fresh = [s for s in dict.fromkeys(due) if s in set(ssids)]
        try:
            bundles, t_end = self._read_bundle_blobs(fresh, self.clock.now)
        except StorageError:
            return  # raced my own compaction; the retired ssid is moot
        self.clock.advance_to(t_end)
        epoch, dead = mv.wire()
        for target in targets:
            seq = self._next_seq
            self._next_seq += self.nranks
            self.srv_comm.send(
                msg.IndexPublishMsg(
                    self.rank_dir, newest, ssids, bundles, mem_clean,
                    quarantine_free, seq, epoch, dead,
                ),
                target, tag=0,
            )
            self.stats.index_publishes += 1

    # ======================================================== BULK PIPELINE
    def put_bulk(self, items) -> int:
        """Deprecated: use :meth:`batch` — the one write surface.

        ``put_bulk(items)`` is equivalent to::

            with db.batch() as b:
                for key, value in items:
                    b.put(key, value)

        ``items`` is a mapping or an iterable of ``(key, value)`` pairs;
        duplicate keys within one call resolve last-write-wins.  Returns
        the number of distinct keys written.
        """
        warnings.warn(
            "Database.put_bulk() is deprecated; use "
            "`with db.batch() as b: b.put(key, value)` instead",
            DeprecationWarning, stacklevel=2,
        )
        if isinstance(items, dict):
            items = items.items()
        with self.batch() as b:
            for key, value in items:
                b.put(key, value)
        return b.written

    def delete_bulk(self, keys) -> int:
        """Deprecated: use :meth:`batch` with ``b.delete(key)``."""
        warnings.warn(
            "Database.delete_bulk() is deprecated; use "
            "`with db.batch() as b: b.delete(key)` instead",
            DeprecationWarning, stacklevel=2,
        )
        with self.batch() as b:
            for key in keys:
                b.delete(key)
        return b.written

    def _write_bulk(self, ops: List[Tuple[bytes, bytes, bool]]) -> int:
        """The shared engine of put_bulk/delete_bulk/WriteBatch."""
        self._check_open()
        self._maybe_kill()
        if self.protection == config.RDONLY:
            raise ProtectionError("database is read-only (PAPYRUSKV_RDONLY)")
        if not ops:
            return 0
        t_start = self.clock.now
        # last-write-wins within the batch: only each key's final op lands
        final: Dict[bytes, Tuple[bytes, bool]] = {}
        for key, value, tomb in ops:
            final[key] = (value, tomb)
        cpu = self.ctx.system.cpu
        nbytes = sum(len(k) + len(v) for k, (v, _) in final.items())
        # per-key CPU work remains; the per-call dispatch overhead
        # (DRAM round trip) is paid once for the whole batch
        self.clock.advance(
            cpu.kv_op_s * len(final) + cpu.dram_latency_s
            + nbytes / self._memcpy_Bps
        )
        self._drain_acks(blocking=False)
        if (self.options.group_commit_interval > 0
                and self.options.group_commit_bytes > 0):
            # a bulk batch *is* one commit window: one durability charge
            # and one ack drain amortized over every key in it
            self.stats.group_commits += 1
            self.stats.group_commit_coalesced += len(final) - 1
        if self._replication_on:
            # replicated bulk write: fan every pair first (scatter), then
            # gather the quorums — all the owners' handlers apply batches
            # while this rank is still collecting acks
            self._tick()
            debts: List[Tuple[List[int], int]] = []
            for key, (value, tomb) in final.items():
                self.stats.puts += 1
                if tomb:
                    self.stats.deletes += 1
                debts.append(self._put_replicated(key, value, tomb))
            for seqs, need in debts:
                self._await_quorum(seqs, need)
            self.stats.bulk_batches += 1
            self.stats.bulk_keys += len(final)
            self.latency.observe("put_bulk", self.clock.now - t_start)
            self._trace(f"put_bulk({len(final)})", "main", t_start,
                        self.clock.now)
            return len(final)
        # single-pass partition by owner rank
        local: List[Tuple[bytes, bytes, bool]] = []
        remote: Dict[int, List[msg.Pair]] = {}
        for key, (value, tomb) in final.items():
            self.stats.puts += 1
            if tomb:
                self.stats.deletes += 1
            owner = self.owner_of(key)
            if owner == self.rank:
                self.stats.local_puts += 1
                local.append((key, value, tomb))
            else:
                self.stats.remote_puts += 1
                remote.setdefault(owner, []).append((key, value, tomb))
        imm: Optional[MemTable] = None
        with self._lock:  # one acquisition for every local/staged insert
            for key, value, tomb in local:
                self.local_mt.put(key, value, tomb)
                if (self.local_cache is not None
                        and self.protection != config.WRONLY):
                    self.local_cache.invalidate(key)
                if self.local_mt.full:
                    self._rotate_local(self.clock)
            if remote and self.consistency == config.RELAXED:
                for owner, pairs in remote.items():
                    for key, value, tomb in pairs:
                        self.remote_mt.put(key, value, tomb, owner)
                if self.remote_mt.full:
                    imm = self._swap_remote_mt()
        if imm is not None:
            self._migrate(imm)
        if remote and self.consistency == config.SEQUENTIAL:
            self._put_sync_bulk(remote)
        self.stats.bulk_batches += 1
        self.stats.bulk_keys += len(final)
        self.latency.observe("put_bulk", self.clock.now - t_start)
        self._trace(f"put_bulk({len(final)})", "main", t_start,
                    self.clock.now)
        return len(final)

    def _put_sync_bulk(self, groups: Dict[int, List[msg.Pair]]) -> None:
        """Sequential mode: one synchronous round per owner, not per key.

        All per-owner batches scatter first (fan-out), then the acks
        gather, so the owners' handlers service the batches in parallel.
        """
        seqs: Dict[int, int] = {}
        payloads: Dict[int, msg.PutSyncBatchMsg] = {}
        for owner in sorted(groups):
            seq = self._next_seq
            self._next_seq += self.nranks
            seqs[owner] = seq
            payloads[owner] = msg.PutSyncBatchMsg(groups[owner], seq)
        self.srv_comm.fanout(payloads, tag=0)
        self.stats.bulk_owner_msgs += len(payloads)
        for owner in sorted(groups):
            reply = self._await_reply(owner, payloads[owner], seqs[owner])
            assert isinstance(reply, msg.AckMsg) and reply.seq == seqs[owner]

    def get_bulk(self, keys) -> List[Optional[bytes]]:
        """Fetch many keys; values come back in caller order (None=absent).

        Keys are partitioned by owner in one pass; local keys resolve
        through the memory/cache tiers under a single lock acquisition
        (SSTable misses after), remote keys pipeline as one
        :class:`~repro.core.messages.MGetMsg` per owner — scattered to
        every owner before any reply is awaited — with the cache and
        bloom tiers consulted per key on both sides.
        """
        self._check_open()
        self._maybe_kill()
        if self.protection == config.WRONLY:
            raise ProtectionError("database is write-only (PAPYRUSKV_WRONLY)")
        norm: List[bytes] = []
        for key in keys:
            self._validate_kv(key, None)
            norm.append(bytes(key))
        keys = norm
        if not keys:
            return []
        t_start = self.clock.now
        # duplicate keys in one batch resolve with a single lookup
        index_of: Dict[bytes, List[int]] = {}
        for i, key in enumerate(keys):
            index_of.setdefault(key, []).append(i)
        cpu = self.ctx.system.cpu
        self.clock.advance(
            cpu.kv_op_s * len(index_of) + cpu.dram_latency_s
            + sum(len(k) for k in index_of) / self._memcpy_Bps
        )
        self._drain_acks(blocking=False)
        self.stats.gets += len(index_of)
        if self._replication_on:
            # replicated reads go through the per-key failover path: the
            # group routing (and its paranoia read after a death) cannot
            # be expressed as one MGET per hash owner
            self._tick()
            found_r: Dict[bytes, Optional[bytes]] = {}
            for key in index_of:
                r = self._replicated_get(key)
                if r is None:
                    found_r[key] = None
                else:
                    found_r[key] = r.value
                    self.stats.hit(r.tier)
            results_r: List[Optional[bytes]] = [None] * len(keys)
            for key, value in found_r.items():
                for i in index_of[key]:
                    results_r[i] = value
            self.stats.bulk_batches += 1
            self.stats.bulk_keys += len(index_of)
            self.latency.observe("get_bulk", self.clock.now - t_start)
            self._trace(f"get_bulk({len(index_of)})", "main", t_start,
                        self.clock.now)
            return results_r
        local_keys: List[bytes] = []
        remote: Dict[int, List[bytes]] = {}
        for key in index_of:
            owner = self.owner_of(key)
            if owner == self.rank:
                self.stats.local_gets += 1
                local_keys.append(key)
            else:
                self.stats.remote_gets += 1
                remote.setdefault(owner, []).append(key)
        found: Dict[bytes, Optional[bytes]] = {}
        if local_keys:
            found.update(self._local_get_many(local_keys))
        if remote:
            found.update(self._remote_get_many(remote))
        results: List[Optional[bytes]] = [None] * len(keys)
        for key, value in found.items():
            for i in index_of[key]:
                results[i] = value
        self.stats.bulk_batches += 1
        self.stats.bulk_keys += len(index_of)
        self.latency.observe("get_bulk", self.clock.now - t_start)
        self._trace(f"get_bulk({len(index_of)})", "main", t_start,
                    self.clock.now)
        return results

    def _local_get_many(self, keys: List[bytes]
                        ) -> Dict[bytes, Optional[bytes]]:
        """Bulk local lookups: memory tiers under one lock, SSTables after."""
        out: Dict[bytes, Optional[bytes]] = {}
        misses: List[bytes] = []
        with self._lock:
            self._retire_flushed(self.clock.now)
            cache_on = (self.local_cache is not None
                        and self.protection != config.WRONLY)
            for key in keys:
                entry, tier = self._search_memory_local(key)
                if entry is not None:
                    out[key] = None if entry.tombstone else entry.value
                    self.stats.hit(tier)
                    continue
                if cache_on:
                    cached = self.local_cache.get(key)
                    if cached is not None:
                        out[key] = cached
                        self.stats.hit("local_cache")
                        continue
                misses.append(key)
            ssids = list(self.ssids)
        for key in misses:
            rec = self._sstable_lookup(ssids, key)
            if rec is None or rec.tombstone:
                out[key] = None
                continue
            out[key] = rec.value
            self.stats.hit("sstable")
            with self._lock:
                if (self.local_cache is not None
                        and self.protection != config.WRONLY):
                    self.local_cache.put(key, rec.value)
        return out

    def _remote_get_many(self, groups: Dict[int, List[bytes]]
                         ) -> Dict[bytes, Optional[bytes]]:
        """Bulk remote lookups: staged tiers, then one MGET per owner."""
        out: Dict[bytes, Optional[bytes]] = {}
        need: Dict[int, List[bytes]] = {}
        with self._lock:  # staged/unacked tiers under one acquisition
            for owner, keys in groups.items():
                for key in keys:
                    entry, tier = self._search_memory_remote(key)
                    if entry is not None:
                        out[key] = None if entry.tombstone else entry.value
                        self.stats.hit(tier)
                    else:
                        need.setdefault(owner, []).append(key)
        remote_cache_on = self.protection == config.RDONLY
        if remote_cache_on:
            for owner in list(need):
                still: List[bytes] = []
                for key in need[owner]:
                    cached = self.remote_cache.get(key)
                    if cached is not None:
                        out[key] = cached
                        self.stats.hit("remote_cache")
                    else:
                        still.append(key)
                if still:
                    need[owner] = still
                else:
                    del need[owner]
        if not need:
            return out
        # resolve whole owners one-sidedly first: a cross-group owner
        # with a fresh replicated index costs zero handler messages
        if self.options.index_replication:
            for owner in sorted(need):
                if not self._index_direct_eligible(owner):
                    continue
                still2: List[bytes] = []
                for key in need[owner]:
                    res = self._index_replicated_get(owner, key)
                    if res is _INDEX_FALLBACK:
                        still2.append(key)
                        continue
                    if res is None:
                        out[key] = None
                        continue
                    out[key] = res.value
                    if remote_cache_on:
                        self.remote_cache.put(key, res.value)
                    self.stats.hit("index_sstable")
                if still2:
                    need[owner] = still2
                else:
                    del need[owner]
            if not need:
                return out
        # scatter one multi-get per owner, then gather the replies —
        # every owner's handler works while we are still collecting
        seqs: Dict[int, int] = {}
        payloads: Dict[int, msg.MGetMsg] = {}
        for owner in sorted(need):
            seq = self._next_seq
            self._next_seq += self.nranks
            seqs[owner] = seq
            payloads[owner] = msg.MGetMsg(need[owner], self.group, seq)
        self.srv_comm.fanout(payloads, tag=0)
        self.stats.bulk_owner_msgs += len(payloads)
        for owner in sorted(need):
            reply = self._await_reply(owner, payloads[owner], seqs[owner])
            assert isinstance(reply, msg.MGetReply)
            for key, (status, value, tombstone) in zip(
                need[owner], reply.results
            ):
                if status == msg.FOUND:
                    if tombstone:
                        out[key] = None
                        continue
                    out[key] = value or b""
                    if remote_cache_on and value is not None:
                        self.remote_cache.put(key, value)
                    self.stats.hit("remote")
                elif status == msg.NOT_FOUND:
                    out[key] = None
                elif status == msg.DEGRADED:
                    raise CorruptionError(
                        f"owner rank {owner} has quarantined the range "
                        f"covering key {key!r}"
                    )
                else:  # NOT_IN_MEMORY: read the shared SSTables myself
                    out[key] = self._shared_get_fallback(owner, key, reply)
        return out

    def _shared_get_fallback(self, owner: int, key: bytes,
                             reply) -> Optional[bytes]:
        """Resolve one NOT_IN_MEMORY multi-get key via shared NVM (§2.7)."""
        remote_cache_on = self.protection == config.RDONLY
        try:
            rec, t_end = self._shared_sstable_get(owner, key, reply)
        except StorageError:
            # raced the owner's compaction: drop every cached view of its
            # tables and force the value over the network instead
            self._drop_peer_cache(
                owner, reply.owner_dir or f"{self.dbdir}/rank{owner}"
            )
            single = self._request_get(owner, key, force=True)
            if single.status == msg.FOUND and not single.tombstone:
                value = single.value or b""
                if remote_cache_on and single.value is not None:
                    self.remote_cache.put(key, value)
                self.stats.hit("remote")
                return value
            return None
        self.clock.advance_to(t_end)
        if rec is None or rec.tombstone:
            return None
        if remote_cache_on:
            self.remote_cache.put(key, rec.value)
        self.stats.hit("shared_sstable")
        return rec.value

    def shares_storage_with(self, other_rank: int) -> bool:
        """True when ``other_rank`` can read this rank's SSTable files."""
        return (
            self.layout.group_of(other_rank) == self.group
            and (
                self.options.repository == "lustre"
                or self.ctx.machine.shares_nvm(self.rank, other_rank)
            )
        )

    # ==================================================== CONSISTENCY CONTROL
    def fence(self) -> None:
        """Migrate the remote MemTable immediately (``papyruskv_fence``).

        Under replication the fence additionally settles every deferred
        write-quorum debt: once it returns, all fanned-out replica puts
        are durably logged on every live group member.
        """
        self._check_open()
        with self._lock:
            imm = self._swap_remote_mt() if len(self.remote_mt) else None
        if imm is not None:
            self._migrate(imm)
        self._drain_acks(blocking=True)
        self._quorum_due = []  # drained above: no pending acks remain
        # visibility boundary: pairs I just migrated live in their
        # owners' MemTables, which a one-sided read cannot see — every
        # cached index view must stop claiming the owner's memory is
        # clean until a re-pull proves it again
        if self.options.index_replication:
            self._index_mark_all_dirty()

    def barrier(self, level: int = config.MEMTABLE) -> None:
        """Collective fence (+ SSTable flush at ``SSTABLE`` level)."""
        self._check_open()
        self.fence()
        self.coll_comm.barrier()  # all migrations sent & acked everywhere
        if level == config.SSTABLE:
            self.flush()
        self.coll_comm.barrier()

    def _flush_tail(self) -> float:
        """Virtual time at which every enqueued flush is durable."""
        if self.options.flush_pipeline:
            return max(self.flush_build_worker.available,
                       self.flush_sync_worker.available)
        return self.compaction_worker.available

    def flush(self, wait: bool = True) -> None:
        """Flush the local MemTable to SSTables (``papyruskv_flush``).

        Rotates a non-empty local MemTable into the flush pipeline.
        With ``wait=True`` (the default, matching the old
        ``flush_sstables`` semantics) the call blocks — virtually —
        until the pipeline tail is durable: every enqueued table has
        passed its build *and* sync stages.  ``wait=False`` just
        enqueues and returns, letting the pipeline drain in the
        background.  Neither form waits for compaction; :meth:`close`
        does.
        """
        with self._lock:
            if len(self.local_mt):
                self._rotate_local(self.clock)
            if wait:
                self.clock.advance_to(self._flush_tail())
                self._retire_flushed(self.clock.now)

    def flush_sstables(self) -> None:
        """Deprecated alias of :meth:`flush` (blocking form)."""
        warnings.warn(
            "Database.flush_sstables() is deprecated; use db.flush() "
            "(or db.flush(wait=False) to enqueue without blocking)",
            DeprecationWarning, stacklevel=2,
        )
        self.flush()

    def set_consistency(self, mode: int) -> None:
        """Collective: switch relaxed ↔ sequential (``papyruskv_consistency``)."""
        self._check_open()
        if mode not in (config.RELAXED, config.SEQUENTIAL):
            raise InvalidModeError(f"unknown consistency mode {mode}")
        # entering sequential requires the relaxed backlog to be visible
        self.fence()
        self.coll_comm.barrier()
        self.consistency = mode

    def protect(self, prot: int) -> None:
        """Collective: set the protection attribute (``papyruskv_protect``)."""
        self._check_open()
        if prot not in (config.RDWR, config.WRONLY, config.RDONLY):
            raise InvalidProtectionError(f"unknown protection {prot}")
        self.fence()
        self.coll_comm.barrier()
        with self._lock:
            if prot == config.WRONLY and self.local_cache is not None:
                # invalidate all entries and disable the cache (§3.2)
                self.local_cache.clear()
            if prot != config.RDONLY:
                # leaving read-only: remote cache contents become unsafe
                self.remote_cache.clear()
            self.protection = prot
        self.coll_comm.barrier()

    # =================================================================== SCAN
    def scan(self, start: Optional[bytes] = None,
             end: Optional[bytes] = None,
             include_replicas: bool = False,
             keys_only: bool = False) -> "ScanIterator":
        """Lazy snapshot-consistent iterator over this rank's shard.

        Yields sorted live ``(key, value)`` pairs with ``start <= key <
        end``, merging the MemTable tiers and SSTables newest-first
        with tombstone shadowing — an LSM iterator, extension beyond
        the paper's Table 1.  SSTable selection is gated quarantine →
        footer fences → SSIndex bracketing, and only the overlapping
        SSData blocks are read (through the shared block cache, at low
        priority), so a narrow window costs O(window), not O(shard).

        The iterator pins its SSID horizon at open: flush/compaction
        retiring a table mid-iteration defers the file unlink until the
        scan closes, so writes may continue while iterating (they land
        after the snapshot).  Exhaustion closes it automatically;
        abandon one early under ``with`` or via ``.close()``.

        ``keys_only=True`` yields ``(key, b"")`` without reading value
        bytes.  Under replication only acting-primary keys are yielded
        unless ``include_replicas=True``.
        """
        self._check_open()
        if self.protection == config.WRONLY:
            raise ProtectionError("database is write-only (PAPYRUSKV_WRONLY)")
        from repro.core.scan import ScanIterator

        return ScanIterator(self, start, end,
                            include_replicas=include_replicas,
                            keys_only=keys_only)

    def scan_local(self, start: Optional[bytes] = None,
                   end: Optional[bytes] = None,
                   include_replicas: bool = False
                   ) -> List[Tuple[bytes, bytes]]:
        """Sorted live pairs of this rank's shard within ``[start, end)``.

        Materializing wrapper over :meth:`scan` (which is the lazy,
        streaming form).  See :mod:`repro.core.scan`.  Under
        replication only keys this rank is acting primary for are
        returned (each key appears on exactly one rank's scan);
        ``include_replicas=True`` returns every pair physically held.
        """
        with self.scan(start, end, include_replicas=include_replicas) as it:
            return list(it)

    def scan_global(self, start: Optional[bytes] = None,
                    end: Optional[bytes] = None,
                    chunk: Optional[int] = None,
                    limit: Optional[int] = None
                    ) -> Iterator[Tuple[bytes, bytes]]:
        """Collective: stream globally sorted live pairs across ranks.

        A windowed owner-ordered merge: each rank walks its own lazy
        :meth:`scan` and broadcasts in-range chunks of ``chunk`` pairs
        (default ``Options.scan_chunk``) on demand; every rank merges
        behind a *watermark* — a pair is emitted once its key is ≤ the
        smallest last-received key over the streams that still have
        data, which is exactly when no later chunk can precede it.
        Each round pulls only from the stream(s) *at* the watermark
        (streams already ahead of it would only grow the buffer), and
        a drained stream drops out entirely, so peak extra memory is
        O(in-flight result + nranks × chunk) pairs regardless of how
        keys skew across owners — never a shard materialization
        (``stats.scan_peak_buffered`` records the high-water mark).

        ``limit`` short-circuits after that many pairs (YCSB-E "next N
        keys"): no further chunks are pulled from any rank once the
        limit is met.  All ranks see the identical stream and must
        consume it identically — like any collective, stopping early on
        a subset of ranks (other than via a shared ``limit``) is a
        protocol error.  Call a barrier (or use sequential consistency)
        first if writes are in flight.
        """
        self._check_open()
        if chunk is None:
            chunk = self.options.scan_chunk
        if chunk <= 0:
            raise InvalidOptionError(f"scan chunk must be positive: {chunk}")
        if limit is not None and limit <= 0:
            return iter(())  # nothing to pull; symmetric on every rank
        return self._scan_global_gen(start, end, chunk, limit)

    def _scan_global_gen(self, start: Optional[bytes], end: Optional[bytes],
                         chunk: int, limit: Optional[int]
                         ) -> Iterator[Tuple[bytes, bytes]]:
        it = self.scan(start, end)
        try:
            done = [False] * self.nranks
            last_key: List[Optional[bytes]] = [None] * self.nranks
            pending: List[Tuple[bytes, bytes]] = []  # min-heap on key
            emitted = 0
            while not all(done):
                # pull only from the stream(s) constraining the
                # watermark (plus any not yet primed): streams already
                # ahead of it would only grow the merge buffer, and
                # skipping them is what makes the peak O(nranks x
                # chunk) regardless of how keys skew across owners.
                # Replicated state, so every rank picks the same roots.
                alive = [r for r in range(self.nranks) if not done[r]]
                need = [r for r in alive if last_key[r] is None]
                if not need:
                    lowest = min(last_key[r] for r in alive)  # type: ignore
                    need = [r for r in alive if last_key[r] == lowest]
                for r in need:
                    if r == self.rank:
                        part = list(islice(it, chunk))
                        payload: Optional[Tuple[List[Tuple[bytes, bytes]],
                                                bool]] = (
                            part, len(part) < chunk
                        )
                        if part:
                            self.stats.scan_chunks_shipped += 1
                    else:
                        payload = None
                    got = self.coll_comm.bcast(payload, root=r)
                    part, exhausted = got  # type: ignore[misc]
                    if exhausted:
                        done[r] = True
                    if part:
                        last_key[r] = part[-1][0]
                        for kv in part:
                            heapq.heappush(pending, kv)
                if len(pending) > self.stats.scan_peak_buffered:
                    self.stats.scan_peak_buffered = len(pending)
                unfinished = [
                    r for r in range(self.nranks) if not done[r]
                ]
                if unfinished:
                    # keys within a stream strictly ascend, so no future
                    # chunk can deliver a key ≤ this watermark
                    wm = min(last_key[r] for r in unfinished)  # type: ignore
                    while pending and pending[0][0] <= wm:
                        yield heapq.heappop(pending)
                        emitted += 1
                        if limit is not None and emitted >= limit:
                            return
                else:
                    while pending:
                        yield heapq.heappop(pending)
                        emitted += 1
                        if limit is not None and emitted >= limit:
                            return
        finally:
            it.close()

    def scan_collect(self, start: Optional[bytes] = None,
                     end: Optional[bytes] = None,
                     chunk: int = 1024) -> List[Tuple[bytes, bytes]]:
        """Collective: globally sorted live pairs across all ranks.

        Thin materializing wrapper over :meth:`scan_global` — all ranks
        receive the same list.
        """
        return list(self.scan_global(start, end, chunk=chunk))

    def count_local(self) -> int:
        """Number of live keys in this rank's shard.

        Streams a keys-only scan: tombstones are resolved without
        copying a single value byte or materializing the merge.
        """
        from repro.core.scan import count_live

        return count_live(self)

    # ============================================================ PERSISTENCE
    def snapshot_file_list(self) -> List[str]:
        """Relative paths of this rank's SSTable files (post-flush)."""
        out: List[str] = []
        for ssid in self._ssids_snapshot():
            reader = SSTableReader(self.store, self.rank_dir, ssid)
            out.extend(reader.file_paths())
        return out

    # ============================================================== SCRUBBING
    def verify(self, checkpoint_path: Optional[str] = None,
               repair: bool = True) -> Dict[str, List[int]]:
        """Scrub this rank's SSTables; repair damage via the recovery ladder.

        Every retained table is fully checked (sizes, per-block CRCs,
        index and bloom checksums, record/index agreement).  A table
        that fails is repaired by climbing the ladder: re-read locally
        (transient device faults), fetch from a storage-group peer,
        restore from the newest complete checkpoint generation (the
        ``checkpoint_path`` argument, or the last path this database
        checkpointed to).  A table no rung can save is quarantined and
        its key range degrades to :class:`CorruptionError` on access.

        Returns ``{"ok": [...], "rebuilt": [...], "quarantined": [...]}``
        (SSIDs per outcome).
        """
        self._check_open()
        report: Dict[str, List[int]] = {"ok": [], "rebuilt": [],
                                        "quarantined": []}
        with self._lock:
            ssids = list(self.ssids)
        for ssid in ssids:
            if self._table_verifies(ssid):
                report["ok"].append(ssid)
                continue
            self.stats.corruptions_detected += 1
            if repair and self._repair_table(ssid, checkpoint_path):
                self.stats.tables_rebuilt += 1
                report["rebuilt"].append(ssid)
            else:
                self._quarantine_table(ssid, "failed verification and repair")
                report["quarantined"].append(ssid)
        return report

    #: alias: ``db.scrub()`` reads like the maintenance operation it is
    scrub = verify

    def _table_verifies(self, ssid: int) -> bool:
        """Full check of one table with a fresh reader (no cached state)."""
        try:
            t = SSTableReader(self.store, self.rank_dir, ssid).verify(
                self.clock.now
            )
        except StorageError:
            return False
        self.clock.advance_to(t)
        self._invalidate_readers(ssid)  # drop any poisoned cached view
        return True

    def _repair_table(self, ssid: int,
                      checkpoint_path: Optional[str]) -> bool:
        """Climb the recovery ladder for one damaged table."""
        # rung 1: one local re-read — transient device faults heal here
        if self._table_verifies(ssid):
            return True
        # rung 2: a storage-group peer ships the files through its own path
        if self._fetch_table_from_peer(ssid):
            return True
        # rung 3: restore from the newest complete checkpoint generation
        path = checkpoint_path or self._last_checkpoint_path
        if path is not None:
            from repro.core.checkpoint import restore_table_blobs

            blobs = restore_table_blobs(self, path, ssid)
            if blobs is not None and self._install_table_blobs(ssid, blobs):
                return True
        return False

    def _fetch_table_from_peer(self, ssid: int) -> bool:
        """Ask each storage-group peer to ship the table's three files."""
        peers = [r for r in range(self.nranks)
                 if r != self.rank and self.shares_storage_with(r)]
        for peer in peers:
            seq = self._next_seq
            self._next_seq += self.nranks
            payload = msg.FetchTableMsg(self.rank_dir, ssid, seq)
            self.srv_comm.send(payload, peer, tag=0)
            try:
                reply = self._await_reply(peer, payload, seq)
            except RemoteTimeoutError:
                continue
            if not isinstance(reply, msg.FetchTableReply) or not reply.blobs:
                continue
            if self._install_table_blobs(ssid, reply.blobs):
                return True
        return False

    def _install_table_blobs(self, ssid: int, blobs: Dict[str, bytes]) -> bool:
        """Atomically rewrite a table from shipped blobs, then re-verify."""
        names = sstable_filenames(ssid)
        if not all(name in blobs for name in names):
            return False
        t = self.clock.now
        for name in names:
            t = self.store.write(f"{self.rank_dir}/{name}", blobs[name], t)
        self.clock.advance_to(t)
        return self._table_verifies(ssid)

    def checkpoint(self, path: str):
        """Asynchronous snapshot to the parallel FS (``papyruskv_checkpoint``)."""
        from repro.core.checkpoint import checkpoint

        result = checkpoint(self, path)
        self._last_checkpoint_path = path
        return result

    def destroy(self):
        """Remove the database and all its data from NVM (async)."""
        from repro.core.checkpoint import destroy

        return destroy(self)

    def metrics(self) -> Dict[str, object]:
        """Counter snapshot (:func:`repro.metrics.database_metrics`):
        op/tier stats, `fence_skips`/`bloom_skips`, the `block_cache`
        block when the cache is enabled."""
        from repro.metrics import database_metrics

        return database_metrics(self)

    # ================================================================== CLOSE
    def close(self) -> None:
        """Collective close: quiesce, flush, stop the handler."""
        if self._closed:
            return
        self.fence()
        self.coll_comm.barrier()
        self.flush()
        # compaction is not part of flush's contract; close drains it too
        self.clock.advance_to(self.compaction_worker.available)
        self.coll_comm.barrier()  # nobody issues remote ops past this point
        # stop my handler (self-send so it wakes from its recv)
        self.srv_comm.send(msg.StopMsg(), self.rank, tag=0)
        if self._handler_thread is not None:
            self._handler_thread.join(30.0)
            det = get_detector()
            if det is not None and not self._handler_thread.is_alive():
                det.absorb_thread(self._handler_thread)  # join HB edge
        self._closed = True
        self.coll_comm.barrier()
        self.env._forget(self.name)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._closed = True  # failing rank: skip collective close
            return
        if not self._closed:
            self.close()

    # ===================================================== PYTHONIC SUGAR
    def __setitem__(self, key: bytes, value: bytes) -> None:
        """``db[key] = value`` — sugar for :meth:`put`."""
        self.put(key, value)

    def __getitem__(self, key: bytes) -> bytes:
        """``db[key]`` — sugar for :meth:`get`.

        :class:`KeyNotFoundError` subclasses :class:`KeyError`, so the
        usual mapping idioms (``try/except KeyError``) apply.
        """
        return self.get(key)

    def __delitem__(self, key: bytes) -> None:
        """``del db[key]`` — sugar for :meth:`delete` (tombstone put).

        Like :meth:`delete`, deleting an absent key is not an error: an
        existence check would cost a (possibly remote) get.
        """
        self.delete(key)

    def __contains__(self, key: bytes) -> bool:
        """``key in db`` — a get that swallows NOT_FOUND."""
        return self.get_or_none(key) is not None

    def batch(self, durability: Optional[str] = None,
              max_bytes: Optional[int] = None) -> "WriteBatch":
        """The write surface: a context manager buffering mutations.

        ::

            with db.batch(durability="fence", max_bytes=1 << 20) as b:
                b[b"k1"] = b"v1"
                b.delete(b"k2")

        Buffered operations flush through the bulk pipeline (one
        migration batch per owner) whenever the payload reaches
        ``max_bytes`` and on clean exit; on exception nothing further is
        written.  ``durability`` picks the exit guarantee: ``"none"``
        (staged like plain puts), ``"fence"`` (remote writes acked by
        their owners), or ``"flush"`` (fence + local shard flushed to
        SSTables).  See :class:`WriteBatch`.
        """
        return WriteBatch(self, durability=durability, max_bytes=max_bytes)

    # ---------------------------------------------------------------- helpers
    def write_meta(self) -> None:
        """Persist database metadata (rank 0 only, on create)."""
        meta = {"name": self.name, "nranks": self.nranks}
        self.store.write(
            f"{self.dbdir}/meta.json", json.dumps(meta).encode(), self.clock.now
        )

    def read_meta(self) -> Optional[dict]:
        """Load the database metadata file, or None if absent."""
        if not self.store.exists(f"{self.dbdir}/meta.json"):
            return None
        blob, t = self.store.read(f"{self.dbdir}/meta.json", self.clock.now)
        self.clock.advance_to(t)
        return json.loads(blob.decode())
