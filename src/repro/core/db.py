"""The PapyrusKV database object.

One :class:`Database` instance exists per rank per open database.  Its
moving parts mirror Figure 2/3 of the paper:

* a mutable **local MemTable** receiving local puts, rotated into the
  flushing queue when full, flushed to SSTables by the background
  compaction worker;
* a mutable **remote MemTable** staging remote puts under relaxed
  consistency, rotated into the migration queue and shipped to owner
  ranks by the message dispatcher;
* **local/remote caches** (LRU) gated by the protection attribute;
* a per-rank sequence of **SSTables** searched newest-SSID-first with
  bloom-filter skipping and (optionally) binary search;
* a **message handler** thread serving migrations, synchronous puts and
  remote gets for this rank's shard.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import config
from repro.config import Options
from repro.errors import (
    DatabaseClosedError,
    InvalidModeError,
    InvalidProtectionError,
    KeyNotFoundError,
    InvalidKeyError,
    InvalidValueError,
    ProtectionError,
    StorageError,
)
from repro.core import messages as msg
from repro.core.memtable import Entry, MemTable
from repro.mpi.comm import ANY_SOURCE, Comm
from repro.nvm.posixfs import PosixStore
from repro.nvm.storage import StorageLayout
from repro.simtime.resources import BackgroundWorker
from repro.sstable.compaction import compact
from repro.sstable.format import Record
from repro.sstable.reader import SSTableReader, list_ssids
from repro.sstable.writer import write_sstable
from repro.util.hashing import owner_rank
from repro.util.lru import LRUCache

#: tag used on the ack comm for migration acknowledgements
ACK_TAG = 7


@dataclass
class GetResult:
    """A get outcome with provenance (which tier satisfied it)."""

    value: bytes
    tier: str  # local_mt | flushing | local_cache | sstable | remote_mt |
    #          inflight | remote_cache | remote | shared_sstable


@dataclass
class DbStats:
    """Operation counters (diagnostics and tests)."""

    puts: int = 0
    gets: int = 0
    deletes: int = 0
    local_puts: int = 0
    remote_puts: int = 0
    local_gets: int = 0
    remote_gets: int = 0
    flushes: int = 0
    compactions: int = 0
    migrations: int = 0
    #: bulk-pipeline counters: batches issued, keys carried by them, and
    #: per-owner runtime messages they produced (MGET + batched sync puts)
    bulk_batches: int = 0
    bulk_keys: int = 0
    bulk_owner_msgs: int = 0
    get_tiers: Dict[str, int] = field(default_factory=dict)

    def hit(self, tier: str) -> None:
        """Count a get satisfied by the named tier."""
        self.get_tiers[tier] = self.get_tiers.get(tier, 0) + 1


class WriteBatch:
    """Mutation buffer flushed through the bulk pipeline on exit.

    Created by :meth:`Database.batch`.  Operations are recorded in
    program order; within one batch the last operation on a key wins
    (the bulk pipeline's last-write-wins rule), which matches the
    outcome of the equivalent per-key sequence.
    """

    def __init__(self, db: "Database") -> None:
        self._db = db
        self._ops: List[Tuple[bytes, bytes, bool]] = []

    def put(self, key: bytes, value: bytes) -> None:
        """Buffer an insert/update."""
        self._db._validate_kv(key, value)
        self._ops.append((bytes(key), bytes(value), False))

    def delete(self, key: bytes) -> None:
        """Buffer a delete (tombstone put)."""
        self._db._validate_kv(key, None)
        self._ops.append((bytes(key), b"", True))

    def __setitem__(self, key: bytes, value: bytes) -> None:
        self.put(key, value)

    def __delitem__(self, key: bytes) -> None:
        self.delete(key)

    def __len__(self) -> int:
        return len(self._ops)

    def clear(self) -> None:
        """Drop every buffered operation without writing."""
        self._ops.clear()

    def flush(self) -> int:
        """Write the buffered operations now; returns keys written."""
        ops, self._ops = self._ops, []
        return self._db._write_bulk(ops)

    def __enter__(self) -> "WriteBatch":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.flush()


class Database:
    """Per-rank handle to one distributed PapyrusKV database.

    Construct via :meth:`repro.core.env.Papyrus.open` (collective), not
    directly.
    """

    def __init__(
        self,
        env,
        name: str,
        options: Options,
        srv_comm: Comm,
        rsp_comm: Comm,
        ack_comm: Comm,
        coll_comm: Comm,
        store: PosixStore,
    ) -> None:
        self.env = env
        self.ctx = env.ctx
        self.name = name
        self.options = options
        self.rank = self.ctx.world_rank
        self.nranks = self.ctx.nranks
        self.consistency = options.consistency
        self.protection = options.protection
        self.binary_search = options.binary_search
        self.hash_fn = options.hash_fn

        self.store = store
        self.dbdir = f"db_{name}"
        self.rank_dir = f"{self.dbdir}/rank{self.rank}"

        group_size = options.group_size or self.ctx.machine.default_group_size
        if options.repository == "lustre":
            # the parallel FS is visible to everyone: one big domain
            group_size = min(group_size, self.nranks)
        self.layout = StorageLayout(self.nranks, group_size)
        self.group = self.layout.group_of(self.rank)

        self.srv_comm = srv_comm
        self.rsp_comm = rsp_comm
        self.ack_comm = ack_comm
        self.coll_comm = coll_comm

        cpu = self.ctx.system.cpu
        self._op_cost = cpu.kv_op_s + cpu.dram_latency_s
        self._memcpy_Bps = cpu.memcpy_Bps

        self._lock = threading.RLock()
        self.local_mt = MemTable(options.memtable_capacity, "local")
        self.remote_mt = MemTable(options.remote_memtable_capacity, "remote")
        #: flushing queue: (immutable MemTable, virtual flush-completion time)
        self.flushing: List[Tuple[MemTable, float]] = []
        #: migrated-but-unacked chunks, newest last: (seq, {key: (val, tomb)})
        self.inflight: List[Tuple[int, Dict[bytes, Tuple[bytes, bool]]]] = []
        self._pending_acks: set = set()
        self._next_seq = self.rank + 1  # distinct across ranks for debugging

        self.ssids: List[int] = []
        self._next_ssid = 1
        self._readers: Dict[int, SSTableReader] = {}
        #: cached view of group peers' SSTable sets: owner -> (newest, ssids)
        self._peer_readers: Dict[int, Tuple[int, List[int]]] = {}
        #: reader objects per (owner, ssid) — SSTables are immutable, so
        #: these stay valid until the file disappears (compaction)
        self._peer_reader_cache: Dict[Tuple[int, int], SSTableReader] = {}

        self.local_cache: Optional[LRUCache] = (
            LRUCache(options.cache_local_capacity)
            if options.cache_local_enabled else None
        )
        self.remote_cache = LRUCache(options.cache_remote_capacity)

        self.compaction_worker = BackgroundWorker(f"compactor-r{self.rank}")
        self.dispatcher_worker = BackgroundWorker(f"dispatcher-r{self.rank}")

        self.stats = DbStats()
        from repro.core.latency import LatencyTracker

        self.latency = LatencyTracker()
        self._tracer = None
        self._closed = False
        self._handler_thread: Optional[threading.Thread] = None

        self.store.makedirs(self.rank_dir)
        self._load_existing_sstables()

    # ------------------------------------------------------------ lifecycle
    def _load_existing_sstables(self) -> None:
        """Zero-copy workflow: compose the DB from retained SSTables."""
        existing = list_ssids(self.store, self.rank_dir)
        if existing:
            self.ssids = existing
            self._next_ssid = existing[-1] + 1

    def _start_handler(self) -> None:
        from repro.core.handler import handler_main

        t = threading.Thread(
            target=handler_main, args=(self,),
            name=f"pkv-handler-{self.name}-r{self.rank}", daemon=True,
        )
        self._handler_thread = t
        t.start()

    def _check_open(self) -> None:
        if self._closed:
            raise DatabaseClosedError(f"database {self.name!r} is closed")

    @property
    def clock(self):
        return self.ctx.clock

    def attach_tracer(self, tracer) -> None:
        """Record operation spans into ``tracer`` (see repro.tools.trace)."""
        self._tracer = tracer

    def _trace(self, name: str, lane: str, t_start: float,
               t_end: float) -> None:
        if self._tracer is not None:
            self._tracer.record(name, self.rank, lane, t_start, t_end)

    # ------------------------------------------------------------ op charges
    def _charge_op(self, nbytes: int) -> None:
        self.clock.advance(self._op_cost + nbytes / self._memcpy_Bps)

    def _validate_kv(self, key: bytes, value: Optional[bytes]) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise InvalidKeyError("key must be a non-empty byte string")
        if value is not None and not isinstance(value, (bytes, bytearray)):
            raise InvalidValueError("value must be a byte string")

    def owner_of(self, key: bytes) -> int:
        """The rank owning ``key`` (hash % nranks, custom hash honoured)."""
        return owner_rank(bytes(key), self.nranks, self.hash_fn)

    # ============================================================ PUT / DELETE
    def put(self, key: bytes, value: bytes) -> None:
        """Insert or update a key-value pair (``papyruskv_put``)."""
        self._validate_kv(key, value)
        self._put_impl(bytes(key), bytes(value), tombstone=False)

    def delete(self, key: bytes) -> None:
        """Delete a key: a put with a tombstone bit (``papyruskv_delete``)."""
        self._validate_kv(key, None)
        self._put_impl(bytes(key), b"", tombstone=True)

    def _put_impl(self, key: bytes, value: bytes, tombstone: bool) -> None:
        self._check_open()
        if self.protection == config.RDONLY:
            raise ProtectionError("database is read-only (PAPYRUSKV_RDONLY)")
        self.stats.puts += 1
        if tombstone:
            self.stats.deletes += 1
        t_start = self.clock.now
        self._charge_op(len(key) + len(value))
        self._drain_acks(blocking=False)
        owner = self.owner_of(key)
        if owner == self.rank:
            self.stats.local_puts += 1
            self._local_insert(key, value, tombstone, self.clock)
        elif self.consistency == config.SEQUENTIAL:
            self.stats.remote_puts += 1
            self._put_sync(owner, key, value, tombstone)
        else:
            self.stats.remote_puts += 1
            self._remote_stage(owner, key, value, tombstone)
        self.latency.observe(
            "delete" if tombstone else "put", self.clock.now - t_start
        )
        self._trace("delete" if tombstone else "put", "main",
                    t_start, self.clock.now)

    def _local_insert(self, key: bytes, value: bytes, tombstone: bool,
                      clock) -> None:
        """Insert into the local MemTable (caller may be the handler)."""
        with self._lock:
            self.local_mt.put(key, value, tombstone)
            # a stale cache entry with the same key is evicted (Fig. 2)
            if self.local_cache is not None and self.protection != config.WRONLY:
                self.local_cache.invalidate(key)
            if self.local_mt.full:
                self._rotate_local(clock)

    def _rotate_local(self, clock) -> None:
        """Freeze the full local MemTable and enqueue it for flushing."""
        imm = self.local_mt.freeze()
        self.local_mt = MemTable(self.options.memtable_capacity, "local")
        self._enqueue_flush(imm, clock)

    def _enqueue_flush(self, imm: MemTable, clock) -> None:
        """Queue an immutable local MemTable; apply back-pressure if full."""
        if len(imm) == 0:
            return
        # back-pressure: block (virtually) until the oldest flush finishes
        while len(self.flushing) >= self.options.flush_queue_capacity:
            _, end = self.flushing[0]
            clock.advance_to(end)
            self._retire_flushed(clock.now)
            if self.flushing and self.flushing[0][1] > clock.now:
                break  # defensive; should not happen
        ssid = self._next_ssid
        self._next_ssid += 1
        records = imm.to_records()

        def job(start: float) -> float:
            _, end = write_sstable(
                self.store, self.rank_dir, ssid, records, start,
                self.options.bloom_fp_rate,
            )
            self._trace(f"flush ssid={ssid}", "compaction", start, end)
            return end

        end = self.compaction_worker.schedule(clock.now, job)
        self.ssids.append(ssid)
        self.flushing.append((imm, end))
        self.stats.flushes += 1
        self._retire_flushed(clock.now)
        interval = self.options.compaction_interval
        if interval and ssid % interval == 0 and len(self.ssids) > 1:
            self._schedule_compaction(clock.now)

    def _retire_flushed(self, now: float) -> None:
        """Drop flushing-queue entries whose flush completed by ``now``."""
        while self.flushing and self.flushing[0][1] <= now:
            self.flushing.pop(0)

    def _schedule_compaction(self, t_enqueue: float) -> None:
        """Merge every on-disk SSTable of this rank into one (§2.5).

        The merged table takes a *fresh* SSID (never reuses an input's):
        group peers cache readers keyed by SSID, and a rewritten file
        under an old SSID would pair their cached index with new data
        silently.  A fresh SSID makes staleness detectable — deleted
        inputs raise StorageError and the changed newest-SSID invalidates
        peer caches.
        """
        inputs = list(self.ssids)
        new_ssid = self._next_ssid
        self._next_ssid += 1

        def job(start: float) -> float:
            _, end = compact(
                self.store, self.rank_dir, inputs, new_ssid, start,
                drop_tombstones=True, fp_rate=self.options.bloom_fp_rate,
            )
            self._trace(
                f"compact {len(inputs)}->ssid={new_ssid}", "compaction",
                start, end,
            )
            return end

        self.compaction_worker.schedule(t_enqueue, job)
        self.ssids = [new_ssid]
        self._readers.clear()
        self.stats.compactions += 1

    # ------------------------------------------------------ remote put paths
    def _remote_stage(self, owner: int, key: bytes, value: bytes,
                      tombstone: bool) -> None:
        """Relaxed mode: stage in the remote MemTable (memory only).

        Migration happens *outside* the state lock: the dispatcher's
        blocking back-pressure must never hold the lock this rank's
        handler needs to serve other ranks (cross-rank deadlock).
        """
        with self._lock:
            self.remote_mt.put(key, value, tombstone, owner)
            imm = self._swap_remote_mt() if self.remote_mt.full else None
        if imm is not None:
            self._migrate(imm)

    def _swap_remote_mt(self) -> MemTable:
        """Freeze and replace the remote MemTable (call under the lock)."""
        imm = self.remote_mt.freeze()
        self.remote_mt = MemTable(
            self.options.remote_memtable_capacity, "remote"
        )
        return imm

    def _migrate(self, imm: MemTable) -> None:
        """Ship an immutable remote MemTable to the owner ranks (§2.4).

        The dispatcher sorts pairs by owner, accumulates per-rank chunks,
        and sends one request message per owner; its time lands on the
        dispatcher's background timeline.
        """
        if len(imm) == 0:
            return
        groups = imm.by_owner()
        # migration-queue back-pressure: bound unacked chunks in flight
        cap = self.options.migration_queue_capacity * max(1, len(groups))
        while len(self._pending_acks) >= cap:
            self._drain_acks(blocking=True, at_most=1)
        chunk_seqs: List[Tuple[int, int]] = []  # (owner, seq)
        with self._lock:
            for owner in sorted(groups):
                seq = self._next_seq
                self._next_seq += self.nranks  # keep seqs rank-unique
                chunk_seqs.append((owner, seq))
                pairs = groups[owner]
                self._pending_acks.add(seq)
                self.inflight.append(
                    (seq, {k: (v, tomb) for k, v, tomb in pairs})
                )
        self.stats.migrations += len(chunk_seqs)
        cpu = self.ctx.system.cpu
        sort_cost = cpu.kv_op_s * max(1, len(imm))

        def job(start: float) -> float:
            t = start + sort_cost
            for owner, seq in chunk_seqs:
                payload = msg.MigrateMsg(groups[owner], seq)
                self.srv_comm.send_at(payload, owner, tag=0, t_send=t)
                t += self.ctx.system.network.sw_overhead_s
            self._trace(
                f"migrate {len(chunk_seqs)} chunks", "dispatcher", start, t
            )
            return t

        self.dispatcher_worker.schedule(self.clock.now, job)

    def _drain_acks(self, blocking: bool, at_most: Optional[int] = None) -> None:
        """Consume migration acks; blocking mode waits for them."""
        drained = 0
        while self._pending_acks:
            if at_most is not None and drained >= at_most:
                return
            if blocking:
                ack = self.ack_comm.recv(ANY_SOURCE, ACK_TAG)
            else:
                if not self.ack_comm.iprobe(ANY_SOURCE, ACK_TAG):
                    return
                ack = self.ack_comm.recv(ANY_SOURCE, ACK_TAG)
            with self._lock:
                self._pending_acks.discard(ack.seq)
                self.inflight = [
                    (s, d) for s, d in self.inflight if s != ack.seq
                ]
            drained += 1

    def _put_sync(self, owner: int, key: bytes, value: bytes,
                  tombstone: bool) -> None:
        """Sequential mode: migrate one put synchronously (§3.1)."""
        seq = self._next_seq
        self._next_seq += self.nranks
        self.srv_comm.send(
            msg.PutSyncMsg(key, value, tombstone, seq), owner, tag=0
        )
        reply = self.rsp_comm.recv(source=owner, tag=seq)
        assert isinstance(reply, msg.AckMsg) and reply.seq == seq

    # ==================================================================== GET
    def get(self, key: bytes) -> bytes:
        """Retrieve the value for ``key`` (``papyruskv_get``).

        Raises :class:`KeyNotFoundError` when absent or deleted.
        """
        self._validate_kv(key, None)
        return self.get_ex(bytes(key)).value

    def get_or_none(self, key: bytes) -> Optional[bytes]:
        """Like :meth:`get` but returns None instead of raising."""
        try:
            return self.get(bytes(key))
        except KeyNotFoundError:
            return None

    def get_ex(self, key: bytes) -> GetResult:
        """Like :meth:`get` but reports which tier satisfied the lookup."""
        self._check_open()
        self._validate_kv(key, None)
        if self.protection == config.WRONLY:
            raise ProtectionError("database is write-only (PAPYRUSKV_WRONLY)")
        self.stats.gets += 1
        t_start = self.clock.now
        self._charge_op(len(key))
        self._drain_acks(blocking=False)
        owner = self.owner_of(key)
        if owner == self.rank:
            self.stats.local_gets += 1
            result = self._local_get(key)
        else:
            self.stats.remote_gets += 1
            result = self._remote_get(owner, key)
        self.latency.observe("get", self.clock.now - t_start)
        self._trace("get", "main", t_start, self.clock.now)
        if result is None:
            raise KeyNotFoundError(key)
        self.stats.hit(result.tier)
        return result

    # ---------------------------------------------------------- local lookup
    def _search_memory_local(self, key: bytes) -> Tuple[Optional[Entry], str]:
        """Local MemTable, then immutable ones newest-first (Fig. 3)."""
        entry = self.local_mt.get(key)
        if entry is not None:
            return entry, "local_mt"
        for imm, _end in reversed(self.flushing):
            entry = imm.get(key)
            if entry is not None:
                return entry, "flushing"
        return None, ""

    def _local_get(self, key: bytes) -> Optional[GetResult]:
        with self._lock:
            self._retire_flushed(self.clock.now)
            entry, tier = self._search_memory_local(key)
            if entry is not None:
                if entry.tombstone:
                    return None
                return GetResult(entry.value, tier)
            if self.local_cache is not None and self.protection != config.WRONLY:
                cached = self.local_cache.get(key)
                if cached is not None:
                    return GetResult(cached, "local_cache")
            ssids = list(self.ssids)
        rec = self._sstable_lookup(ssids, key)
        if rec is None or rec.tombstone:
            return None
        with self._lock:
            if self.local_cache is not None and self.protection != config.WRONLY:
                self.local_cache.put(key, rec.value)
        return GetResult(rec.value, "sstable")

    def _sstable_lookup(self, ssids: List[int], key: bytes
                        ) -> Optional[Record]:
        """Search my own SSTables, retrying once across a compaction race.

        A concurrent compaction (handler-triggered flush on this rank)
        may delete input tables mid-search; the retry re-reads the
        authoritative SSID list under the lock.  Advances the caller's
        clock to the read-completion time.
        """
        try:
            rec, t_end = self._search_sstables(
                self.store, self.rank_dir, ssids, key, self.clock.now,
                own=True,
            )
        except StorageError:
            with self._lock:
                self._readers.clear()
                ssids = list(self.ssids)
            rec, t_end = self._search_sstables(
                self.store, self.rank_dir, ssids, key, self.clock.now,
                own=True,
            )
        self.clock.advance_to(t_end)
        return rec

    def _reader(self, ssid: int) -> SSTableReader:
        rd = self._readers.get(ssid)
        if rd is None:
            rd = SSTableReader(self.store, self.rank_dir, ssid)
            self._readers[ssid] = rd
        return rd

    def _search_sstables(
        self,
        store: PosixStore,
        directory: str,
        ssids: List[int],
        key: bytes,
        t: float,
        own: bool,
    ) -> Tuple[Optional[Record], float]:
        """Walk SSTables highest-SSID-first with bloom skipping (§2.6)."""
        for ssid in reversed(ssids):
            reader = (
                self._reader(ssid) if own
                else SSTableReader(store, directory, ssid)
            )
            rec, t = reader.get(
                key, t, binary_search=self.binary_search,
                use_bloom=self.options.bloom_enabled,
            )
            if rec is not None:
                return rec, t
        return None, t

    # --------------------------------------------------------- remote lookup
    def _search_memory_remote(self, key: bytes) -> Tuple[Optional[Entry], str]:
        """Remote MemTable, then unacked migrated chunks newest-first."""
        entry = self.remote_mt.get(key)
        if entry is not None:
            return entry, "remote_mt"
        for _seq, chunk in reversed(self.inflight):
            if key in chunk:
                value, tomb = chunk[key]
                return Entry(value, tomb), "inflight"
        return None, ""

    def _remote_get(self, owner: int, key: bytes) -> Optional[GetResult]:
        with self._lock:
            entry, tier = self._search_memory_remote(key)
        if entry is not None:
            if entry.tombstone:
                return None
            return GetResult(entry.value, tier)
        remote_cache_on = self.protection == config.RDONLY
        if remote_cache_on:
            cached = self.remote_cache.get(key)
            if cached is not None:
                return GetResult(cached, "remote_cache")
        for attempt in range(3):
            force = attempt == 2
            reply = self._request_get(owner, key, force)
            if reply.status == msg.NOT_FOUND:
                return None
            if reply.status == msg.FOUND:
                if reply.tombstone:
                    return None
                if remote_cache_on and reply.value is not None:
                    self.remote_cache.put(key, reply.value)
                return GetResult(reply.value or b"", "remote")
            # NOT_IN_MEMORY: same storage group — read the owner's
            # SSTables directly from the shared NVM (§2.7)
            try:
                rec, t_end = self._shared_sstable_get(owner, key, reply)
            except StorageError:
                # raced a compaction; drop every cached view of this
                # owner's tables and retry
                self._peer_readers.pop(owner, None)
                for k in [k for k in self._peer_reader_cache if k[0] == owner]:
                    self._peer_reader_cache.pop(k, None)
                continue
            self.clock.advance_to(t_end)
            if rec is None:
                return None
            if rec.tombstone:
                return None
            if remote_cache_on:
                self.remote_cache.put(key, rec.value)
            return GetResult(rec.value, "shared_sstable")
        return None

    def _request_get(self, owner: int, key: bytes, force: bool) -> msg.GetReply:
        seq = self._next_seq
        self._next_seq += self.nranks
        self.srv_comm.send(
            msg.GetMsg(key, self.group, seq, force_data=force), owner, tag=0
        )
        reply = self.rsp_comm.recv(source=owner, tag=seq)
        assert isinstance(reply, msg.GetReply)
        return reply

    def _shared_sstable_get(
        self, owner: int, key: bytes, reply: msg.GetReply
    ) -> Tuple[Optional[Record], float]:
        owner_dir = reply.owner_dir or f"{self.dbdir}/rank{owner}"
        cached = self._peer_readers.get(owner)
        if cached is None or cached[0] != reply.newest_ssid:
            # a new SSTable appeared at the owner: re-list, but keep
            # reader objects for SSIDs we already know — the files are
            # immutable, so their loaded blooms/indexes stay valid
            ssids = list_ssids(self.store, owner_dir)
            self._peer_readers[owner] = (reply.newest_ssid, ssids)
        else:
            ssids = cached[1]
        t = self.clock.now
        for ssid in reversed(ssids):
            reader = self._peer_reader_cache.get((owner, ssid))
            if reader is None:
                reader = SSTableReader(self.store, owner_dir, ssid)
                self._peer_reader_cache[(owner, ssid)] = reader
            rec, t = reader.get(
                key, t, binary_search=self.binary_search,
                use_bloom=self.options.bloom_enabled,
            )
            if rec is not None:
                return rec, t
        return None, t

    # ======================================================== BULK PIPELINE
    def put_bulk(self, items) -> int:
        """Insert many pairs through the batched pipeline.

        ``items`` is a mapping or an iterable of ``(key, value)`` pairs.
        Operations are partitioned by owner rank in one pass: local ones
        apply under a single lock acquisition, remote ones coalesce into
        per-owner batches (relaxed: the batch joins the remote MemTable
        and later migrates as one chunk per owner; sequential: one
        synchronous round per owner, not per key).  Duplicate keys
        within one batch resolve last-write-wins.  Returns the number of
        distinct keys written.
        """
        if isinstance(items, dict):
            items = items.items()
        ops: List[Tuple[bytes, bytes, bool]] = []
        for key, value in items:
            self._validate_kv(key, value)
            ops.append((bytes(key), bytes(value), False))
        return self._write_bulk(ops)

    def delete_bulk(self, keys) -> int:
        """Delete many keys through the batched pipeline (see put_bulk)."""
        ops: List[Tuple[bytes, bytes, bool]] = []
        for key in keys:
            self._validate_kv(key, None)
            ops.append((bytes(key), b"", True))
        return self._write_bulk(ops)

    def _write_bulk(self, ops: List[Tuple[bytes, bytes, bool]]) -> int:
        """The shared engine of put_bulk/delete_bulk/WriteBatch."""
        self._check_open()
        if self.protection == config.RDONLY:
            raise ProtectionError("database is read-only (PAPYRUSKV_RDONLY)")
        if not ops:
            return 0
        t_start = self.clock.now
        # last-write-wins within the batch: only each key's final op lands
        final: Dict[bytes, Tuple[bytes, bool]] = {}
        for key, value, tomb in ops:
            final[key] = (value, tomb)
        cpu = self.ctx.system.cpu
        nbytes = sum(len(k) + len(v) for k, (v, _) in final.items())
        # per-key CPU work remains; the per-call dispatch overhead
        # (DRAM round trip) is paid once for the whole batch
        self.clock.advance(
            cpu.kv_op_s * len(final) + cpu.dram_latency_s
            + nbytes / self._memcpy_Bps
        )
        self._drain_acks(blocking=False)
        # single-pass partition by owner rank
        local: List[Tuple[bytes, bytes, bool]] = []
        remote: Dict[int, List[msg.Pair]] = {}
        for key, (value, tomb) in final.items():
            self.stats.puts += 1
            if tomb:
                self.stats.deletes += 1
            owner = self.owner_of(key)
            if owner == self.rank:
                self.stats.local_puts += 1
                local.append((key, value, tomb))
            else:
                self.stats.remote_puts += 1
                remote.setdefault(owner, []).append((key, value, tomb))
        imm: Optional[MemTable] = None
        with self._lock:  # one acquisition for every local/staged insert
            for key, value, tomb in local:
                self.local_mt.put(key, value, tomb)
                if (self.local_cache is not None
                        and self.protection != config.WRONLY):
                    self.local_cache.invalidate(key)
                if self.local_mt.full:
                    self._rotate_local(self.clock)
            if remote and self.consistency == config.RELAXED:
                for owner, pairs in remote.items():
                    for key, value, tomb in pairs:
                        self.remote_mt.put(key, value, tomb, owner)
                if self.remote_mt.full:
                    imm = self._swap_remote_mt()
        if imm is not None:
            self._migrate(imm)
        if remote and self.consistency == config.SEQUENTIAL:
            self._put_sync_bulk(remote)
        self.stats.bulk_batches += 1
        self.stats.bulk_keys += len(final)
        self.latency.observe("put_bulk", self.clock.now - t_start)
        self._trace(f"put_bulk({len(final)})", "main", t_start,
                    self.clock.now)
        return len(final)

    def _put_sync_bulk(self, groups: Dict[int, List[msg.Pair]]) -> None:
        """Sequential mode: one synchronous round per owner, not per key.

        All per-owner batches scatter first (fan-out), then the acks
        gather, so the owners' handlers service the batches in parallel.
        """
        seqs: Dict[int, int] = {}
        payloads: Dict[int, msg.PutSyncBatchMsg] = {}
        for owner in sorted(groups):
            seq = self._next_seq
            self._next_seq += self.nranks
            seqs[owner] = seq
            payloads[owner] = msg.PutSyncBatchMsg(groups[owner], seq)
        self.srv_comm.fanout(payloads, tag=0)
        self.stats.bulk_owner_msgs += len(payloads)
        for owner in sorted(groups):
            reply = self.rsp_comm.recv(source=owner, tag=seqs[owner])
            assert isinstance(reply, msg.AckMsg) and reply.seq == seqs[owner]

    def get_bulk(self, keys) -> List[Optional[bytes]]:
        """Fetch many keys; values come back in caller order (None=absent).

        Keys are partitioned by owner in one pass; local keys resolve
        through the memory/cache tiers under a single lock acquisition
        (SSTable misses after), remote keys pipeline as one
        :class:`~repro.core.messages.MGetMsg` per owner — scattered to
        every owner before any reply is awaited — with the cache and
        bloom tiers consulted per key on both sides.
        """
        self._check_open()
        if self.protection == config.WRONLY:
            raise ProtectionError("database is write-only (PAPYRUSKV_WRONLY)")
        norm: List[bytes] = []
        for key in keys:
            self._validate_kv(key, None)
            norm.append(bytes(key))
        keys = norm
        if not keys:
            return []
        t_start = self.clock.now
        # duplicate keys in one batch resolve with a single lookup
        index_of: Dict[bytes, List[int]] = {}
        for i, key in enumerate(keys):
            index_of.setdefault(key, []).append(i)
        cpu = self.ctx.system.cpu
        self.clock.advance(
            cpu.kv_op_s * len(index_of) + cpu.dram_latency_s
            + sum(len(k) for k in index_of) / self._memcpy_Bps
        )
        self._drain_acks(blocking=False)
        self.stats.gets += len(index_of)
        local_keys: List[bytes] = []
        remote: Dict[int, List[bytes]] = {}
        for key in index_of:
            owner = self.owner_of(key)
            if owner == self.rank:
                self.stats.local_gets += 1
                local_keys.append(key)
            else:
                self.stats.remote_gets += 1
                remote.setdefault(owner, []).append(key)
        found: Dict[bytes, Optional[bytes]] = {}
        if local_keys:
            found.update(self._local_get_many(local_keys))
        if remote:
            found.update(self._remote_get_many(remote))
        results: List[Optional[bytes]] = [None] * len(keys)
        for key, value in found.items():
            for i in index_of[key]:
                results[i] = value
        self.stats.bulk_batches += 1
        self.stats.bulk_keys += len(index_of)
        self.latency.observe("get_bulk", self.clock.now - t_start)
        self._trace(f"get_bulk({len(index_of)})", "main", t_start,
                    self.clock.now)
        return results

    def _local_get_many(self, keys: List[bytes]
                        ) -> Dict[bytes, Optional[bytes]]:
        """Bulk local lookups: memory tiers under one lock, SSTables after."""
        out: Dict[bytes, Optional[bytes]] = {}
        misses: List[bytes] = []
        with self._lock:
            self._retire_flushed(self.clock.now)
            cache_on = (self.local_cache is not None
                        and self.protection != config.WRONLY)
            for key in keys:
                entry, tier = self._search_memory_local(key)
                if entry is not None:
                    out[key] = None if entry.tombstone else entry.value
                    self.stats.hit(tier)
                    continue
                if cache_on:
                    cached = self.local_cache.get(key)
                    if cached is not None:
                        out[key] = cached
                        self.stats.hit("local_cache")
                        continue
                misses.append(key)
            ssids = list(self.ssids)
        for key in misses:
            rec = self._sstable_lookup(ssids, key)
            if rec is None or rec.tombstone:
                out[key] = None
                continue
            out[key] = rec.value
            self.stats.hit("sstable")
            with self._lock:
                if (self.local_cache is not None
                        and self.protection != config.WRONLY):
                    self.local_cache.put(key, rec.value)
        return out

    def _remote_get_many(self, groups: Dict[int, List[bytes]]
                         ) -> Dict[bytes, Optional[bytes]]:
        """Bulk remote lookups: staged tiers, then one MGET per owner."""
        out: Dict[bytes, Optional[bytes]] = {}
        need: Dict[int, List[bytes]] = {}
        with self._lock:  # staged/unacked tiers under one acquisition
            for owner, keys in groups.items():
                for key in keys:
                    entry, tier = self._search_memory_remote(key)
                    if entry is not None:
                        out[key] = None if entry.tombstone else entry.value
                        self.stats.hit(tier)
                    else:
                        need.setdefault(owner, []).append(key)
        remote_cache_on = self.protection == config.RDONLY
        if remote_cache_on:
            for owner in list(need):
                still: List[bytes] = []
                for key in need[owner]:
                    cached = self.remote_cache.get(key)
                    if cached is not None:
                        out[key] = cached
                        self.stats.hit("remote_cache")
                    else:
                        still.append(key)
                if still:
                    need[owner] = still
                else:
                    del need[owner]
        if not need:
            return out
        # scatter one multi-get per owner, then gather the replies —
        # every owner's handler works while we are still collecting
        seqs: Dict[int, int] = {}
        payloads: Dict[int, msg.MGetMsg] = {}
        for owner in sorted(need):
            seq = self._next_seq
            self._next_seq += self.nranks
            seqs[owner] = seq
            payloads[owner] = msg.MGetMsg(need[owner], self.group, seq)
        self.srv_comm.fanout(payloads, tag=0)
        self.stats.bulk_owner_msgs += len(payloads)
        for owner in sorted(need):
            reply = self.rsp_comm.recv(source=owner, tag=seqs[owner])
            assert isinstance(reply, msg.MGetReply)
            for key, (status, value, tombstone) in zip(
                need[owner], reply.results
            ):
                if status == msg.FOUND:
                    if tombstone:
                        out[key] = None
                        continue
                    out[key] = value or b""
                    if remote_cache_on and value is not None:
                        self.remote_cache.put(key, value)
                    self.stats.hit("remote")
                elif status == msg.NOT_FOUND:
                    out[key] = None
                else:  # NOT_IN_MEMORY: read the shared SSTables myself
                    out[key] = self._shared_get_fallback(owner, key, reply)
        return out

    def _shared_get_fallback(self, owner: int, key: bytes,
                             reply) -> Optional[bytes]:
        """Resolve one NOT_IN_MEMORY multi-get key via shared NVM (§2.7)."""
        remote_cache_on = self.protection == config.RDONLY
        try:
            rec, t_end = self._shared_sstable_get(owner, key, reply)
        except StorageError:
            # raced the owner's compaction: drop every cached view of its
            # tables and force the value over the network instead
            self._peer_readers.pop(owner, None)
            for k in [k for k in self._peer_reader_cache if k[0] == owner]:
                self._peer_reader_cache.pop(k, None)
            single = self._request_get(owner, key, force=True)
            if single.status == msg.FOUND and not single.tombstone:
                value = single.value or b""
                if remote_cache_on and single.value is not None:
                    self.remote_cache.put(key, value)
                self.stats.hit("remote")
                return value
            return None
        self.clock.advance_to(t_end)
        if rec is None or rec.tombstone:
            return None
        if remote_cache_on:
            self.remote_cache.put(key, rec.value)
        self.stats.hit("shared_sstable")
        return rec.value

    def shares_storage_with(self, other_rank: int) -> bool:
        """True when ``other_rank`` can read this rank's SSTable files."""
        return (
            self.layout.group_of(other_rank) == self.group
            and (
                self.options.repository == "lustre"
                or self.ctx.machine.shares_nvm(self.rank, other_rank)
            )
        )

    # ==================================================== CONSISTENCY CONTROL
    def fence(self) -> None:
        """Migrate the remote MemTable immediately (``papyruskv_fence``)."""
        self._check_open()
        with self._lock:
            imm = self._swap_remote_mt() if len(self.remote_mt) else None
        if imm is not None:
            self._migrate(imm)
        self._drain_acks(blocking=True)

    def barrier(self, level: int = config.MEMTABLE) -> None:
        """Collective fence (+ SSTable flush at ``SSTABLE`` level)."""
        self._check_open()
        self.fence()
        self.coll_comm.barrier()  # all migrations sent & acked everywhere
        if level == config.SSTABLE:
            self.flush_sstables()
        self.coll_comm.barrier()

    def flush_sstables(self) -> None:
        """Flush the local MemTable (+ queue) fully to SSTables, blocking."""
        with self._lock:
            if len(self.local_mt):
                self._rotate_local(self.clock)
            # wait for the compaction worker to drain
            self.clock.advance_to(self.compaction_worker.available)
            self._retire_flushed(self.clock.now)

    def set_consistency(self, mode: int) -> None:
        """Collective: switch relaxed ↔ sequential (``papyruskv_consistency``)."""
        self._check_open()
        if mode not in (config.RELAXED, config.SEQUENTIAL):
            raise InvalidModeError(f"unknown consistency mode {mode}")
        # entering sequential requires the relaxed backlog to be visible
        self.fence()
        self.coll_comm.barrier()
        self.consistency = mode

    def protect(self, prot: int) -> None:
        """Collective: set the protection attribute (``papyruskv_protect``)."""
        self._check_open()
        if prot not in (config.RDWR, config.WRONLY, config.RDONLY):
            raise InvalidProtectionError(f"unknown protection {prot}")
        self.fence()
        self.coll_comm.barrier()
        with self._lock:
            if prot == config.WRONLY and self.local_cache is not None:
                # invalidate all entries and disable the cache (§3.2)
                self.local_cache.clear()
            if prot != config.RDONLY:
                # leaving read-only: remote cache contents become unsafe
                self.remote_cache.clear()
            self.protection = prot
        self.coll_comm.barrier()

    # =================================================================== SCAN
    def scan_local(self, start: Optional[bytes] = None,
                   end: Optional[bytes] = None) -> List[Tuple[bytes, bytes]]:
        """Sorted live pairs of this rank's shard within ``[start, end)``.

        Extension beyond the paper's Table 1 — an LSM merge over the
        MemTable tiers and SSTables.  See :mod:`repro.core.scan`.
        """
        self._check_open()
        if self.protection == config.WRONLY:
            raise ProtectionError("database is write-only (PAPYRUSKV_WRONLY)")
        from repro.core.scan import local_scan

        return local_scan(self, start, end)

    def scan_collect(self, start: Optional[bytes] = None,
                     end: Optional[bytes] = None) -> List[Tuple[bytes, bytes]]:
        """Collective: globally sorted live pairs across all ranks.

        Every rank scans its own shard and the results are allgathered
        and merged; all ranks receive the same list.  Call a barrier (or
        use sequential consistency) first if writes are in flight.
        """
        mine = self.scan_local(start, end)
        chunks = self.coll_comm.allgather(mine)
        merged: List[Tuple[bytes, bytes]] = []
        for chunk in chunks:
            merged.extend(chunk)
        merged.sort(key=lambda kv: kv[0])
        return merged

    def count_local(self) -> int:
        """Number of live keys in this rank's shard."""
        from repro.core.scan import count_live

        return count_live(self)

    # ============================================================ PERSISTENCE
    def snapshot_file_list(self) -> List[str]:
        """Relative paths of this rank's SSTable files (post-flush)."""
        out: List[str] = []
        for ssid in self.ssids:
            reader = SSTableReader(self.store, self.rank_dir, ssid)
            out.extend(reader.file_paths())
        return out

    def checkpoint(self, path: str):
        """Asynchronous snapshot to the parallel FS (``papyruskv_checkpoint``)."""
        from repro.core.checkpoint import checkpoint

        return checkpoint(self, path)

    def destroy(self):
        """Remove the database and all its data from NVM (async)."""
        from repro.core.checkpoint import destroy

        return destroy(self)

    # ================================================================== CLOSE
    def close(self) -> None:
        """Collective close: quiesce, flush, stop the handler."""
        if self._closed:
            return
        self.fence()
        self.coll_comm.barrier()
        self.flush_sstables()
        self.coll_comm.barrier()  # nobody issues remote ops past this point
        # stop my handler (self-send so it wakes from its recv)
        self.srv_comm.send(msg.StopMsg(), self.rank, tag=0)
        if self._handler_thread is not None:
            self._handler_thread.join(30.0)
        self._closed = True
        self.coll_comm.barrier()
        self.env._forget(self.name)

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self._closed = True  # failing rank: skip collective close
            return
        if not self._closed:
            self.close()

    # ===================================================== PYTHONIC SUGAR
    def __setitem__(self, key: bytes, value: bytes) -> None:
        """``db[key] = value`` — sugar for :meth:`put`."""
        self.put(key, value)

    def __getitem__(self, key: bytes) -> bytes:
        """``db[key]`` — sugar for :meth:`get`.

        :class:`KeyNotFoundError` subclasses :class:`KeyError`, so the
        usual mapping idioms (``try/except KeyError``) apply.
        """
        return self.get(key)

    def __delitem__(self, key: bytes) -> None:
        """``del db[key]`` — sugar for :meth:`delete` (tombstone put).

        Like :meth:`delete`, deleting an absent key is not an error: an
        existence check would cost a (possibly remote) get.
        """
        self.delete(key)

    def __contains__(self, key: bytes) -> bool:
        """``key in db`` — a get that swallows NOT_FOUND."""
        return self.get_or_none(key) is not None

    def batch(self) -> "WriteBatch":
        """A context manager buffering mutations for one bulk flush.

        ::

            with db.batch() as b:
                b[b"k1"] = b"v1"
                b.delete(b"k2")

        On clean exit the buffered operations flush through the bulk
        pipeline (one migration batch per owner); on exception nothing
        is written.
        """
        return WriteBatch(self)

    # ---------------------------------------------------------------- helpers
    def write_meta(self) -> None:
        """Persist database metadata (rank 0 only, on create)."""
        meta = {"name": self.name, "nranks": self.nranks}
        self.store.write(
            f"{self.dbdir}/meta.json", json.dumps(meta).encode(), self.clock.now
        )

    def read_meta(self) -> Optional[dict]:
        """Load the database metadata file, or None if absent."""
        if not self.store.exists(f"{self.dbdir}/meta.json"):
            return None
        blob, t = self.store.read(f"{self.dbdir}/meta.json", self.clock.now)
        self.clock.advance_to(t)
        return json.loads(blob.decode())
