"""Replica-group membership: the per-rank view of who is alive.

Only instantiated when ``Options(replicas=...)`` is greater than one —
the unreplicated paths never touch this module.  Each rank owns one
:class:`MembershipView` per database; views converge through piggybacked
``(epoch, dead)`` pairs carried on replication traffic (heartbeats,
replica puts, replica acks) rather than a consensus protocol.  Death is
**permanent and monotone**: the dead set only grows and the epoch only
advances, so two views can always be merged by taking the union/max and
in-flight messages from a superseded epoch can be rejected
deterministically.

All state is guarded by the ``db.membership`` lock (level 15 in the
canonical order, between ``db.state`` and ``db.readers``): both the rank
main thread (routing, failure declaration) and the handler thread
(heartbeats, piggybacked liveness) read and write it.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.analysis.runtime import annotate_read, annotate_write, make_lock
from repro.errors import MembershipEpochError


class MembershipView:
    """One rank's monotone view of group membership.

    ``epoch`` advances by one for every rank declared dead; a message
    stamped with an older epoch (or from a rank this view holds dead)
    is stale and gets rejected by the receiver, which replies with its
    newer view so the sender can re-route.
    """

    def __init__(self, rank: int, nranks: int) -> None:
        self.rank = rank
        self.nranks = nranks
        self._mv_lock = make_lock("db.membership")
        self._epoch = 0
        self._dead: Set[int] = set()
        self._suspect: Set[int] = set()
        self._last_heard: Dict[int, float] = {}
        #: ranks declared dead whose key ranges still need re-replication
        #: (drained by Database._rereplicate on the main thread)
        self._pending_rerepl: List[int] = []

    # -- liveness bookkeeping -----------------------------------------

    def heard_from(self, rank: int, t: float) -> None:
        """Any message from ``rank`` is proof of life at virtual ``t``."""
        if rank == self.rank:
            return
        with self._mv_lock:
            annotate_write(self, "membership.state")
            if rank in self._dead:
                return  # death is permanent; a zombie stays dead
            prev = self._last_heard.get(rank, 0.0)
            if t > prev:
                self._last_heard[rank] = t
            self._suspect.discard(rank)

    def last_heard(self, rank: int) -> float:
        """Virtual time of the most recent message from ``rank`` (0.0 if never)."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return self._last_heard.get(rank, 0.0)

    def suspect(self, rank: int) -> None:
        """Mark a silent peer suspected (diagnostic; not yet dead)."""
        with self._mv_lock:
            annotate_write(self, "membership.state")
            if rank not in self._dead:
                self._suspect.add(rank)

    def suspects(self) -> Tuple[int, ...]:
        """Ranks currently under suspicion, sorted."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return tuple(sorted(self._suspect))

    # -- the view itself ----------------------------------------------

    @property
    def epoch(self) -> int:
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return self._epoch

    def is_dead(self, rank: int) -> bool:
        """True once this view has declared ``rank`` dead (permanent)."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return rank in self._dead

    def is_alive(self, rank: int) -> bool:
        """Negation of :meth:`is_dead`."""
        return not self.is_dead(rank)

    def alive_ranks(self) -> List[int]:
        """All ranks this view holds alive, in rank order."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return [r for r in range(self.nranks) if r not in self._dead]

    def dead_ranks(self) -> Tuple[int, ...]:
        """All ranks this view has declared dead, sorted."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return tuple(sorted(self._dead))

    def wire(self) -> Tuple[int, Tuple[int, ...]]:
        """The ``(epoch, dead)`` pair stamped onto outgoing messages."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return self._epoch, tuple(sorted(self._dead))

    # -- membership changes -------------------------------------------

    def declare_dead(self, rank: int) -> bool:
        """Declare ``rank`` dead; True if this is news to the view.

        Advances the epoch and queues the rank for re-replication.
        Death is permanent — there is no rejoin short of ``restart()``.
        """
        if rank == self.rank:
            raise MembershipEpochError(
                f"rank {self.rank} asked to declare itself dead"
            )
        with self._mv_lock:
            annotate_write(self, "membership.state")
            if rank in self._dead:
                return False
            self._dead.add(rank)
            self._suspect.discard(rank)
            self._last_heard.pop(rank, None)
            self._epoch += 1
            self._pending_rerepl.append(rank)
            return True

    def merge(self, epoch: int, dead) -> bool:
        """Adopt a peer's ``(epoch, dead)`` view; True if ours changed.

        Raises :class:`MembershipEpochError` if the peer's view holds
        *this* rank dead — a self-death notice is unrecoverable.
        """
        dead = set(dead)
        if self.rank in dead:
            raise MembershipEpochError(
                f"rank {self.rank} learned the group declared it dead "
                f"(peer epoch {epoch})"
            )
        with self._mv_lock:
            annotate_write(self, "membership.state")
            changed = False
            for r in dead - self._dead:
                self._dead.add(r)
                self._suspect.discard(r)
                self._last_heard.pop(r, None)
                self._pending_rerepl.append(r)
                changed = True
            if epoch > self._epoch:
                self._epoch = epoch
                changed = True
            elif changed:
                # learned new deaths under an equal/older epoch stamp:
                # still advance past both views
                self._epoch = max(self._epoch + 1, epoch)
            return changed

    def is_stale(self, epoch: int, source: int) -> bool:
        """Deterministic staleness test for an incoming message."""
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return source in self._dead or epoch < self._epoch

    # -- re-replication queue -----------------------------------------

    @property
    def pending_rereplication(self) -> bool:
        with self._mv_lock:
            annotate_read(self, "membership.state")
            return bool(self._pending_rerepl)

    def take_pending_rereplication(self) -> List[int]:
        """Drain the newly dead ranks awaiting re-replication."""
        with self._mv_lock:
            annotate_write(self, "membership.state")
            pending, self._pending_rerepl = self._pending_rerepl, []
            return pending

    def put_back_rereplication(self, ranks: List[int]) -> None:
        """Requeue ranks whose re-replication pass did not complete."""
        if not ranks:
            return
        with self._mv_lock:
            annotate_write(self, "membership.state")
            self._pending_rerepl = ranks + self._pending_rerepl
