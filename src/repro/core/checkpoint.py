"""Persistence: checkpoint, restart, restart-with-redistribution, destroy.

"A collective function ``papyruskv_checkpoint()`` generates a snapshot
image of the database ... the compaction thread in each rank starts to
transfer the SSTables from NVM to the target parallel file system"
(paper §4.2).  Checkpoint and restart are asynchronous: they return an
:class:`~repro.core.events.Event` whose completion time lies on the
background compaction timeline, so the application overlaps them with
useful work until ``papyruskv_wait``.
"""

from __future__ import annotations

import json
import posixpath
from typing import List, Optional, Tuple

from repro import config
from repro.core.events import Event
from repro.errors import InvalidOptionError, StorageError
from repro.sstable.reader import SSTableReader, list_ssids


def _snapshot_dir(path: str, db_name: str) -> str:
    """Snapshot directory (relative to the Lustre store root)."""
    clean = path.strip("/").replace("..", "_")
    return posixpath.join("ckpt", clean, f"db_{db_name}")


def checkpoint(db, path: str) -> Event:
    """Collective asynchronous snapshot of ``db`` to the parallel FS."""
    db._check_open()
    # 1. global SSTable-level barrier: the snapshot image now exists on NVM
    db.barrier(config.SSTABLE)
    lustre = db.ctx.machine.lustre_store()
    snap = _snapshot_dir(path, db.name)
    rank_src = db.rank_dir
    rank_dst = posixpath.join(snap, f"rank{db.rank}")
    ssids = list(db.ssids)

    # 2. background transfer NVM -> Lustre on the compaction timeline,
    # staged out as one bulk streaming copy per rank
    def job(start: float) -> float:
        paths = []
        for ssid in ssids:
            paths.extend(SSTableReader(db.store, rank_src, ssid).file_paths())
        blobs, t = db.store.bulk_read(paths, start)
        out = {
            posixpath.join(rank_dst, posixpath.basename(rel)): data
            for rel, data in blobs.items()
        }
        t = lustre.bulk_write(out, t)
        if db.rank == 0:
            manifest = {
                "name": db.name,
                "nranks": db.nranks,
                "path": path,
            }
            t = lustre.write(
                posixpath.join(snap, "manifest.json"),
                json.dumps(manifest).encode(), t,
            )
        return t

    end = db.compaction_worker.schedule(db.clock.now, job)
    return Event(f"checkpoint:{db.name}:{path}").complete_at(end)


def read_manifest(machine, path: str, name: str) -> dict:
    """Load a snapshot manifest from the parallel FS."""
    lustre = machine.lustre_store()
    rel = posixpath.join(_snapshot_dir(path, name), "manifest.json")
    if not lustre.exists(rel):
        raise StorageError(f"no snapshot manifest at {rel}")
    blob, _ = lustre.read(rel, 0.0)
    return json.loads(blob.decode())


def restart(env, path: str, name: str,
            options=None, force_redistribute: bool = False
            ) -> Tuple["object", Event]:
    """Collective restart of database ``name`` from a snapshot (§4.2).

    Returns ``(db, event)``; the database contents are guaranteed only
    after ``event.wait()``.  When the snapshot was taken with a
    different rank count (or ``force_redistribute`` is set), every pair
    is re-put through the normal distribution path — "restart with
    redistribution".
    """
    manifest = read_manifest(env.ctx.machine, path, name)
    snap_nranks = int(manifest["nranks"])
    db = env.open(name, options)
    redistribute = force_redistribute or snap_nranks != db.nranks
    if redistribute:
        end = _restart_redistribute(env, db, path, name, snap_nranks)
    else:
        end = _restart_copy(env, db, path, name)
    event = Event(f"restart:{name}:{path}").complete_at(end)
    event.on_wait(lambda: _refresh(db))
    return db, event


def _refresh(db) -> None:
    with db._lock:
        db._readers.clear()
        db._load_existing_sstables()


def _restart_copy(env, db, path: str, name: str) -> float:
    """Same rank count: copy SSTable files back as they are (zero reshuffle)."""
    lustre = env.ctx.machine.lustre_store()
    snap = _snapshot_dir(path, name)
    rank_src = posixpath.join(snap, f"rank{db.rank}")
    files = lustre.listdir(rank_src)

    def job(start: float) -> float:
        blobs, t = lustre.bulk_read(
            [posixpath.join(rank_src, f) for f in files], start
        )
        out = {
            posixpath.join(db.rank_dir, posixpath.basename(rel)): data
            for rel, data in blobs.items()
        }
        return db.store.bulk_write(out, t)

    end = db.compaction_worker.schedule(db.clock.now, job)
    db.coll_comm.barrier()
    return end


def _restart_redistribute(env, db, path: str, name: str,
                          snap_nranks: int) -> float:
    """Different rank count: re-put every pair through the hash path.

    "The compaction thread in each MPI rank reads the SSTables from the
    parallel file system, and calls a put operation for every key-value
    pair ... partitioned across all the MPI ranks and executed in
    parallel" (§4.2).
    """
    lustre = env.ctx.machine.lustre_store()
    snap = _snapshot_dir(path, name)
    # partition the snapshot's rank directories across the new ranks
    my_dirs: List[str] = [
        posixpath.join(snap, f"rank{old}")
        for old in range(snap_nranks)
        if old % db.nranks == db.rank
    ]
    t = db.clock.now
    for d in my_dirs:
        for ssid in list_ssids(lustre, d):  # ascending: newest puts last win
            reader = SSTableReader(lustre, d, ssid)
            records, t = reader.read_all(t)
            db.clock.advance_to(t)
            for rec in records:
                if rec.tombstone:
                    db.delete(rec.key)
                else:
                    db.put(rec.key, rec.value)
            t = db.clock.now
    # the restored database must be materialized on NVM like a plain
    # restart's copied SSTables, so redistribution includes the rebuild
    db.barrier(config.SSTABLE)
    return db.clock.now


def destroy(db) -> Event:
    """Collective removal of the database and all its NVM data (async)."""
    db._check_open()
    db.fence()
    db.coll_comm.barrier()
    from repro.core import messages as msg

    db.srv_comm.send(msg.StopMsg(), db.rank, tag=0)
    if db._handler_thread is not None:
        db._handler_thread.join(30.0)
    rank_dir = db.rank_dir

    def job(start: float) -> float:
        return db.store.delete_tree(rank_dir, start)

    end = db.compaction_worker.schedule(db.clock.now, job)
    db.coll_comm.barrier()
    if db.rank == 0:
        end = max(end, db.store.delete(f"{db.dbdir}/meta.json", end))
    db._closed = True
    db.coll_comm.barrier()
    db.env._forget(db.name)
    return Event(f"destroy:{db.name}").complete_at(end)
