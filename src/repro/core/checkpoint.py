"""Persistence: checkpoint, restart, restart-with-redistribution, destroy.

"A collective function ``papyruskv_checkpoint()`` generates a snapshot
image of the database ... the compaction thread in each rank starts to
transfer the SSTables from NVM to the target parallel file system"
(paper §4.2).  Checkpoint and restart are asynchronous: they return an
:class:`~repro.core.events.Event` whose completion time lies on the
background compaction timeline, so the application overlaps them with
useful work until ``papyruskv_wait``.

Crash consistency (format 2).  Repeated checkpoints to one path land in
numbered *generations* — ``ckpt/<path>/db_<name>/gen<k>/rank<r>/`` — and
every file inside a generation is covered by a manifest chain written
strictly after the data it describes:

* each rank writes its files, then ``rank<r>/MANIFEST.json`` recording
  every file's length and CRC32C;
* after a barrier, rank 0 writes ``gen<k>/manifest.json``.

All writes are atomic (tmp + fsync + rename), so a crash mid-checkpoint
leaves *missing* files, never torn ones — and a missing file makes the
generation incomplete.  ``restart()`` resolves the newest **complete**
generation, verifies each file's checksum during the copy back to NVM,
and skips (counts) mismatches; when no generation is complete it
degrades to a best-effort restore of the newest one rather than losing
the surviving shards.
"""

from __future__ import annotations

import json
import posixpath
import warnings
from typing import List, Optional, Tuple

from repro import config
from repro.core.events import Event
from repro.errors import CorruptionError, StorageError
from repro.sstable.reader import SSTableReader, list_ssids
from repro.util.checksum import crc32c

#: snapshot layout version written into every generation manifest
CHECKPOINT_FORMAT = 2

_RANK_MANIFEST = "MANIFEST.json"
_GEN_MANIFEST = "manifest.json"


def _snapshot_dir(path: str, db_name: str) -> str:
    """Snapshot directory (relative to the Lustre store root)."""
    clean = path.strip("/").replace("..", "_")
    return posixpath.join("ckpt", clean, f"db_{db_name}")


def _gen_dir(snap: str, gen: int) -> str:
    return posixpath.join(snap, f"gen{gen}")


def _list_generations(lustre, snap: str) -> List[int]:
    """Ascending generation numbers present under a snapshot dir."""
    gens = []
    for name in lustre.listdir(snap):
        if name.startswith("gen"):
            try:
                gens.append(int(name[3:]))
            except ValueError:
                continue
    return sorted(gens)


def _read_json(lustre, rel: str) -> Optional[dict]:
    """Parse a manifest file; None if absent or undecodable."""
    if not lustre.exists(rel):
        return None
    try:
        blob, _ = lustre.read(rel, 0.0)
        return json.loads(blob.decode())
    except (StorageError, ValueError):
        return None


def _rank_manifest(lustre, rank_dir: str) -> Optional[dict]:
    return _read_json(lustre, posixpath.join(rank_dir, _RANK_MANIFEST))


def _generation_complete(lustre, gen_dir: str) -> Optional[dict]:
    """The generation's manifest if every recorded file is present.

    Completeness is a metadata check (existence + exact length): all
    snapshot writes are atomic renames, so an interrupted checkpoint
    manifests as missing files, not torn ones.  Content checksums are
    verified later, during the restore copy.
    """
    manifest = _read_json(lustre, posixpath.join(gen_dir, _GEN_MANIFEST))
    if manifest is None:
        return None
    for rank in range(int(manifest.get("nranks", 0))):
        rank_dir = posixpath.join(gen_dir, f"rank{rank}")
        rman = _rank_manifest(lustre, rank_dir)
        if rman is None:
            return None
        for fname, info in rman.get("files", {}).items():
            rel = posixpath.join(rank_dir, fname)
            if not lustre.exists(rel) or lustre.size(rel) != info["len"]:
                return None
    return manifest


def checkpoint(db, path: str) -> Event:
    """Collective asynchronous snapshot of ``db`` to the parallel FS."""
    db._check_open()
    # 1. global SSTable-level barrier: the snapshot image now exists on NVM
    db.barrier(config.SSTABLE)
    lustre = db.ctx.machine.lustre_store()
    snap = _snapshot_dir(path, db.name)
    # every rank derives the new generation from the same pre-write
    # state; the barrier keeps any rank from creating gen<k> before the
    # slowest rank has finished listing
    gens = _list_generations(lustre, snap)
    gen = (gens[-1] + 1) if gens else 1
    db.coll_comm.barrier()
    gen_dir = _gen_dir(snap, gen)
    rank_src = db.rank_dir
    rank_dst = posixpath.join(gen_dir, f"rank{db.rank}")
    ssids = db._ssids_snapshot()

    # 2. background transfer NVM -> Lustre on the compaction timeline,
    # staged out as one bulk streaming copy per rank; the rank manifest
    # goes last so its presence certifies the files before it
    def job(start: float) -> float:
        paths = []
        for ssid in ssids:
            paths.extend(SSTableReader(db.store, rank_src, ssid).file_paths())
        blobs, t = db.store.bulk_read(paths, start)
        out = {}
        files = {}
        for rel, data in blobs.items():
            base = posixpath.basename(rel)
            out[posixpath.join(rank_dst, base)] = data
            files[base] = {"crc32c": crc32c(data), "len": len(data)}
        t = lustre.bulk_write(out, t)
        rman = {"rank": db.rank, "files": files}
        t = lustre.write(
            posixpath.join(rank_dst, _RANK_MANIFEST),
            json.dumps(rman).encode(), t,
        )
        return t

    end = db.compaction_worker.schedule(db.clock.now, job)
    # 3. the generation manifest exists only once every rank's files and
    # manifest have landed: it is the snapshot's commit record
    db.coll_comm.barrier()
    if db.rank == 0:
        manifest = {
            "name": db.name,
            "nranks": db.nranks,
            "path": path,
            "generation": gen,
            "format": CHECKPOINT_FORMAT,
        }
        end = lustre.write(
            posixpath.join(gen_dir, _GEN_MANIFEST),
            json.dumps(manifest).encode(), max(end, db.clock.now),
        )
    db.coll_comm.barrier()
    return Event(f"checkpoint:{db.name}:{path}:gen{gen}").complete_at(end)


def read_manifest(machine, path: str, name: str) -> dict:
    """Resolve a snapshot to its newest usable generation's manifest.

    Preference order: the newest *complete* generation; failing that,
    the newest generation with a readable manifest (best-effort restore
    of whatever shards survive).  The returned dict always carries a
    ``generation`` key.
    """
    lustre = machine.lustre_store()
    snap = _snapshot_dir(path, name)
    gens = _list_generations(lustre, snap)
    for gen in reversed(gens):
        manifest = _generation_complete(lustre, _gen_dir(snap, gen))
        if manifest is not None:
            out = dict(manifest)
            out["generation"] = gen
            return out
    for gen in reversed(gens):  # degraded: no generation is complete
        manifest = _read_json(
            lustre, posixpath.join(_gen_dir(snap, gen), _GEN_MANIFEST)
        )
        if manifest is not None:
            out = dict(manifest)
            out["generation"] = gen
            return out
    raise StorageError(f"no usable snapshot generation under {snap}")


def restore_table_blobs(db, path: str, ssid: int) -> Optional[dict]:
    """Fetch one SSTable's checksum-verified files from a checkpoint.

    The recovery ladder's last rung: returns ``{filename: bytes}`` for
    this rank's copy of ``ssid`` in the newest complete generation, or
    ``None`` when the snapshot does not hold a clean copy.
    """
    from repro.sstable.format import sstable_filenames

    try:
        manifest = read_manifest(db.ctx.machine, path, db.name)
    except StorageError:
        return None
    if int(manifest.get("nranks", -1)) != db.nranks:
        return None  # different layout: this rank's shard moved
    lustre = db.ctx.machine.lustre_store()
    rank_dir = posixpath.join(
        _gen_dir(_snapshot_dir(path, db.name), manifest["generation"]),
        f"rank{db.rank}",
    )
    rman = _rank_manifest(lustre, rank_dir)
    if rman is None:
        return None
    blobs = {}
    t = db.clock.now
    for name in sstable_filenames(ssid):
        info = rman.get("files", {}).get(name)
        if info is None:
            return None
        try:
            data, t = lustre.read(posixpath.join(rank_dir, name), t)
        except StorageError:
            return None
        if len(data) != info["len"] or crc32c(data) != info["crc32c"]:
            return None  # the snapshot copy is itself damaged
        blobs[name] = data
    db.clock.advance_to(t)
    return blobs


def restart(env, path: str, name: str,
            options=None, force_redistribute: bool = False
            ) -> Tuple["object", Event]:
    """Collective restart of database ``name`` from a snapshot (§4.2).

    Returns ``(db, event)``; the database contents are guaranteed only
    after ``event.wait()``.  When the snapshot was taken with a
    different rank count (or ``force_redistribute`` is set), every pair
    is re-put through the normal distribution path — "restart with
    redistribution".

    The decision is explicit on the returned event:
    ``event.redistributed`` is True when the redistribution path ran and
    ``event.redistribute_reason`` says why (``"forced"`` or
    ``"rank count changed N->M"``; ``"none"`` for the plain copy path).
    A rank-count change overrides ``force_redistribute=False`` — the
    copy path cannot relocate shards — and emits a ``RuntimeWarning`` on
    rank 0 rather than redistributing silently.
    """
    manifest = read_manifest(env.ctx.machine, path, name)
    snap_nranks = int(manifest["nranks"])
    gen = int(manifest["generation"])
    db = env.open(name, options)
    db._last_checkpoint_path = path
    if force_redistribute:
        redistribute, reason = True, "forced"
    elif snap_nranks != db.nranks:
        redistribute = True
        reason = f"rank count changed {snap_nranks}->{db.nranks}"
        if db.rank == 0:
            warnings.warn(
                f"restart({path!r}, {name!r}): snapshot was taken with "
                f"{snap_nranks} ranks but the job has {db.nranks}; "
                "redistributing despite force_redistribute=False",
                RuntimeWarning,
                stacklevel=2,
            )
    else:
        redistribute, reason = False, "none"
    if redistribute:
        end = _restart_redistribute(env, db, path, name, snap_nranks, gen)
    else:
        end = _restart_copy(env, db, path, name, gen)
    event = Event(f"restart:{name}:{path}").complete_at(end)
    event.redistributed = redistribute
    event.redistribute_reason = reason
    event.on_wait(lambda: _refresh(db))
    return db, event


def _refresh(db) -> None:
    with db._lock:
        db._invalidate_readers()
        db._load_existing_sstables()


def _restart_copy(env, db, path: str, name: str, gen: int) -> float:
    """Same rank count: copy SSTable files back as they are (zero reshuffle).

    Every file is checksum-verified against the rank manifest during the
    copy; a mismatched or missing file is skipped and counted, leaving
    the admission logic at reopen to rebuild sidecars or quarantine.
    """
    lustre = env.ctx.machine.lustre_store()
    snap = _snapshot_dir(path, name)
    rank_src = posixpath.join(_gen_dir(snap, gen), f"rank{db.rank}")
    rman = _rank_manifest(lustre, rank_src) or {"files": {}}
    wanted = {
        name: info for name, info in rman["files"].items()
        if lustre.exists(posixpath.join(rank_src, name))
    }

    def job(start: float) -> float:
        blobs, t = lustre.bulk_read(
            [posixpath.join(rank_src, f) for f in wanted], start
        )
        out = {}
        skipped = 0
        for rel, data in blobs.items():
            base = posixpath.basename(rel)
            info = wanted[base]
            if len(data) != info["len"] or crc32c(data) != info["crc32c"]:
                skipped += 1
                continue
            out[posixpath.join(db.rank_dir, base)] = data
        if skipped:
            db.stats.corruptions_detected += skipped
        return db.store.bulk_write(out, t)

    end = db.compaction_worker.schedule(db.clock.now, job)
    db.coll_comm.barrier()
    return end


def _restart_redistribute(env, db, path: str, name: str,
                          snap_nranks: int, gen: int) -> float:
    """Different rank count: re-put every pair through the hash path.

    "The compaction thread in each MPI rank reads the SSTables from the
    parallel file system, and calls a put operation for every key-value
    pair ... partitioned across all the MPI ranks and executed in
    parallel" (§4.2).
    """
    lustre = env.ctx.machine.lustre_store()
    snap = _snapshot_dir(path, name)
    # partition the snapshot's rank directories across the new ranks
    my_dirs: List[str] = [
        posixpath.join(_gen_dir(snap, gen), f"rank{old}")
        for old in range(snap_nranks)
        if old % db.nranks == db.rank
    ]
    t = db.clock.now
    for d in my_dirs:
        for ssid in list_ssids(lustre, d):  # ascending: newest puts last win
            reader = SSTableReader(lustre, d, ssid)
            try:
                records, t = reader.read_all(t)
            except CorruptionError:
                # a damaged snapshot table: skip it rather than re-put
                # possibly-wrong pairs; the rest of the shard survives
                db.stats.corruptions_detected += 1
                t = db.clock.now
                continue
            db.clock.advance_to(t)
            for rec in records:
                if rec.tombstone:
                    db.delete(rec.key)
                else:
                    db.put(rec.key, rec.value)
            t = db.clock.now
    # the restored database must be materialized on NVM like a plain
    # restart's copied SSTables, so redistribution includes the rebuild
    db.barrier(config.SSTABLE)
    return db.clock.now


def destroy(db) -> Event:
    """Collective removal of the database and all its NVM data (async)."""
    db._check_open()
    db.fence()
    db.coll_comm.barrier()
    from repro.core import messages as msg

    db.srv_comm.send(msg.StopMsg(), db.rank, tag=0)
    if db._handler_thread is not None:
        db._handler_thread.join(30.0)
    rank_dir = db.rank_dir

    def job(start: float) -> float:
        return db.store.delete_tree(rank_dir, start)

    end = db.compaction_worker.schedule(db.clock.now, job)
    db.coll_comm.barrier()
    if db.rank == 0:
        end = max(end, db.store.delete(f"{db.dbdir}/meta.json", end))
    db._closed = True
    db.coll_comm.barrier()
    db.env._forget(db.name)
    return Event(f"destroy:{db.name}").complete_at(end)
