"""The message handler thread.

"In each target rank, the message handler thread receives the request
messages from the source rank" (paper §2.4).  One handler runs per rank
per open database, on its own virtual timeline: a request arriving at
time *a* begins service at ``max(a, handler-busy-until)``, which gives
handler queueing exactly the server semantics the real thread has.

The handler serves three request kinds:

* ``MigrateMsg`` — bulk-inserts migrated pairs into the local MemTable
  and acks the source's dispatcher;
* ``PutSyncMsg`` — a single synchronous put (sequential consistency);
* ``GetMsg`` — a local lookup on behalf of a remote rank, honouring the
  storage-group shortcut (§2.7): if the requester shares this rank's
  NVM and the pair is not in memory, reply NOT_IN_MEMORY so the
  requester reads the SSTables itself.

Mutating requests carry rank-unique sequence numbers and are
deduplicated (``db._already_applied``): when a timed-out requester
retransmits, the replayed message re-acks without re-applying, so
retries are idempotent.  ``FetchTableMsg`` ships an SSTable's files to
a storage-group peer climbing its recovery ladder.
"""

from __future__ import annotations

from repro.core import messages as msg
from repro.core.db import ACK_TAG, HB_TAG, Database
from repro.faults import RankKilledError
from repro.mpi.comm import ANY_SOURCE, ANY_TAG, AbortedError
from repro.mpi.launcher import RankContext, bind_context
from repro.simtime.clock import VirtualClock
from repro.util.queues import QueueClosed


def handler_main(db: Database) -> None:
    """Entry point of the per-database handler thread."""
    main_ctx = db.ctx
    hclock = VirtualClock(
        start=main_ctx.clock.now, label=f"handler-{db.name}-r{db.rank}"
    )
    hctx = RankContext(
        world_rank=main_ctx.world_rank,
        nranks=main_ctx.nranks,
        clock=hclock,
        comm=main_ctx.comm,
        system=main_ctx.system,
        machine=main_ctx.machine,
    )
    bind_context(hctx)
    cpu = main_ctx.system.cpu
    try:
        while True:
            status: dict = {}
            try:
                m = db.srv_comm.recv(ANY_SOURCE, ANY_TAG, status=status)
            except (RankKilledError, AbortedError, QueueClosed):
                # RankKilledError: this rank was killed by the fault
                # plane — its handler dies with it, quietly
                return
            source = status["source"]
            if db.membership is not None:
                # every message is proof of life (piggybacked detection)
                db.membership.heard_from(source, hclock.now)
            if isinstance(m, msg.StopMsg):
                return
            hclock.advance(cpu.kv_op_s)  # request decode
            t_service = hclock.now
            if isinstance(m, msg.MigrateMsg):
                _serve_migrate(db, m, source, hclock, cpu)
                db._trace(f"serve migrate({len(m.pairs)})", "handler",
                          t_service, hclock.now)
            elif isinstance(m, msg.PutSyncMsg):
                _serve_put_sync(db, m, source, hclock, cpu)
                db._trace("serve put_sync", "handler", t_service,
                          hclock.now)
            elif isinstance(m, msg.PutSyncBatchMsg):
                _serve_put_sync_batch(db, m, source, hclock, cpu)
                db._trace(f"serve put_sync_batch({len(m.pairs)})",
                          "handler", t_service, hclock.now)
            elif isinstance(m, msg.GetMsg):
                _serve_get(db, m, source, hclock, cpu)
                db._trace("serve get", "handler", t_service, hclock.now)
            elif isinstance(m, msg.MGetMsg):
                _serve_mget(db, m, source, hclock, cpu)
                db._trace(f"serve mget({len(m.keys)})", "handler",
                          t_service, hclock.now)
            elif isinstance(m, msg.FetchTableMsg):
                _serve_fetch_table(db, m, source, hclock, cpu)
                db._trace(f"serve fetch_table({m.ssid})", "handler",
                          t_service, hclock.now)
            elif isinstance(m, msg.ReplicaPutBatchMsg):
                _serve_replica_put(db, m, source, hclock, cpu)
                db._trace(f"serve replica_put({len(m.pairs)})", "handler",
                          t_service, hclock.now)
            elif isinstance(m, msg.HeartbeatMsg):
                _serve_heartbeat(db, m, source, hclock, cpu)
                db._trace("serve heartbeat", "handler", t_service,
                          hclock.now)
            elif isinstance(m, msg.ReplicaSyncMsg):
                _serve_replica_sync(db, m, source, hclock, cpu)
                db._trace(f"serve replica_sync({len(m.pairs)})",
                          "handler", t_service, hclock.now)
            elif isinstance(m, msg.IndexPullMsg):
                _serve_index_pull(db, m, source, hclock, cpu)
                db._trace("serve index_pull", "handler", t_service,
                          hclock.now)
            elif isinstance(m, msg.IndexPublishMsg):
                _serve_index_publish(db, m, source, hclock, cpu)
                db._trace(f"serve index_publish({len(m.bundles)})",
                          "handler", t_service, hclock.now)
            else:  # pragma: no cover - protocol error
                raise TypeError(f"handler got unexpected message {m!r}")
    except (RankKilledError, AbortedError):  # killed / torn down mid-service
        return
    except BaseException:
        # a dying handler would otherwise hang every rank that sends
        # this shard a request — abort the run loudly instead
        import traceback

        traceback.print_exc()
        db.srv_comm.abort_world()
        # swallowed after aborting: the blocked main ranks surface the
        # failure as AbortedError/RankFailure with this traceback on
        # stderr; re-raising here would only trip the thread-exception
        # hook a second time
    finally:
        from repro.analysis.runtime import get_detector

        det = get_detector()
        if det is not None:
            det.finalize_thread()  # publish the clock for the join edge
        bind_context(None)


def _serve_migrate(db: Database, m: msg.MigrateMsg, source: int,
                   hclock: VirtualClock, cpu) -> None:
    """Extract pairs and insert them into the local MemTable (§2.4)."""
    if not db._already_applied(source, m.seq):
        for key, value, tombstone in m.pairs:
            hclock.advance(cpu.kv_op_s + len(key + value) / cpu.memcpy_Bps)
            db._local_insert(key, value, tombstone, hclock)
    db.ack_comm.send(msg.AckMsg(m.seq), source, tag=ACK_TAG)


def _serve_put_sync(db: Database, m: msg.PutSyncMsg, source: int,
                    hclock: VirtualClock, cpu) -> None:
    if not db._already_applied(source, m.seq):
        hclock.advance(cpu.kv_op_s + len(m.key + m.value) / cpu.memcpy_Bps)
        db._local_insert(m.key, m.value, m.tombstone, hclock)
    db.rsp_comm.send(msg.AckMsg(m.seq), source, tag=m.seq)


def _serve_put_sync_batch(db: Database, m: msg.PutSyncBatchMsg,
                          source: int, hclock: VirtualClock, cpu) -> None:
    """A whole per-owner batch of synchronous puts, one ack for all."""
    if not db._already_applied(source, m.seq):
        for key, value, tombstone in m.pairs:
            hclock.advance(cpu.kv_op_s + len(key + value) / cpu.memcpy_Bps)
            db._local_insert(key, value, tombstone, hclock)
    db.rsp_comm.send(msg.AckMsg(m.seq), source, tag=m.seq)


def _serve_replica_put(db: Database, m: msg.ReplicaPutBatchMsg,
                       source: int, hclock: VirtualClock, cpu) -> None:
    """Apply a replicated put fan-out, or reject it deterministically.

    A batch stamped with an older epoch than this view's — or sent by a
    rank this view holds dead — is **rejected** (``applied=False``) so
    the writer re-routes against the current group; otherwise the pairs
    are applied under the usual seq-dedup and acknowledged.
    """
    mv = db.membership
    if mv is not None and mv.is_stale(m.epoch, source):
        db.stats.epoch_rejections += 1
        epoch, dead = mv.wire()
        db.ack_comm.send(
            msg.ReplicaAckMsg(m.seq, epoch, dead, applied=False),
            source, tag=ACK_TAG,
        )
        return
    if mv is not None:
        mv.merge(m.epoch, m.dead)
    if not db._already_applied(source, m.seq):
        for key, value, tombstone in m.pairs:
            hclock.advance(cpu.kv_op_s + len(key + value) / cpu.memcpy_Bps)
            db._local_insert(key, value, tombstone, hclock)
        db.stats.replica_pairs_applied += len(m.pairs)
    epoch, dead = mv.wire() if mv is not None else (0, ())
    db.ack_comm.send(
        msg.ReplicaAckMsg(m.seq, epoch, dead, applied=True),
        source, tag=ACK_TAG,
    )


def _serve_heartbeat(db: Database, m: msg.HeartbeatMsg, source: int,
                     hclock: VirtualClock, cpu) -> None:
    """Merge the sender's membership gossip; pong if it was a ping."""
    mv = db.membership
    if mv is None or mv.is_dead(source):
        return  # no membership plane, or a zombie ping: stay silent
    mv.merge(m.epoch, m.dead)
    if m.ping:
        epoch, dead = mv.wire()
        db.ack_comm.send(
            msg.ReplicaAckMsg(0, epoch, dead, applied=True),
            source, tag=HB_TAG,
        )


def _serve_replica_sync(db: Database, m: msg.ReplicaSyncMsg, source: int,
                        hclock: VirtualClock, cpu) -> None:
    """Install a re-replication push from the new acting primary.

    Never epoch-rejected: a sync carries the post-death epoch by
    construction, and its pairs are valid data regardless — apply under
    seq-dedup and ack on the rsp comm.
    """
    mv = db.membership
    if mv is not None:
        mv.merge(m.epoch, m.dead)
    if not db._already_applied(source, m.seq):
        for key, value, tombstone in m.pairs:
            hclock.advance(cpu.kv_op_s + len(key + value) / cpu.memcpy_Bps)
            db._local_insert(key, value, tombstone, hclock)
    epoch, dead = mv.wire() if mv is not None else (0, ())
    db.rsp_comm.send(
        msg.ReplicaAckMsg(m.seq, epoch, dead, applied=True),
        source, tag=m.seq,
    )


def _serve_fetch_table(db: Database, m: msg.FetchTableMsg, source: int,
                       hclock: VirtualClock, cpu) -> None:
    """Ship an SSTable's files to a peer rebuilding its copy.

    The peer validates (and re-verifies after install), so this side
    only best-effort reads the three files; any failure answers
    ``blobs=None`` and the peer climbs to the next recovery rung.
    """
    from repro.errors import StorageError
    from repro.sstable.format import sstable_filenames

    blobs = {}
    t = hclock.now
    try:
        for name in sstable_filenames(m.ssid):
            blob, t = db.store.read(f"{m.directory}/{name}", t)
            blobs[name] = blob
    except StorageError:
        blobs = None
    hclock.advance_to(t)
    db.rsp_comm.send(msg.FetchTableReply(blobs, m.seq), source, tag=m.seq)


def _lookup_one(db: Database, key: bytes, source: int,
                requester_group: int, force_data: bool,
                hclock: VirtualClock, cpu):
    """One key's owner-side lookup for a remote requester.

    Returns ``(status, value, tombstone, newest_ssid)``.  NOT_IN_MEMORY
    is only returned when the requester shares this rank's storage
    group and value bytes were not forced (the §2.7 shortcut); the
    caller turns it into a read-the-SSTables-yourself reply.
    """
    hclock.advance(cpu.kv_op_s)
    with db._lock:
        db._retire_flushed(hclock.now)
        entry, _tier = db._search_memory_local(key)
        if entry is None and db.local_cache is not None:
            cached = db.local_cache.peek(key)
            if cached is not None:
                return msg.FOUND, cached, False, 0
        newest = db.ssids[-1] if db.ssids else 0
        ssids = list(db.ssids)
        # snapshot while still under the lock: the main thread mutates
        # the quarantine list during verify/repair
        quarantine_free = not db._quarantined
    if entry is not None:
        return msg.FOUND, entry.value, entry.tombstone, newest
    # not in memory: same storage group -> let the requester read the
    # shared SSTables itself (saves the value transfer, §2.7) — unless
    # this rank has quarantined tables: the requester cannot see the
    # quarantine list, so the owner must answer (or degrade) itself
    if (
        not force_data
        and requester_group == db.group
        and db.shares_storage_with(source)
        and quarantine_free
    ):
        return msg.NOT_IN_MEMORY, None, False, newest
    # different group (or forced): do the full local get, including my
    # SSTables, and ship the value back over the network
    from repro.errors import CorruptionError, StorageError

    try:
        try:
            rec, t_end = db._search_sstables(
                db.store, db.rank_dir, ssids, key, hclock.now, own=True
            )
        except CorruptionError:
            raise
        except StorageError:
            # raced a compaction on this rank; retry on the fresh SSID list
            with db._lock:
                db._invalidate_readers()
                ssids = list(db.ssids)
            rec, t_end = db._search_sstables(
                db.store, db.rank_dir, ssids, key, hclock.now, own=True
            )
    except CorruptionError:
        # this key's range is quarantined (or the table is corrupt):
        # never ship a possibly-stale older version — degrade loudly
        return msg.DEGRADED, None, False, newest
    hclock.advance_to(t_end)
    if rec is None:
        return msg.NOT_FOUND, None, False, newest
    with db._lock:
        if db.local_cache is not None and not rec.tombstone:
            db.local_cache.put(key, rec.value)
    return msg.FOUND, rec.value, rec.tombstone, newest


def _serve_index_pull(db: Database, m: msg.IndexPullMsg, source: int,
                      hclock: VirtualClock, cpu) -> None:
    """Answer a pull with this rank's index view and missing bundles.

    The snapshot (table set, memory-clean and quarantine-free flags) is
    taken under the state lock; the sidecar reads happen outside it.  A
    compaction retiring a table between snapshot and read surfaces as a
    StorageError — re-snapshot once and read the fresh set.  Only ssids
    the requester did not report in ``have`` are shipped.
    """
    from repro.errors import StorageError

    mv = db.membership
    if mv is not None:
        # the pull carries the requester's membership stamp: merge it so
        # epoch news travels on every index exchange, not just puts
        mv.merge(m.epoch, m.dead)
    have = set(m.have)
    t = hclock.now
    for _attempt in range(2):
        with db._lock:
            db._retire_flushed(hclock.now)
            ssids = tuple(db.ssids)
            newest = ssids[-1] if ssids else 0
            mem_clean = len(db.local_mt) == 0
            quarantine_free = not db._quarantined
        try:
            bundles, t = db._read_bundle_blobs(
                [s for s in ssids if s not in have], t
            )
            break
        except StorageError:
            continue  # raced my own compaction: snapshot again
    else:
        bundles = {}
        ssids = ()
        newest = 0
        mem_clean = False  # unusable view: force the handler path
        quarantine_free = True
    hclock.advance_to(t)
    epoch, dead = mv.wire() if mv is not None else (0, ())
    db.rsp_comm.send(
        msg.IndexPullReply(
            db.rank_dir, newest, ssids, bundles, mem_clean,
            quarantine_free, m.seq, epoch, dead,
        ),
        source, tag=m.seq,
    )


def _serve_index_publish(db: Database, m: msg.IndexPublishMsg, source: int,
                         hclock: VirtualClock, cpu) -> None:
    """Install an owner's eagerly pushed index view (fire-and-forget).

    A publish stamped with an older epoch than this view's — or sent by
    a rank this view holds dead — is dropped: bundles from a dead epoch
    must never revive a retired view.  Installation is idempotent, so
    no ack travels back.
    """
    mv = db.membership
    if mv is not None and mv.is_stale(m.epoch, source):
        db.stats.epoch_rejections += 1
        return
    if mv is not None:
        mv.merge(m.epoch, m.dead)
    if not db.options.index_replication:
        return
    hclock.advance(cpu.kv_op_s * max(1, len(m.bundles)))
    db._install_index_view(
        source, m.owner_dir, m.newest_ssid, tuple(m.ssids), m.bundles,
        m.mem_clean, m.quarantine_free,
    )


def _serve_get(db: Database, m: msg.GetMsg, source: int,
               hclock: VirtualClock, cpu) -> None:
    status, value, tombstone, newest = _lookup_one(
        db, m.key, source, m.requester_group, m.force_data, hclock, cpu
    )
    if status == msg.NOT_IN_MEMORY:
        reply = msg.GetReply(
            msg.NOT_IN_MEMORY, m.seq,
            owner_dir=db.rank_dir, newest_ssid=newest,
        )
    else:
        reply = msg.GetReply(status, m.seq, value, tombstone)
    db.rsp_comm.send(reply, source, tag=m.seq)


def _serve_mget(db: Database, m: msg.MGetMsg, source: int,
                hclock: VirtualClock, cpu) -> None:
    """Batched multi-get: per-key lookups, one reply for the batch."""
    results: list = []
    shortcut_newest = 0
    shortcut = False
    for key in m.keys:
        status, value, tombstone, newest = _lookup_one(
            db, key, source, m.requester_group, m.force_data, hclock, cpu
        )
        if status == msg.NOT_IN_MEMORY:
            shortcut = True
            shortcut_newest = newest
            results.append((status, None, False))
        else:
            results.append((status, value, tombstone))
    db.rsp_comm.send(
        msg.MGetReply(
            results, m.seq,
            owner_dir=db.rank_dir if shortcut else None,
            newest_ssid=shortcut_newest,
        ),
        source, tag=m.seq,
    )
