"""The wire-protocol specification (verified by pkvlint rule R006).

One literal dict entry per ``WIRE_TAGS`` class in
:mod:`repro.core.messages`.  The analyzer
(:mod:`repro.analysis.protocol`) parses this file with :mod:`ast` — it
is never imported by the runtime — and cross-checks every declaration
against the actual dataclass fields and the handler's ``isinstance``
dispatch:

``kind``
    ``"request"`` (travels on the srv comm, needs a dispatch arm) or
    ``"reply"`` (travels on the rsp/ack comms).
``retryable``
    The sender retransmits on timeout, so the message must carry a
    ``seq`` field and its dispatch arm must apply it under the
    seq-dedup gate (``Database._already_applied``) — paper §2.4 makes
    retried migrations idempotent this way.
``epoch_stamped``
    The message carries the sender's ``(epoch, dead)`` membership
    stamp so stale-epoch traffic is rejected deterministically.  Every
    ``Replica*``/``Index*`` class **must** declare this; R006 flags a
    spec that quietly opts one out.
``reply``
    The class whose arrival completes the sender's wait, or ``None``
    for fire-and-forget.  The dispatch arm must construct it.

``REQUEST_COMM`` names the comm the handler receives requests on; R006
rejects any handler-side *send* on it (two handlers sending to each
other on the same rendezvous comm deadlock).

Changing this file is a protocol change: update the spec and the
message/handler code in the same commit, or the lint gate fails.
"""

from __future__ import annotations

#: the handler's receive comm — requests only, never handler sends
REQUEST_COMM = "srv_comm"

#: per-message invariants, one entry per WIRE_TAGS class
MESSAGE_SPECS = {
    # bulk migration and synchronous puts: retried mutations, seq-dedup
    "MigrateMsg": {
        "kind": "request", "retryable": True, "epoch_stamped": False,
        "reply": "AckMsg",
    },
    "PutSyncMsg": {
        "kind": "request", "retryable": True, "epoch_stamped": False,
        "reply": "AckMsg",
    },
    "PutSyncBatchMsg": {
        "kind": "request", "retryable": True, "epoch_stamped": False,
        "reply": "AckMsg",
    },
    # reads are idempotent: no dedup needed, always answered
    "GetMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": False,
        "reply": "GetReply",
    },
    "MGetMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": False,
        "reply": "MGetReply",
    },
    "FetchTableMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": False,
        "reply": "FetchTableReply",
    },
    # shutdown sentinel: consumed by the handler loop itself
    "StopMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": False,
        "reply": None,
    },
    # replication plane: every message epoch-stamped, mutations deduped
    "ReplicaPutBatchMsg": {
        "kind": "request", "retryable": True, "epoch_stamped": True,
        "reply": "ReplicaAckMsg",
    },
    "HeartbeatMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": True,
        "reply": "ReplicaAckMsg",
    },
    "ReplicaSyncMsg": {
        "kind": "request", "retryable": True, "epoch_stamped": True,
        "reply": "ReplicaAckMsg",
    },
    # index replication: pulls answered, publishes fire-and-forget
    "IndexPullMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": True,
        "reply": "IndexPullReply",
    },
    "IndexPublishMsg": {
        "kind": "request", "retryable": False, "epoch_stamped": True,
        "reply": None,
    },
    # replies (rsp/ack comms)
    "GetReply": {"kind": "reply"},
    "MGetReply": {"kind": "reply"},
    "FetchTableReply": {"kind": "reply"},
    "AckMsg": {"kind": "reply"},
    "ReplicaAckMsg": {"kind": "reply", "epoch_stamped": True},
    "IndexPullReply": {"kind": "reply", "epoch_stamped": True},
}
